//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! subset of proptest this workspace's tests use:
//!
//! - [`strategy::Strategy`] with `prop_map`, `prop_flat_map`, `prop_filter`;
//! - range and tuple strategies;
//! - [`collection::vec`] and [`collection::btree_set`];
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! - `prop_assert!` / `prop_assert_eq!` (plain panicking asserts here).
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated input's debug output lost — rerun with the printed case index),
//! and the RNG seed is a deterministic function of the test's module path and
//! case index, so failures are reproducible across runs by construction.

pub mod test_runner {
    //! Deterministic case runner configuration and RNG.

    /// Subset of upstream's config: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64-based generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test identifier and case index.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64) << 32 | 0x9e37_79b9),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing `f`, retrying (bounded) with fresh draws.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }
    }

    // Strategies are used by shared reference inside collection strategies.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}) rejected 10000 consecutive samples",
                self.reason
            );
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % width) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % width.max(1)) as $t
                }
            }
        )*};
    }
    int_strategy!(usize, u64, u32, u16, u8);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Element-count specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.usize_in(self.lo, self.hi)
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s. Duplicates collapse, so the result
    /// may be smaller than the drawn size (matches upstream semantics
    /// closely enough for the tests in this workspace).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assert_ne;
    pub use crate::proptest;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut case_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut case_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3..10usize, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn flat_map_threads_values(v in (1..5usize).prop_flat_map(|n| {
            crate::collection::vec(0..100u32, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(v.0, v.1.len());
        }

        #[test]
        fn filter_rejects(x in (0..100u64).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn sets_respect_bounds(s in crate::collection::btree_set(0u32..6, 0..6usize)) {
            prop_assert!(s.len() < 6);
            for v in s {
                prop_assert!(v < 6);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (0..4usize, 0..4usize)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
