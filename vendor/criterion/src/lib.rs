//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and `black_box`, so
//! `cargo bench` runs without crates.io access. Statistics are a plain
//! mean over `sample_size` timed iterations after one warm-up iteration —
//! good enough for relative comparisons in CI logs, with none of
//! criterion's outlier analysis.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque value barrier preventing the optimiser from deleting benched work.
pub fn black_box<T>(v: T) -> T {
    hint::black_box(v)
}

/// Benchmark identifier: a function name and an optional parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean_ns: 0.0,
        };
        f(&mut b);
        let label = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        println!(
            "{label:<48} {:>12.1} ns/iter (mean of {})",
            b.last_mean_ns, self.sample_size
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function calling each target with a
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert_eq!(calls, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("op", 3).id, "op/3");
        assert_eq!(BenchmarkId::from_parameter(50).id, "50");
    }
}
