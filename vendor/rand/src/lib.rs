//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* API surface its code uses: [`RngCore`], [`Rng`]
//! (`gen_range`, `gen_ratio`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). Sampling is deterministic
//! given the generator's stream; the distributions are uniform but make no
//! attempt to be bit-compatible with the upstream crate — every consumer in
//! this repository seeds its own generator and only relies on
//! *reproducibility*, not on matching upstream streams.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction; only the `seed_from_u64` entry point is modelled.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % width.max(1)) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator, "invalid ratio");
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod seq {
    //! Slice shuffling/choosing, mirroring `rand::seq`.

    use crate::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v));
            let w: f32 = rng.gen_range(f32::EPSILON..=1.0);
            assert!((f32::EPSILON..=1.0).contains(&w));
        }
    }

    #[test]
    fn ratio_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_ratio(0, 8));
        assert!(rng.gen_ratio(8, 8));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice untouched");
    }
}
