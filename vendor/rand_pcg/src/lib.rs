//! Offline stand-in for `rand_pcg`: the PCG XSL RR 128/64 generator
//! (`Pcg64`), implementing the vendored [`rand`] traits.
//!
//! The permutation function is the real PCG one; seeding expands the
//! caller's `u64` through SplitMix64 rather than reproducing upstream's
//! byte-array seeding, so streams are deterministic but not bit-identical
//! to the upstream crate (no consumer in this workspace relies on that).

use rand::{RngCore, SeedableRng};

const MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// PCG XSL RR 128/64: 128-bit LCG state, 64-bit xorshift-rotate output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Pcg64 {
    /// Builds a generator from an explicit state and stream selector.
    pub fn new(state: u128, stream: u128) -> Pcg64 {
        let increment = (stream << 1) | 1;
        let mut pcg = Pcg64 {
            state: state.wrapping_add(increment),
            increment,
        };
        pcg.step();
        pcg
    }

    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(MULTIPLIER)
            .wrapping_add(self.increment);
    }
}

impl SeedableRng for Pcg64 {
    fn seed_from_u64(seed: u64) -> Pcg64 {
        let mut sm = seed;
        let state = (splitmix64(&mut sm) as u128) << 64 | splitmix64(&mut sm) as u128;
        let stream = (splitmix64(&mut sm) as u128) << 64 | splitmix64(&mut sm) as u128;
        Pcg64::new(state, stream)
    }
}

impl RngCore for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        self.step();
        let rot = (self.state >> 122) as u32;
        let xsl = ((self.state >> 64) as u64) ^ (self.state as u64);
        xsl.rotate_right(rot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg64::seed_from_u64(42);
        let mut b = Pcg64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg64::seed_from_u64(1);
        let mut b = Pcg64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_sampling_covers_support() {
        let mut rng = Pcg64::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "512 draws missed a bucket of 8");
    }
}
