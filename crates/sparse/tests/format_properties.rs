//! Crate-local property tests for the sparse formats: construction from raw
//! parts, accessor consistency, and conversion stability.

use hymm_sparse::{Coo, Csc, Csr, Dense};
use proptest::prelude::*;

/// Strategy: structurally valid CSR component arrays.
fn valid_csr_parts() -> impl Strategy<Value = (usize, usize, Vec<usize>, Vec<u32>, Vec<f32>)> {
    (1..12usize, 1..12usize).prop_flat_map(|(rows, cols)| {
        // choose per-row sorted distinct column subsets
        proptest::collection::vec(
            proptest::collection::btree_set(0..cols as u32, 0..cols.min(6)),
            rows,
        )
        .prop_flat_map(move |row_cols| {
            let nnz: usize = row_cols.iter().map(|s| s.len()).sum();
            proptest::collection::vec(-3.0f32..3.0, nnz).prop_map(move |values| {
                let mut row_ptr = Vec::with_capacity(rows + 1);
                let mut col_idx = Vec::with_capacity(nnz);
                row_ptr.push(0);
                for set in &row_cols {
                    col_idx.extend(set.iter().copied());
                    row_ptr.push(col_idx.len());
                }
                (rows, cols, row_ptr, col_idx, values)
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn from_raw_parts_accepts_all_valid_inputs(
        (rows, cols, row_ptr, col_idx, values) in valid_csr_parts()
    ) {
        let m = Csr::from_raw_parts(rows, cols, row_ptr, col_idx, values)
            .expect("constructed parts are valid");
        prop_assert_eq!(m.rows(), rows);
        prop_assert_eq!(m.cols(), cols);
        // accessor consistency: iter() agrees with get()
        for (r, c, v) in m.iter() {
            prop_assert_eq!(m.get(r, c), v);
        }
        // degrees sum to nnz
        prop_assert_eq!(m.degrees().iter().sum::<usize>(), m.nnz());
    }

    #[test]
    fn csr_raw_parts_round_trip_through_csc(
        (rows, cols, row_ptr, col_idx, values) in valid_csr_parts()
    ) {
        let m = Csr::from_raw_parts(rows, cols, row_ptr, col_idx, values).expect("valid");
        let back = Csc::from_csr(&m).to_csr();
        // no duplicates in this strategy, so round trip is exact
        prop_assert_eq!(m, back);
    }

    #[test]
    fn sparsity_matches_nnz_for_distinct_coords(
        (rows, cols, row_ptr, col_idx, values) in valid_csr_parts()
    ) {
        let m = Csr::from_raw_parts(rows, cols, row_ptr, col_idx, values).expect("valid");
        let coo = m.to_coo();
        let expect = 1.0 - m.nnz() as f64 / (rows as f64 * cols as f64);
        prop_assert!((coo.sparsity() - expect).abs() < 1e-9);
    }

    #[test]
    fn dense_axpy_matches_scalar_loop(
        scalar in -2.0f32..2.0,
        src in proptest::collection::vec(-2.0f32..2.0, 8),
        dst in proptest::collection::vec(-2.0f32..2.0, 8),
    ) {
        let mut m = Dense::from_vec(1, 8, dst.clone()).expect("length matches");
        m.axpy_row(0, scalar, &src);
        for i in 0..8 {
            let want = dst[i] + scalar * src[i];
            prop_assert!((m.get(0, i) - want).abs() < 1e-5);
        }
    }

    #[test]
    fn coo_push_order_does_not_change_csr(
        mut triplets in proptest::collection::vec((0..8usize, 0..8usize, -2.0f32..2.0), 1..20)
    ) {
        // dedupe coordinates so summation order cannot matter
        triplets.sort_by_key(|&(r, c, _)| (r, c));
        triplets.dedup_by_key(|&mut (r, c, _)| (r, c));
        let forward = Coo::from_triplets(8, 8, triplets.clone()).expect("in bounds");
        triplets.reverse();
        let reverse = Coo::from_triplets(8, 8, triplets).expect("in bounds");
        prop_assert_eq!(Csr::from_coo(&forward), Csr::from_coo(&reverse));
    }
}
