//! Storage-footprint model for compressed sparse formats.
//!
//! The paper's Fig. 6 compares the off-chip storage of the plain CSR/CSC
//! adjacency matrix against HyMM's three-region tiled layout; the tiled form
//! pays for extra pointer arrays (one per region) and the paper reports a
//! 10.2 % overhead on Cora that shrinks as graphs grow. This module models
//! those byte counts.

/// Byte widths of the three component streams of a compressed format.
///
/// Defaults follow the paper's hardware: 32-bit pointers, 32-bit indices and
/// 32-bit single-precision values (Table III: "Each PE supports single
/// precision and has a width of 32 bits").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageLayout {
    /// Bytes per pointer-array entry.
    pub ptr_bytes: usize,
    /// Bytes per index entry.
    pub idx_bytes: usize,
    /// Bytes per stored value.
    pub val_bytes: usize,
}

impl Default for StorageLayout {
    fn default() -> Self {
        StorageLayout {
            ptr_bytes: 4,
            idx_bytes: 4,
            val_bytes: 4,
        }
    }
}

impl StorageLayout {
    /// Total bytes of a compressed matrix with `major_dim` pointer segments
    /// (rows for CSR, columns for CSC) and `nnz` stored entries.
    ///
    /// The pointer array has `major_dim + 1` entries; index and value arrays
    /// have `nnz` entries each.
    pub fn compressed_bytes(&self, major_dim: usize, nnz: usize) -> usize {
        (major_dim + 1) * self.ptr_bytes + nnz * (self.idx_bytes + self.val_bytes)
    }

    /// Bytes of only the metadata (pointer + index) streams — the part the
    /// SMQ fetches before values are consumed.
    pub fn metadata_bytes(&self, major_dim: usize, nnz: usize) -> usize {
        (major_dim + 1) * self.ptr_bytes + nnz * self.idx_bytes
    }

    /// Bytes of a dense `rows x cols` matrix of values.
    pub fn dense_bytes(&self, rows: usize, cols: usize) -> usize {
        rows * cols * self.val_bytes
    }
}

/// Storage accounting for one matrix layout, produced by
/// [`crate::tiling::TiledMatrix::storage_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// Bytes of the untiled single-format baseline.
    pub plain_bytes: usize,
    /// Bytes of the HyMM three-region tiled layout.
    pub tiled_bytes: usize,
}

impl StorageReport {
    /// Relative overhead of the tiled layout: `(tiled - plain) / plain`.
    pub fn overhead(&self) -> f64 {
        if self.plain_bytes == 0 {
            return 0.0;
        }
        (self.tiled_bytes as f64 - self.plain_bytes as f64) / self.plain_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressed_bytes_formula() {
        let l = StorageLayout::default();
        // 3 rows, 5 nnz: (3+1)*4 + 5*(4+4) = 16 + 40 = 56
        assert_eq!(l.compressed_bytes(3, 5), 56);
    }

    #[test]
    fn metadata_excludes_values() {
        let l = StorageLayout::default();
        assert_eq!(l.metadata_bytes(3, 5), 16 + 20);
    }

    #[test]
    fn dense_bytes_formula() {
        let l = StorageLayout::default();
        assert_eq!(l.dense_bytes(10, 16), 640);
    }

    #[test]
    fn overhead_computation() {
        let r = StorageReport {
            plain_bytes: 100,
            tiled_bytes: 110,
        };
        assert!((r.overhead() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn overhead_zero_plain_is_zero() {
        let r = StorageReport {
            plain_bytes: 0,
            tiled_bytes: 10,
        };
        assert_eq!(r.overhead(), 0.0);
    }

    #[test]
    fn custom_widths() {
        let l = StorageLayout {
            ptr_bytes: 8,
            idx_bytes: 2,
            val_bytes: 4,
        };
        assert_eq!(l.compressed_bytes(1, 1), 16 + 6);
    }
}
