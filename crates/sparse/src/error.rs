//! Error type shared by all fallible operations in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by sparse-matrix construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// A row or column coordinate exceeded the matrix dimensions.
    IndexOutOfBounds {
        /// Offending row coordinate.
        row: usize,
        /// Offending column coordinate.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// A matrix dimension was zero where a non-empty matrix is required.
    EmptyDimension,
    /// Two matrices had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation {
        /// Expected domain size.
        expected_len: usize,
        /// Actual vector length.
        actual_len: usize,
    },
    /// Raw CSR/CSC component arrays were mutually inconsistent.
    MalformedFormat(String),
    /// A configuration parameter was outside its valid domain (e.g. a NaN
    /// tiling fraction or a zero DMB row capacity).
    InvalidConfig(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "coordinate ({row}, {col}) out of bounds for {rows}x{cols} matrix"
            ),
            SparseError::EmptyDimension => {
                write!(f, "matrix dimensions must be non-zero")
            }
            SparseError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} is incompatible with {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::InvalidPermutation {
                expected_len,
                actual_len,
            } => write!(
                f,
                "permutation of length {actual_len} is not a bijection on 0..{expected_len}"
            ),
            SparseError::MalformedFormat(msg) => {
                write!(f, "malformed sparse format: {msg}")
            }
            SparseError::InvalidConfig(msg) => {
                write!(f, "invalid configuration: {msg}")
            }
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_bounds() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 2,
            rows: 4,
            cols: 4,
        };
        assert_eq!(
            e.to_string(),
            "coordinate (5, 2) out of bounds for 4x4 matrix"
        );
    }

    #[test]
    fn display_shape_mismatch() {
        let e = SparseError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("4x5"));
    }

    #[test]
    fn display_permutation() {
        let e = SparseError::InvalidPermutation {
            expected_len: 3,
            actual_len: 2,
        };
        assert!(e.to_string().contains("0..3"));
    }

    #[test]
    fn display_invalid_config() {
        let e = SparseError::InvalidConfig("threshold_fraction is NaN".to_string());
        assert_eq!(
            e.to_string(),
            "invalid configuration: threshold_fraction is NaN"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
