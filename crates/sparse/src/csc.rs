//! Compressed sparse column (CSC) matrix.
//!
//! CSC is the format consumed by the outer-product (OP) engine: the
//! accelerator streams one sparse column at a time, multiplying every
//! non-zero in the column with a single dense-matrix row and scattering
//! partial products into the output matrix (paper §II-B, Fig. 1b). In HyMM,
//! region 1 of the degree-sorted adjacency matrix is stored in CSC form
//! (paper Table I).

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;

/// A sparse matrix in compressed sparse column format.
///
/// Within each column, row indices are strictly increasing; duplicate
/// coordinates from the source [`Coo`] are summed during conversion.
///
/// # Example
///
/// ```
/// use hymm_sparse::{Coo, Csc};
///
/// # fn main() -> Result<(), hymm_sparse::SparseError> {
/// let coo = Coo::from_triplets(3, 2, [(2, 0, 1.0), (0, 0, 3.0), (1, 1, 2.0)])?;
/// let csc = Csc::from_coo(&coo);
/// let (rows, vals) = csc.col(0);
/// assert_eq!(rows, &[0, 2]);
/// assert_eq!(vals, &[3.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csc {
    /// Builds a CSC matrix from a [`Coo`], summing duplicate coordinates.
    pub fn from_coo(coo: &Coo) -> Csc {
        if let Some(csc) = Csc::from_unique_keys(coo) {
            return csc;
        }
        // A CSC of M is structurally a CSR of Mᵀ.
        let t = Csr::from_coo(&coo.transpose());
        Csc {
            rows: coo.rows(),
            cols: coo.cols(),
            col_ptr: t.row_ptr().to_vec(),
            row_idx: t.col_idx().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// [`Csc::from_coo`] for duplicate-free inputs: a counting scatter by
    /// column in O(nnz). The scatter is stable, so any input whose rows
    /// arrive grouped in ascending order (sparsified activations,
    /// synthesized features — whatever their within-row column order)
    /// lands with ascending rows in every column and needs no sort at all;
    /// columns that come out unordered are sorted locally. With unique
    /// coordinates the per-column ascending-row order is a function of the
    /// key set alone, so the result is bit-identical to the general
    /// transposed-CSR path. A duplicate key — where summation order would
    /// matter — shows up as an equal adjacent pair after the local sort and
    /// is reported as `None`, deferring to the general path.
    fn from_unique_keys(coo: &Coo) -> Option<Csc> {
        let cols = coo.cols();
        let mut col_ptr = vec![0usize; cols + 1];
        for (_, c, _) in coo.iter() {
            col_ptr[c + 1] += 1;
        }
        for i in 0..cols {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut row_idx = vec![0u32; coo.nnz()];
        let mut values = vec![0f32; coo.nnz()];
        let mut next = col_ptr.clone();
        for (r, c, v) in coo.iter() {
            let pos = next[c];
            next[c] += 1;
            row_idx[pos] = r as u32;
            values[pos] = v;
        }
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for c in 0..cols {
            let (s, e) = (col_ptr[c], col_ptr[c + 1]);
            if row_idx[s..e].windows(2).all(|w| w[0] < w[1]) {
                continue;
            }
            scratch.clear();
            scratch.extend(
                row_idx[s..e]
                    .iter()
                    .copied()
                    .zip(values[s..e].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            if scratch.windows(2).any(|w| w[0].0 == w[1].0) {
                return None;
            }
            for (i, &(r, v)) in scratch.iter().enumerate() {
                row_idx[s + i] = r;
                values[s + i] = v;
            }
        }
        Some(Csc {
            rows: coo.rows(),
            cols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Builds a CSC matrix with the same contents as a [`Csr`].
    pub fn from_csr(csr: &Csr) -> Csc {
        Csc::from_coo(&csr.to_coo())
    }

    /// Constructs a CSC matrix from raw component arrays, validating all
    /// structural invariants.
    ///
    /// # Errors
    ///
    /// Mirrors [`Csr::from_raw_parts`]: malformed pointer arrays, index
    /// bounds, ordering, or length mismatches produce
    /// [`SparseError::MalformedFormat`].
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Csc, SparseError> {
        // Validate by reusing the CSR validator on the transposed shape.
        let t = Csr::from_raw_parts(cols, rows, col_ptr, row_idx, values)?;
        Ok(Csc {
            rows,
            cols,
            col_ptr: t.row_ptr().to_vec(),
            row_idx: t.col_idx().to_vec(),
            values: t.values().to_vec(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column-pointer array (length `cols + 1`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row-index array (length `nnz`).
    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    /// The value array (length `nnz`).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Row indices and values of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.col_ptr[c], self.col_ptr[c + 1]);
        (&self.row_idx[s..e], &self.values[s..e])
    }

    /// Number of non-zeros in column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Value at `(r, c)`, or `0.0` if the coordinate is structurally zero or
    /// out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        if r >= self.rows || c >= self.cols {
            return 0.0;
        }
        let (rows, vals) = self.col(c);
        match rows.binary_search(&(r as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored non-zeros in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.cols).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter()
                .zip(vals)
                .map(move |(&r, &v)| (r as usize, c, v))
        })
    }

    /// Converts back to the triplet format.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols).expect("dimensions already validated");
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("indices already validated");
        }
        coo
    }

    /// Builds a CSR matrix with the same contents.
    pub fn to_csr(&self) -> Csr {
        Csr::from_coo(&self.to_coo())
    }

    /// Non-zero count per column.
    pub fn col_degrees(&self) -> Vec<usize> {
        (0..self.cols).map(|c| self.col_nnz(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> Coo {
        Coo::from_triplets(
            3,
            4,
            [
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn columns_are_sorted() {
        let m = Csc::from_coo(&sample_coo());
        assert_eq!(m.col(0), (&[0u32, 2][..], &[1.0f32, 4.0][..]));
        assert_eq!(m.col(3), (&[0u32][..], &[2.0f32][..]));
    }

    #[test]
    fn csr_csc_agree_elementwise() {
        let coo = sample_coo();
        let csr = Csr::from_coo(&coo);
        let csc = Csc::from_coo(&coo);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(csr.get(r, c), csc.get(r, c), "mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn round_trip_csr_csc_csr() {
        let csr = Csr::from_coo(&sample_coo());
        let back = Csc::from_csr(&csr).to_csr();
        assert_eq!(csr, back);
    }

    #[test]
    fn duplicates_summed() {
        let coo = Coo::from_triplets(2, 1, [(1, 0, 1.0), (1, 0, 9.0)]).unwrap();
        let m = Csc::from_coo(&coo);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 0), 10.0);
    }

    #[test]
    fn counting_scatter_matches_general_path() {
        // A seeded random sparse matrix, converted once from row-major
        // sorted triplets (counting-scatter fast path) and once from the
        // same triplets shuffled (general transpose+sort path): the two
        // constructions must agree exactly, including the value bits.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64::seed_from_u64(7);
        let (rows, cols) = (37, 23);
        let mut sorted = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(0.15) {
                    sorted.push((r, c, rng.gen_range(-2.0f32..2.0)));
                }
            }
        }
        let mut shuffled = sorted.clone();
        // Deterministic shuffle: swap each element with a seeded partner.
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let fast = Csc::from_coo(&Coo::from_triplets(rows, cols, sorted).unwrap());
        let general = Csc::from_coo(&Coo::from_triplets(rows, cols, shuffled).unwrap());
        assert_eq!(fast.col_ptr(), general.col_ptr());
        assert_eq!(fast.row_idx(), general.row_idx());
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(fast.values()), bits(general.values()));
    }

    #[test]
    fn from_raw_parts_validates() {
        assert!(Csc::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        assert!(Csc::from_raw_parts(2, 2, vec![0, 3, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn col_degrees_counts() {
        let m = Csc::from_coo(&sample_coo());
        assert_eq!(m.col_degrees(), vec![2, 1, 1, 1]);
    }

    #[test]
    fn iter_is_column_major() {
        let m = Csc::from_coo(&sample_coo());
        let got: Vec<_> = m.iter().collect();
        assert_eq!(
            got,
            vec![
                (0, 0, 1.0),
                (2, 0, 4.0),
                (1, 1, 3.0),
                (2, 2, 5.0),
                (0, 3, 2.0)
            ]
        );
    }
}
