//! Sparse-matrix substrate for the HyMM reproduction.
//!
//! HyMM (DATE 2025) is a GCN accelerator whose aggregation engine consumes a
//! degree-sorted adjacency matrix split into three regions, with region 1
//! stored in [CSC](Csc) form (outer-product dataflow) and regions 2/3 stored
//! in [CSR](Csr) form (row-wise-product dataflow). This crate provides:
//!
//! - the three classic sparse formats ([`Coo`], [`Csr`], [`Csc`]) and a small
//!   [`Dense`] matrix type, with lossless conversions between them;
//! - symmetric row/column [permutations](permute) and degree
//!   [sorting](permute::degree_sort_permutation);
//! - the HyMM region [`tiling`] of a sorted adjacency matrix together
//!   with its storage-overhead model (paper Fig. 6);
//! - functional (untimed) reference implementations of the row-wise-product
//!   and outer-product SpDeMM [dataflows](spdemm), used both as numerical
//!   ground truth for the cycle-accurate simulator and as the baseline
//!   algorithms the paper compares against.
//!
//! # Example
//!
//! ```
//! use hymm_sparse::{Coo, Csr, Dense};
//!
//! # fn main() -> Result<(), hymm_sparse::SparseError> {
//! let mut coo = Coo::new(2, 3)?;
//! coo.push(0, 0, 1.0)?;
//! coo.push(1, 2, 2.0)?;
//! let csr = Csr::from_coo(&coo);
//! let dense = Dense::from_fn(3, 2, |r, c| (r + c) as f32);
//! let out = hymm_sparse::spdemm::row_wise_product(&csr, &dense);
//! assert_eq!(out.get(1, 1), 6.0);
//! # Ok(())
//! # }
//! ```

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod kernels;
pub mod permute;
pub mod spdemm;
pub mod storage;
pub mod tiling;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use error::SparseError;
pub use permute::Permutation;
pub use tiling::{Region, RegionId, TiledMatrix, TilingConfig};
