//! Row/column permutations and degree sorting.
//!
//! HyMM's only preprocessing step is **degree sorting** (paper Table I):
//! graph nodes are reordered by descending degree so that the adjacency
//! matrix concentrates its dense rows/columns at the top-left, which the
//! region tiling of [`crate::tiling`] then exploits. This module provides a
//! validated [`Permutation`] type and the sorting constructor.

use crate::coo::Coo;
use crate::error::SparseError;

/// A validated bijection on `0..n`, applied to matrix rows and/or columns.
///
/// `perm[new_index] = old_index`: entry `i` of the permutation names which
/// original element lands at position `i` after permuting (the "gather"
/// convention used by sorting).
///
/// # Example
///
/// ```
/// use hymm_sparse::Permutation;
///
/// # fn main() -> Result<(), hymm_sparse::SparseError> {
/// let p = Permutation::new(vec![2, 0, 1])?;
/// assert_eq!(p.apply_index(2), 0); // old index 2 lands at new position 0
/// assert_eq!(p.source_index(1), 0); // new position 1 holds old index 0
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `gather[new] = old`
    gather: Vec<u32>,
    /// `scatter[old] = new`
    scatter: Vec<u32>,
}

impl Permutation {
    /// Creates a permutation from a gather vector (`gather[new] = old`).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPermutation`] if the vector is not a
    /// bijection on `0..len`.
    pub fn new(gather: Vec<u32>) -> Result<Permutation, SparseError> {
        let n = gather.len();
        let mut seen = vec![false; n];
        for &old in &gather {
            let old = old as usize;
            if old >= n || seen[old] {
                return Err(SparseError::InvalidPermutation {
                    expected_len: n,
                    actual_len: n,
                });
            }
            seen[old] = true;
        }
        let mut scatter = vec![0u32; n];
        for (new, &old) in gather.iter().enumerate() {
            scatter[old as usize] = new as u32;
        }
        Ok(Permutation { gather, scatter })
    }

    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Permutation {
        let v: Vec<u32> = (0..n as u32).collect();
        Permutation {
            gather: v.clone(),
            scatter: v,
        }
    }

    /// Builds the permutation that sorts indices by **descending** key,
    /// breaking ties by ascending original index (stable).
    pub fn sort_descending_by_key(keys: &[usize]) -> Permutation {
        let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            keys[b as usize]
                .cmp(&keys[a as usize])
                .then_with(|| a.cmp(&b))
        });
        let mut scatter = vec![0u32; keys.len()];
        for (new, &old) in idx.iter().enumerate() {
            scatter[old as usize] = new as u32;
        }
        Permutation {
            gather: idx,
            scatter,
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.gather.len()
    }

    /// Returns `true` if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.gather.is_empty()
    }

    /// New position of original index `old`.
    ///
    /// # Panics
    ///
    /// Panics if `old >= self.len()`.
    pub fn apply_index(&self, old: usize) -> usize {
        self.scatter[old] as usize
    }

    /// Original index that lands at `new`.
    ///
    /// # Panics
    ///
    /// Panics if `new >= self.len()`.
    pub fn source_index(&self, new: usize) -> usize {
        self.gather[new] as usize
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            gather: self.scatter.clone(),
            scatter: self.gather.clone(),
        }
    }

    /// Gather vector (`gather[new] = old`).
    pub fn as_gather(&self) -> &[u32] {
        &self.gather
    }

    /// Applies the permutation symmetrically to rows and columns of a square
    /// matrix (a graph relabelling).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if the matrix is not square or
    /// its dimension differs from the permutation length.
    pub fn apply_symmetric(&self, m: &Coo) -> Result<Coo, SparseError> {
        if m.rows() != m.cols() || m.rows() != self.len() {
            return Err(SparseError::ShapeMismatch {
                left: (m.rows(), m.cols()),
                right: (self.len(), self.len()),
            });
        }
        let mut out = Coo::new(m.rows(), m.cols())?;
        for (r, c, v) in m.iter() {
            out.push(self.apply_index(r), self.apply_index(c), v)?;
        }
        Ok(out)
    }

    /// Applies the permutation to the rows of a matrix only.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `m.rows() != self.len()`.
    pub fn apply_rows(&self, m: &Coo) -> Result<Coo, SparseError> {
        if m.rows() != self.len() {
            return Err(SparseError::ShapeMismatch {
                left: (m.rows(), m.cols()),
                right: (self.len(), self.len()),
            });
        }
        let mut out = Coo::new(m.rows(), m.cols())?;
        for (r, c, v) in m.iter() {
            out.push(self.apply_index(r), c, v)?;
        }
        Ok(out)
    }
}

/// Builds the degree-sorting permutation for a square adjacency matrix:
/// nodes ordered by descending total degree (row nnz + column nnz, i.e.
/// out-degree + in-degree; for symmetric graphs this is twice the degree and
/// yields the same order).
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if the matrix is not square.
pub fn degree_sort_permutation(adj: &Coo) -> Result<Permutation, SparseError> {
    if adj.rows() != adj.cols() {
        return Err(SparseError::ShapeMismatch {
            left: (adj.rows(), adj.cols()),
            right: (adj.cols(), adj.rows()),
        });
    }
    let mut deg = vec![0usize; adj.rows()];
    for (r, c, _) in adj.iter() {
        deg[r] += 1;
        deg[c] += 1;
    }
    Ok(Permutation::sort_descending_by_key(&deg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_bijection() {
        assert!(Permutation::new(vec![0, 0, 1]).is_err());
        assert!(Permutation::new(vec![0, 3]).is_err());
        assert!(Permutation::new(vec![1, 0]).is_ok());
    }

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(4);
        for i in 0..4 {
            assert_eq!(p.apply_index(i), i);
            assert_eq!(p.source_index(i), i);
        }
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::new(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.apply_index(p.apply_index(i)), i);
        }
    }

    #[test]
    fn sort_descending_orders_keys() {
        let p = Permutation::sort_descending_by_key(&[1, 5, 3, 5]);
        // descending with stable tie-break: old indices 1, 3 (both 5), 2, 0
        assert_eq!(p.as_gather(), &[1, 3, 2, 0]);
    }

    #[test]
    fn apply_symmetric_relabels_graph() {
        // edge 0→1 in a 2-node graph; swap labels.
        let m = Coo::from_triplets(2, 2, [(0, 1, 1.0)]).unwrap();
        let p = Permutation::new(vec![1, 0]).unwrap();
        let out = p.apply_symmetric(&m).unwrap();
        assert_eq!(out.iter().next(), Some((1, 0, 1.0)));
    }

    #[test]
    fn apply_symmetric_requires_square() {
        let m = Coo::from_triplets(2, 3, [(0, 1, 1.0)]).unwrap();
        let p = Permutation::identity(2);
        assert!(p.apply_symmetric(&m).is_err());
    }

    #[test]
    fn degree_sort_puts_hub_first() {
        // star graph: node 3 connected to everyone.
        let mut m = Coo::new(4, 4).unwrap();
        for i in 0..3 {
            m.push(3, i, 1.0).unwrap();
            m.push(i, 3, 1.0).unwrap();
        }
        let p = degree_sort_permutation(&m).unwrap();
        assert_eq!(p.source_index(0), 3);
    }

    #[test]
    fn degree_sort_preserves_edge_count() {
        let m = Coo::from_triplets(3, 3, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]).unwrap();
        let p = degree_sort_permutation(&m).unwrap();
        let sorted = p.apply_symmetric(&m).unwrap();
        assert_eq!(sorted.nnz(), m.nnz());
    }
}
