//! Row-major dense matrix.
//!
//! The dense operand of every SpDeMM in the paper — the weight matrix `W`,
//! the combination result `XW`, and the aggregation output `AXW` — is a tall
//! skinny matrix whose row width is the GCN layer dimension (16 in the
//! paper's Table II). Rows therefore map one-to-one onto the accelerator's
//! 64-byte vector lines.

use crate::error::SparseError;

/// A row-major dense `f32` matrix.
///
/// # Example
///
/// ```
/// use hymm_sparse::Dense;
///
/// let m = Dense::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Dense {
    /// Creates a zero-filled `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Dense {
        assert!(
            rows > 0 && cols > 0,
            "dense matrix dimensions must be non-zero"
        );
        Dense {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every coordinate.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Dense {
        let mut m = Dense::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `data.len() != rows * cols`
    /// and [`SparseError::EmptyDimension`] if either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Dense, SparseError> {
        if rows == 0 || cols == 0 {
            return Err(SparseError::EmptyDimension);
        }
        if data.len() != rows * cols {
            return Err(SparseError::ShapeMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Dense { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "dense index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "dense index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Adds `scalar * src` into row `r` (the scalar-vector MAC the PE array
    /// performs). Routed through the blocked [`crate::kernels::axpy`]
    /// kernel, which is bit-identical to the scalar loop.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != self.cols()` or `r` is out of bounds.
    pub fn axpy_row(&mut self, r: usize, scalar: f32, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "vector width must equal matrix width");
        crate::kernels::axpy(self.row_mut(r), scalar, src);
    }

    /// Accumulates the sparse outer product of one CSC column: for each
    /// `(row, value)` pair, adds `value * src` into row `row`. This is the
    /// OP dataflow's per-column update, expressed as repeated blocked
    /// [`Dense::axpy_row`]s.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != self.cols()` or any row is out of bounds.
    pub fn outer_accumulate(&mut self, col: &[(usize, f32)], src: &[f32]) {
        for &(r, v) in col {
            self.axpy_row(r, v, src);
        }
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Dense) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Returns `true` if every element differs from `other` by at most `tol`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn approx_eq(&self, other: &Dense, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }

    /// Dense-dense product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Dense) -> Result<Dense, SparseError> {
        if self.cols != rhs.rows {
            return Err(SparseError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Dense::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                out.axpy_row(r, a, rhs.row(k));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zeros_rejects_empty() {
        let _ = Dense::zeros(0, 4);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Dense::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Dense::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let mut m = Dense::zeros(2, 2);
        m.set(1, 0, 7.5);
        assert_eq!(m.get(1, 0), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn axpy_row_accumulates() {
        let mut m = Dense::zeros(1, 3);
        m.axpy_row(0, 2.0, &[1.0, 2.0, 3.0]);
        m.axpy_row(0, -1.0, &[0.0, 1.0, 0.0]);
        assert_eq!(m.row(0), &[2.0, 3.0, 6.0]);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Dense::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_shape_mismatch() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(2, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Dense::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let b = Dense::from_vec(1, 2, vec![1.0, 2.0 + 1e-4]).unwrap();
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
    }
}
