//! Functional (untimed) sparse-dense matrix multiplication dataflows.
//!
//! These are the two SpDeMM dataflows of the paper's Fig. 1, implemented as
//! plain algorithms. They serve as numerical ground truth for the
//! cycle-accurate engines in `hymm-core` and demonstrate the *order* in which
//! each dataflow touches data — which is exactly what determines locality in
//! the accelerator:
//!
//! - [`row_wise_product`] (RWP, Gustavson): for each sparse row, gather dense
//!   rows indexed by the non-zero columns and accumulate into one
//!   output-stationary row.
//! - [`outer_product`] (OP, OuterSPACE-style): for each sparse column,
//!   broadcast one dense row and scatter partial products into many output
//!   rows.

use crate::csc::Csc;
use crate::csr::Csr;
use crate::dense::Dense;
use crate::error::SparseError;

/// Row-wise product `sparse * dense`.
///
/// Follows the RWP dataflow: output rows are produced one at a time and each
/// is complete when finished (no partial-output merging).
///
/// # Panics
///
/// Panics if `sparse.cols() != dense.rows()`. Use [`try_row_wise_product`]
/// for a fallible variant.
pub fn row_wise_product(sparse: &Csr, dense: &Dense) -> Dense {
    try_row_wise_product(sparse, dense).expect("shape mismatch in row_wise_product")
}

/// Fallible variant of [`row_wise_product`].
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `sparse.cols() != dense.rows()`.
pub fn try_row_wise_product(sparse: &Csr, dense: &Dense) -> Result<Dense, SparseError> {
    if sparse.cols() != dense.rows() {
        return Err(SparseError::ShapeMismatch {
            left: (sparse.rows(), sparse.cols()),
            right: (dense.rows(), dense.cols()),
        });
    }
    let mut out = Dense::zeros(sparse.rows(), dense.cols());
    for r in 0..sparse.rows() {
        let (cols, vals) = sparse.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            out.axpy_row(r, v, dense.row(c as usize));
        }
    }
    Ok(out)
}

/// Outer product `sparse * dense`.
///
/// Follows the OP dataflow: for each sparse column `k`, every non-zero
/// `(r, k)` scatters `value * dense.row(k)` into output row `r`. Output rows
/// accumulate partial results across many columns, which is why the hardware
/// version needs a merging accumulator.
///
/// # Panics
///
/// Panics if `sparse.rows()` (of the CSC's column space) mismatches; use
/// [`try_outer_product`] for a fallible variant.
pub fn outer_product(sparse: &Csc, dense: &Dense) -> Dense {
    try_outer_product(sparse, dense).expect("shape mismatch in outer_product")
}

/// Fallible variant of [`outer_product`].
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `sparse.cols() != dense.rows()`.
pub fn try_outer_product(sparse: &Csc, dense: &Dense) -> Result<Dense, SparseError> {
    if sparse.cols() != dense.rows() {
        return Err(SparseError::ShapeMismatch {
            left: (sparse.rows(), sparse.cols()),
            right: (dense.rows(), dense.cols()),
        });
    }
    let mut out = Dense::zeros(sparse.rows(), dense.cols());
    for k in 0..sparse.cols() {
        let (rows, vals) = sparse.col(k);
        let drow = dense.row(k);
        for (&r, &v) in rows.iter().zip(vals) {
            out.axpy_row(r as usize, v, drow);
        }
    }
    Ok(out)
}

/// Reference dense product of a CSR matrix and a dense matrix computed by
/// full densification — the slowest, most obviously correct baseline used in
/// tests.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if shapes are incompatible.
pub fn dense_reference(sparse: &Csr, dense: &Dense) -> Result<Dense, SparseError> {
    let mut lhs = Dense::zeros(sparse.rows(), sparse.cols());
    for (r, c, v) in sparse.iter() {
        lhs.set(r, c, v);
    }
    lhs.matmul(dense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn fixture() -> (Csr, Csc, Dense) {
        let coo = Coo::from_triplets(
            3,
            4,
            [
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, -1.0),
                (2, 0, 0.5),
                (2, 2, 4.0),
            ],
        )
        .unwrap();
        let csr = Csr::from_coo(&coo);
        let csc = Csc::from_coo(&coo);
        let dense = Dense::from_fn(4, 2, |r, c| (r * 2 + c) as f32 + 1.0);
        (csr, csc, dense)
    }

    #[test]
    fn rwp_matches_dense_reference() {
        let (csr, _, dense) = fixture();
        let got = row_wise_product(&csr, &dense);
        let want = dense_reference(&csr, &dense).unwrap();
        assert!(got.approx_eq(&want, 1e-6));
    }

    #[test]
    fn op_matches_dense_reference() {
        let (csr, csc, dense) = fixture();
        let got = outer_product(&csc, &dense);
        let want = dense_reference(&csr, &dense).unwrap();
        assert!(got.approx_eq(&want, 1e-6));
    }

    #[test]
    fn rwp_and_op_agree() {
        let (csr, csc, dense) = fixture();
        let a = row_wise_product(&csr, &dense);
        let b = outer_product(&csc, &dense);
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn shape_mismatch_is_error() {
        let (csr, csc, _) = fixture();
        let wrong = Dense::zeros(3, 2);
        assert!(try_row_wise_product(&csr, &wrong).is_err());
        assert!(try_outer_product(&csc, &wrong).is_err());
    }

    #[test]
    fn empty_sparse_gives_zero_output() {
        let coo = Coo::new(2, 2).unwrap();
        let csr = Csr::from_coo(&coo);
        let dense = Dense::from_fn(2, 2, |_, _| 1.0);
        let out = row_wise_product(&csr, &dense);
        assert_eq!(out.as_slice(), &[0.0; 4]);
    }
}
