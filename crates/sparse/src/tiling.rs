//! HyMM's degree-based region tiling of a sorted adjacency matrix.
//!
//! After degree sorting, the adjacency matrix concentrates non-zeros towards
//! the top-left. HyMM splits it into three regions (paper §III, Fig. 2b):
//!
//! ```text
//!         columns 0..T          columns T..n
//!        ┌──────────────────────────────────┐
//! rows   │        region 1 (CSC, OP)        │  0..T   — high-degree rows
//!        ├────────────────┬─────────────────┤
//! rows   │ region 2       │ region 3        │  T..n
//!        │ (CSR, RWP)     │ (CSR, RWP)      │
//!        └────────────────┴─────────────────┘
//!          high-degree cols   sparse rest
//! ```
//!
//! `T` is the **tiling threshold**: at most 20 % of the node count, shrunk
//! further if the dense-matrix buffer cannot hold that many 64-byte output
//! rows (paper §IV-E).

use crate::coo::Coo;
use crate::csc::Csc;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::storage::{StorageLayout, StorageReport};

/// Identifies one of the three tiles of the sorted adjacency matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionId {
    /// High-degree rows (rows `0..T`, all columns), processed by the OP engine.
    HighDegreeRows,
    /// Remaining rows restricted to high-degree columns (`T..n` × `0..T`),
    /// processed by the RWP engine with hot dense-input reuse.
    HighDegreeCols,
    /// The extremely sparse remainder (`T..n` × `T..n`), processed by RWP.
    SparseRest,
}

impl RegionId {
    /// All regions in HyMM's execution order (OP first, then RWP).
    pub const EXECUTION_ORDER: [RegionId; 3] = [
        RegionId::HighDegreeRows,
        RegionId::HighDegreeCols,
        RegionId::SparseRest,
    ];
}

/// Configuration of the tiling pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TilingConfig {
    /// Maximum fraction of nodes placed in the high-degree tile. The paper
    /// fixes this at 20 %.
    pub threshold_fraction: f64,
    /// If set, the number of dense-matrix rows (output rows during OP, input
    /// rows during RWP) that fit in the DMB; the threshold is clamped so the
    /// hot working set stays resident (paper §IV-E "Tiling size").
    pub dmb_capacity_rows: Option<usize>,
}

impl Default for TilingConfig {
    fn default() -> Self {
        TilingConfig {
            threshold_fraction: 0.20,
            dmb_capacity_rows: None,
        }
    }
}

impl TilingConfig {
    /// Checks the configuration's parameter domains.
    ///
    /// A NaN `threshold_fraction` would otherwise propagate through
    /// `f64::clamp` (which returns NaN for a NaN input) and the `as usize`
    /// cast would silently collapse the threshold to `T = 0`, turning the
    /// hybrid dataflow into pure RWP with no diagnostic. A zero
    /// `dmb_capacity_rows` clamps `T` to zero the same silent way.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidConfig`] for a NaN, infinite or
    /// negative `threshold_fraction`, or `dmb_capacity_rows == Some(0)`.
    pub fn validate(&self) -> Result<(), SparseError> {
        if !self.threshold_fraction.is_finite() {
            return Err(SparseError::InvalidConfig(format!(
                "threshold_fraction must be finite, got {}",
                self.threshold_fraction
            )));
        }
        if self.threshold_fraction < 0.0 {
            return Err(SparseError::InvalidConfig(format!(
                "threshold_fraction must be non-negative, got {}",
                self.threshold_fraction
            )));
        }
        if self.dmb_capacity_rows == Some(0) {
            return Err(SparseError::InvalidConfig(
                "dmb_capacity_rows must be positive when set".to_string(),
            ));
        }
        Ok(())
    }

    /// The tiling threshold `T` for a graph with `n` nodes.
    pub fn threshold(&self, n: usize) -> usize {
        let frac = self.threshold_fraction.clamp(0.0, 1.0);
        let mut t = (n as f64 * frac).ceil() as usize;
        if let Some(cap) = self.dmb_capacity_rows {
            t = t.min(cap);
        }
        t.min(n)
    }
}

/// One tile of the sorted adjacency matrix: which region it is, its stored
/// format, and the row/column window it covers in sorted coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Which of the three regions this is.
    pub id: RegionId,
    /// Half-open row window in the sorted matrix.
    pub row_range: (usize, usize),
    /// Half-open column window in the sorted matrix.
    pub col_range: (usize, usize),
    /// The stored tile. Coordinates are *local* to the window.
    pub format: RegionFormat,
}

/// Storage format of a [`Region`] — CSC for region 1, CSR for regions 2/3
/// (paper Table I, "Compression format" row).
#[derive(Debug, Clone, PartialEq)]
pub enum RegionFormat {
    /// Compressed sparse column tile (outer-product engine input).
    Csc(Csc),
    /// Compressed sparse row tile (row-wise-product engine input).
    Csr(Csr),
}

impl Region {
    /// Non-zeros stored in this region.
    pub fn nnz(&self) -> usize {
        match &self.format {
            RegionFormat::Csc(m) => m.nnz(),
            RegionFormat::Csr(m) => m.nnz(),
        }
    }

    /// Iterates over the region's non-zeros in **global** sorted coordinates.
    pub fn iter_global(&self) -> Box<dyn Iterator<Item = (usize, usize, f32)> + '_> {
        let (r0, c0) = (self.row_range.0, self.col_range.0);
        match &self.format {
            RegionFormat::Csc(m) => Box::new(m.iter().map(move |(r, c, v)| (r + r0, c + c0, v))),
            RegionFormat::Csr(m) => Box::new(m.iter().map(move |(r, c, v)| (r + r0, c + c0, v))),
        }
    }
}

/// The three-region tiled representation of a degree-sorted adjacency matrix.
///
/// # Example
///
/// ```
/// use hymm_sparse::{Coo, TiledMatrix, TilingConfig};
///
/// # fn main() -> Result<(), hymm_sparse::SparseError> {
/// // 5-node chain, already "sorted" for the example.
/// let adj = Coo::from_triplets(5, 5, (0..4).map(|i| (i, i + 1, 1.0)))?;
/// let tiled = TiledMatrix::new(&adj, &TilingConfig::default())?;
/// assert_eq!(tiled.total_nnz(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TiledMatrix {
    n: usize,
    threshold: usize,
    regions: Vec<Region>,
}

impl TiledMatrix {
    /// Tiles a square adjacency matrix that has **already been degree
    /// sorted** (see [`crate::permute::degree_sort_permutation`]).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if the matrix is not square,
    /// [`SparseError::EmptyDimension`] if it is empty, and
    /// [`SparseError::InvalidConfig`] if the tiling configuration fails
    /// [`TilingConfig::validate`].
    pub fn new(sorted_adj: &Coo, config: &TilingConfig) -> Result<TiledMatrix, SparseError> {
        config.validate()?;
        if sorted_adj.rows() != sorted_adj.cols() {
            return Err(SparseError::ShapeMismatch {
                left: (sorted_adj.rows(), sorted_adj.cols()),
                right: (sorted_adj.cols(), sorted_adj.rows()),
            });
        }
        let n = sorted_adj.rows();
        let t = config.threshold(n);

        let mut r1 = Coo::new(t.max(1), n)?;
        let rest_rows = (n - t).max(1);
        let mut r2 = Coo::new(rest_rows, t.max(1))?;
        let mut r3 = Coo::new(rest_rows, (n - t).max(1))?;
        for (r, c, v) in sorted_adj.iter() {
            if r < t {
                r1.push(r, c, v)?;
            } else if c < t {
                r2.push(r - t, c, v)?;
            } else {
                r3.push(r - t, c - t, v)?;
            }
        }

        let regions = vec![
            Region {
                id: RegionId::HighDegreeRows,
                row_range: (0, t),
                col_range: (0, n),
                format: RegionFormat::Csc(Csc::from_coo(&r1)),
            },
            Region {
                id: RegionId::HighDegreeCols,
                row_range: (t, n),
                col_range: (0, t),
                format: RegionFormat::Csr(Csr::from_coo(&r2)),
            },
            Region {
                id: RegionId::SparseRest,
                row_range: (t, n),
                col_range: (t, n),
                format: RegionFormat::Csr(Csr::from_coo(&r3)),
            },
        ];
        Ok(TiledMatrix {
            n,
            threshold: t,
            regions,
        })
    }

    /// Node count of the underlying graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The tiling threshold `T` actually used.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The three regions in execution order (OP region first).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Looks up one region by id.
    pub fn region(&self, id: RegionId) -> &Region {
        self.regions
            .iter()
            .find(|r| r.id == id)
            .expect("all three regions are always present")
    }

    /// Total non-zeros across all regions.
    pub fn total_nnz(&self) -> usize {
        self.regions.iter().map(Region::nnz).sum()
    }

    /// Storage accounting versus a plain single-CSR layout (paper Fig. 6).
    ///
    /// The tiled layout pays one pointer array per region: region 1's CSC
    /// carries `n + 1` column pointers while regions 2 and 3 each carry
    /// `(n - T) + 1` row pointers.
    pub fn storage_report(&self, layout: &StorageLayout) -> StorageReport {
        let plain = layout.compressed_bytes(self.n, self.total_nnz());
        let mut tiled = 0usize;
        for region in &self.regions {
            let major = match &region.format {
                RegionFormat::Csc(m) => m.cols(),
                RegionFormat::Csr(m) => m.rows(),
            };
            tiled += layout.compressed_bytes(major, region.nnz());
        }
        StorageReport {
            plain_bytes: plain,
            tiled_bytes: tiled,
        }
    }

    /// Reconstructs the full sorted matrix (for verification).
    pub fn to_coo(&self) -> Coo {
        let mut out = Coo::new(self.n, self.n).expect("n validated at construction");
        for region in &self.regions {
            for (r, c, v) in region.iter_global() {
                out.push(r, c, v).expect("region coordinates are in bounds");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    fn power_lawish() -> Coo {
        // 10 nodes; node 0 and 1 are hubs.
        let mut m = Coo::new(10, 10).unwrap();
        for j in 1..10 {
            m.push(0, j, 1.0).unwrap();
            m.push(j, 0, 1.0).unwrap();
        }
        for j in 2..8 {
            m.push(1, j, 1.0).unwrap();
            m.push(j, 1, 1.0).unwrap();
        }
        m.push(8, 9, 1.0).unwrap();
        m
    }

    #[test]
    fn threshold_respects_fraction() {
        let c = TilingConfig {
            threshold_fraction: 0.2,
            dmb_capacity_rows: None,
        };
        assert_eq!(c.threshold(10), 2);
        assert_eq!(c.threshold(2708), 542);
    }

    #[test]
    fn threshold_clamped_by_dmb() {
        let c = TilingConfig {
            threshold_fraction: 0.2,
            dmb_capacity_rows: Some(100),
        };
        assert_eq!(c.threshold(10_000), 100);
        assert_eq!(c.threshold(100), 20);
    }

    #[test]
    fn partition_is_complete_and_disjoint() {
        let adj = power_lawish();
        let tiled = TiledMatrix::new(&adj, &TilingConfig::default()).unwrap();
        assert_eq!(tiled.total_nnz(), adj.nnz());
        // element-wise equality through densification
        let orig = Csr::from_coo(&adj);
        let back = Csr::from_coo(&tiled.to_coo());
        assert_eq!(orig, back);
    }

    #[test]
    fn regions_have_expected_windows() {
        let adj = power_lawish();
        let tiled = TiledMatrix::new(&adj, &TilingConfig::default()).unwrap();
        assert_eq!(tiled.threshold(), 2);
        let r1 = tiled.region(RegionId::HighDegreeRows);
        assert_eq!(r1.row_range, (0, 2));
        assert_eq!(r1.col_range, (0, 10));
        let r2 = tiled.region(RegionId::HighDegreeCols);
        assert_eq!(r2.row_range, (2, 10));
        assert_eq!(r2.col_range, (0, 2));
        let r3 = tiled.region(RegionId::SparseRest);
        assert_eq!(r3.row_range, (2, 10));
        assert_eq!(r3.col_range, (2, 10));
    }

    #[test]
    fn hub_rows_land_in_region_one() {
        let adj = power_lawish();
        let tiled = TiledMatrix::new(&adj, &TilingConfig::default()).unwrap();
        // hub row 0 carries 9 nnz (cols 1..9); hub row 1 carries 7
        // (col 0 from the first loop plus cols 2..7).
        assert_eq!(tiled.region(RegionId::HighDegreeRows).nnz(), 16);
    }

    #[test]
    fn storage_overhead_positive_and_small() {
        let adj = power_lawish();
        let tiled = TiledMatrix::new(&adj, &TilingConfig::default()).unwrap();
        let rep = tiled.storage_report(&StorageLayout::default());
        assert!(rep.tiled_bytes > rep.plain_bytes);
        assert!(
            rep.overhead() < 1.0,
            "overhead {} should stay moderate",
            rep.overhead()
        );
    }

    #[test]
    fn rejects_non_square() {
        let adj = Coo::from_triplets(2, 3, [(0, 0, 1.0)]).unwrap();
        assert!(TiledMatrix::new(&adj, &TilingConfig::default()).is_err());
    }

    #[test]
    fn full_threshold_puts_everything_in_region_one() {
        let adj = power_lawish();
        let cfg = TilingConfig {
            threshold_fraction: 1.0,
            dmb_capacity_rows: None,
        };
        let tiled = TiledMatrix::new(&adj, &cfg).unwrap();
        assert_eq!(tiled.region(RegionId::HighDegreeRows).nnz(), adj.nnz());
        assert_eq!(tiled.region(RegionId::HighDegreeCols).nnz(), 0);
    }

    #[test]
    fn zero_threshold_puts_everything_in_region_three() {
        let adj = power_lawish();
        let cfg = TilingConfig {
            threshold_fraction: 0.0,
            dmb_capacity_rows: None,
        };
        let tiled = TiledMatrix::new(&adj, &cfg).unwrap();
        assert_eq!(tiled.region(RegionId::SparseRest).nnz(), adj.nnz());
    }

    #[test]
    fn rejects_nan_threshold_fraction() {
        let adj = power_lawish();
        let cfg = TilingConfig {
            threshold_fraction: f64::NAN,
            dmb_capacity_rows: None,
        };
        match TiledMatrix::new(&adj, &cfg) {
            Err(SparseError::InvalidConfig(msg)) => assert!(msg.contains("finite"), "{msg}"),
            other => panic!("NaN fraction must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn rejects_negative_threshold_fraction() {
        let adj = power_lawish();
        let cfg = TilingConfig {
            threshold_fraction: -0.1,
            dmb_capacity_rows: None,
        };
        assert!(matches!(
            TiledMatrix::new(&adj, &cfg),
            Err(SparseError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_infinite_threshold_fraction() {
        let adj = power_lawish();
        let cfg = TilingConfig {
            threshold_fraction: f64::INFINITY,
            dmb_capacity_rows: None,
        };
        assert!(matches!(
            TiledMatrix::new(&adj, &cfg),
            Err(SparseError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_zero_dmb_capacity_rows() {
        let adj = power_lawish();
        let cfg = TilingConfig {
            threshold_fraction: 0.2,
            dmb_capacity_rows: Some(0),
        };
        assert!(matches!(
            TiledMatrix::new(&adj, &cfg),
            Err(SparseError::InvalidConfig(_))
        ));
    }

    #[test]
    fn n_zero_is_unrepresentable() {
        // A 0x0 adjacency cannot even be constructed; the tiling layer never
        // sees it. Pin the contract here so a future Coo relaxation fails
        // loudly.
        assert!(matches!(Coo::new(0, 0), Err(SparseError::EmptyDimension)));
    }

    #[test]
    fn single_node_graph_tiles() {
        let adj = Coo::from_triplets(1, 1, [(0, 0, 1.0)]).unwrap();
        let tiled = TiledMatrix::new(&adj, &TilingConfig::default()).unwrap();
        // ceil(1 * 0.2) = 1, so the whole (single-row) matrix is region 1.
        assert_eq!(tiled.threshold(), 1);
        assert_eq!(tiled.total_nnz(), 1);
        assert_eq!(tiled.region(RegionId::HighDegreeRows).nnz(), 1);
        assert_eq!(Csr::from_coo(&tiled.to_coo()), Csr::from_coo(&adj));
    }

    #[test]
    fn single_node_graph_with_zero_threshold() {
        let adj = Coo::from_triplets(1, 1, [(0, 0, 1.0)]).unwrap();
        let cfg = TilingConfig {
            threshold_fraction: 0.0,
            dmb_capacity_rows: None,
        };
        let tiled = TiledMatrix::new(&adj, &cfg).unwrap();
        assert_eq!(tiled.threshold(), 0);
        assert_eq!(tiled.region(RegionId::SparseRest).nnz(), 1);
        assert_eq!(Csr::from_coo(&tiled.to_coo()), Csr::from_coo(&adj));
    }

    #[test]
    fn threshold_equal_to_n_round_trips() {
        // threshold == n: regions 2/3 have zero (padded) rows of real data.
        let adj = power_lawish();
        let cfg = TilingConfig {
            threshold_fraction: 1.0,
            dmb_capacity_rows: None,
        };
        let tiled = TiledMatrix::new(&adj, &cfg).unwrap();
        assert_eq!(tiled.threshold(), adj.rows());
        assert_eq!(tiled.total_nnz(), adj.nnz());
        assert_eq!(Csr::from_coo(&tiled.to_coo()), Csr::from_coo(&adj));
    }

    #[test]
    fn execution_order_starts_with_op_region() {
        assert_eq!(RegionId::EXECUTION_ORDER[0], RegionId::HighDegreeRows);
        let adj = power_lawish();
        let tiled = TiledMatrix::new(&adj, &TilingConfig::default()).unwrap();
        assert_eq!(tiled.regions()[0].id, RegionId::HighDegreeRows);
    }
}
