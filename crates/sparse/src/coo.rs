//! Coordinate-list (COO) sparse matrix.
//!
//! COO is the construction format: graph generators and dataset loaders emit
//! `(row, col, value)` triplets which are then converted to [`Csr`](crate::Csr)
//! or [`Csc`](crate::Csc) for the accelerator engines.

use crate::error::SparseError;

/// A sparse matrix stored as a list of `(row, col, value)` triplets.
///
/// Duplicate coordinates are allowed during construction; conversion to
/// CSR/CSC sums duplicates (the usual finite-element / graph-multigraph
/// convention).
///
/// # Example
///
/// ```
/// use hymm_sparse::Coo;
///
/// # fn main() -> Result<(), hymm_sparse::SparseError> {
/// let mut m = Coo::new(3, 3)?;
/// m.push(0, 1, 1.0)?;
/// m.push(2, 0, -2.5)?;
/// assert_eq!(m.nnz(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl Coo {
    /// Creates an empty `rows x cols` COO matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::EmptyDimension`] if either dimension is zero,
    /// and [`SparseError::MalformedFormat`] if a dimension exceeds `u32::MAX`
    /// (indices are stored as `u32` to halve the index-stream footprint, as
    /// hardware sparse formats do).
    pub fn new(rows: usize, cols: usize) -> Result<Self, SparseError> {
        if rows == 0 || cols == 0 {
            return Err(SparseError::EmptyDimension);
        }
        if rows > u32::MAX as usize || cols > u32::MAX as usize {
            return Err(SparseError::MalformedFormat(
                "dimension exceeds u32 index space".to_string(),
            ));
        }
        Ok(Coo {
            rows,
            cols,
            entries: Vec::new(),
        })
    }

    /// Creates a COO matrix from an explicit triplet list.
    ///
    /// # Errors
    ///
    /// Returns an error if dimensions are zero or any coordinate is out of
    /// bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f32)>,
    ) -> Result<Self, SparseError> {
        let mut m = Coo::new(rows, cols)?;
        for (r, c, v) in triplets {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// Appends one entry.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if `(row, col)` lies outside
    /// the matrix.
    pub fn push(&mut self, row: usize, col: usize, value: f32) -> Result<(), SparseError> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over stored triplets as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Fraction of the matrix that is zero, in `[0, 1]`.
    ///
    /// Duplicates are first coalesced so the figure matches the structural
    /// sparsity reported by graph datasets.
    pub fn sparsity(&self) -> f64 {
        let mut coords: Vec<(u32, u32)> = self.entries.iter().map(|&(r, c, _)| (r, c)).collect();
        coords.sort_unstable();
        coords.dedup();
        let total = self.rows as f64 * self.cols as f64;
        1.0 - coords.len() as f64 / total
    }

    /// Returns the transpose (rows and columns swapped).
    pub fn transpose(&self) -> Coo {
        Coo {
            rows: self.cols,
            cols: self.rows,
            entries: self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect(),
        }
    }

    /// Out-degree (non-zeros per row) of every row, counting duplicates once.
    pub fn row_degrees(&self) -> Vec<usize> {
        let mut coords: Vec<(u32, u32)> = self.entries.iter().map(|&(r, c, _)| (r, c)).collect();
        coords.sort_unstable();
        coords.dedup();
        let mut deg = vec![0usize; self.rows];
        for (r, _) in coords {
            deg[r as usize] += 1;
        }
        deg
    }
}

impl Extend<(usize, usize, f32)> for Coo {
    /// Extends the matrix with triplets, **panicking** on out-of-bounds
    /// coordinates. Use [`Coo::push`] for fallible insertion.
    fn extend<T: IntoIterator<Item = (usize, usize, f32)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v)
                .expect("coordinate out of bounds in Extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_dims() {
        assert_eq!(Coo::new(0, 3).unwrap_err(), SparseError::EmptyDimension);
        assert_eq!(Coo::new(3, 0).unwrap_err(), SparseError::EmptyDimension);
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut m = Coo::new(2, 2).unwrap();
        let err = m.push(2, 0, 1.0).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn from_triplets_round_trip() {
        let m = Coo::from_triplets(3, 4, [(0, 0, 1.0), (2, 3, 2.0)]).unwrap();
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 0, 1.0), (2, 3, 2.0)]);
    }

    #[test]
    fn sparsity_counts_distinct_coordinates() {
        let mut m = Coo::new(2, 2).unwrap();
        m.push(0, 0, 1.0).unwrap();
        m.push(0, 0, 2.0).unwrap(); // duplicate coordinate
        assert!((m.sparsity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let m = Coo::from_triplets(2, 3, [(0, 2, 5.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.iter().next(), Some((2, 0, 5.0)));
    }

    #[test]
    fn row_degrees_ignores_duplicates() {
        let m = Coo::from_triplets(3, 3, [(0, 1, 1.0), (0, 1, 1.0), (0, 2, 1.0)]).unwrap();
        assert_eq!(m.row_degrees(), vec![2, 0, 0]);
    }

    #[test]
    fn extend_appends() {
        let mut m = Coo::new(2, 2).unwrap();
        m.extend([(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(m.nnz(), 2);
    }
}
