//! SIMD-shaped elementwise `f32` kernels.
//!
//! Every numeric inner loop of the simulator — the PE array's
//! scalar-times-row MAC ([`axpy`]), the outer-product column update built on
//! it, and elementwise scaling ([`scale`]) — is purely elementwise: element
//! `i` of the output depends only on element `i` of the inputs, with exactly
//! one multiply and (for axpy) one add per element. There is no reduction,
//! so blocking the loop into fixed-width chunks changes neither the order
//! nor the association of any floating-point operation: the blocked kernels
//! are **bit-identical** to their scalar references on every input,
//! including NaNs, infinities, signed zeros and subnormals. That is what
//! makes them legal inside a simulator whose reports must stay bit-exact.
//!
//! The blocked shape (`chunks_exact` over [`LANES`]-wide chunks with a
//! scalar remainder) is what LLVM's auto-vectoriser wants to see: the chunk
//! loop has a compile-time trip count and no bounds checks, so it compiles
//! to packed SIMD on any target without `unsafe` or intrinsics.
//!
//! The property test at the bottom pins bit-identity across ragged widths
//! (0, 1, 15, 16, 17, 64-aligned, primes) and adversarial values; the
//! Criterion benchmark `hymm-bench/benches/kernels.rs` keeps the scalar
//! references around as baselines.

/// Chunk width of the blocked kernels: 8 lanes = one 256-bit vector of
/// `f32`, and an even divisor of the 64-byte accelerator line (16 elements).
pub const LANES: usize = 8;

/// Blocked `dst[i] += scalar * src[i]` — the PE array's scalar-vector MAC.
///
/// Bit-identical to [`axpy_scalar`] (see the module docs for why).
///
/// # Panics
///
/// Panics if `dst.len() != src.len()`.
pub fn axpy(dst: &mut [f32], scalar: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "axpy operand lengths must match");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (db, sb) in d.by_ref().zip(s.by_ref()) {
        for i in 0..LANES {
            db[i] += scalar * sb[i];
        }
    }
    for (dv, &sv) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dv += scalar * sv;
    }
}

/// Scalar reference for [`axpy`]; kept as the bit-identity oracle and the
/// benchmark baseline.
pub fn axpy_scalar(dst: &mut [f32], scalar: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "axpy operand lengths must match");
    for (dv, &sv) in dst.iter_mut().zip(src) {
        *dv += scalar * sv;
    }
}

/// Blocked in-place `dst[i] *= scalar` (degree normalisation, ReLU masks).
///
/// Bit-identical to [`scale_scalar`].
pub fn scale(dst: &mut [f32], scalar: f32) {
    let mut d = dst.chunks_exact_mut(LANES);
    for db in d.by_ref() {
        for v in db.iter_mut() {
            *v *= scalar;
        }
    }
    for v in d.into_remainder() {
        *v *= scalar;
    }
}

/// Scalar reference for [`scale`].
pub fn scale_scalar(dst: &mut [f32], scalar: f32) {
    for v in dst {
        *v *= scalar;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Ragged widths the issue calls out: empty, single, just under/at/over
    /// one chunk, 64-aligned, and primes straddling several chunk counts.
    const WIDTHS: [usize; 12] = [0, 1, 7, 15, 16, 17, 31, 64, 128, 13, 97, 251];

    /// Adversarial values mixed into the random streams.
    const SPECIALS: [f32; 8] = [
        0.0,
        -0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::MIN_POSITIVE,
        1.0e-40, // subnormal
        f32::MAX,
    ];

    fn random_vec(rng: &mut rand_pcg::Pcg64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|_| {
                if rng.gen_ratio(1, 8) {
                    SPECIALS[rng.gen_range(0..SPECIALS.len())]
                } else {
                    rng.gen_range(-1.0e4f32..1.0e4)
                }
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn axpy_bit_identical_to_scalar_across_ragged_widths() {
        let mut rng = rand_pcg::Pcg64::seed_from_u64(0xB17_1DE7);
        for &w in &WIDTHS {
            for trial in 0..50 {
                let src = random_vec(&mut rng, w);
                let base = random_vec(&mut rng, w);
                let scalar = if trial % 10 == 0 {
                    SPECIALS[trial / 10 % SPECIALS.len()]
                } else {
                    rng.gen_range(-100.0f32..100.0)
                };
                let mut blocked = base.clone();
                let mut scalar_ref = base;
                axpy(&mut blocked, scalar, &src);
                axpy_scalar(&mut scalar_ref, scalar, &src);
                assert_eq!(
                    bits(&blocked),
                    bits(&scalar_ref),
                    "width {w} trial {trial} scalar {scalar}"
                );
            }
        }
    }

    #[test]
    fn scale_bit_identical_to_scalar_across_ragged_widths() {
        let mut rng = rand_pcg::Pcg64::seed_from_u64(0x5CA1E);
        for &w in &WIDTHS {
            for trial in 0..50 {
                let base = random_vec(&mut rng, w);
                let scalar = rng.gen_range(-100.0f32..100.0);
                let mut blocked = base.clone();
                let mut scalar_ref = base;
                scale(&mut blocked, scalar);
                scale_scalar(&mut scalar_ref, scalar);
                assert_eq!(bits(&blocked), bits(&scalar_ref), "width {w} trial {trial}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn axpy_rejects_mismatched_lengths() {
        axpy(&mut [0.0; 4], 1.0, &[0.0; 5]);
    }
}
