//! Compressed sparse row (CSR) matrix.
//!
//! CSR is the format consumed by the row-wise-product (RWP) engine: the
//! accelerator streams one sparse row at a time, multiplying each non-zero
//! with the corresponding dense-matrix row and accumulating into an
//! output-stationary row (paper §II-B, Fig. 1a).

use crate::coo::Coo;
use crate::error::SparseError;

/// A sparse matrix in compressed sparse row format.
///
/// Within each row, column indices are strictly increasing; duplicate
/// coordinates from the source [`Coo`] are summed during conversion.
///
/// # Example
///
/// ```
/// use hymm_sparse::{Coo, Csr};
///
/// # fn main() -> Result<(), hymm_sparse::SparseError> {
/// let coo = Coo::from_triplets(2, 3, [(0, 2, 1.0), (0, 0, 3.0), (1, 1, 2.0)])?;
/// let csr = Csr::from_coo(&coo);
/// let (cols, vals) = csr.row(0);
/// assert_eq!(cols, &[0, 2]);
/// assert_eq!(vals, &[3.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from a [`Coo`], summing duplicate coordinates.
    pub fn from_coo(coo: &Coo) -> Csr {
        if let Some(csr) = Csr::from_unique_keys(coo) {
            return csr;
        }
        let mut triplets: Vec<(u32, u32, f32)> = coo
            .iter()
            .map(|(r, c, v)| (r as u32, c as u32, v))
            .collect();
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let rows = coo.rows();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        let mut cur_row = 0u32;
        for (r, c, v) in triplets {
            while cur_row < r {
                row_ptr.push(col_idx.len());
                cur_row += 1;
            }
            // Sum duplicates: the previous entry belongs to the same (still
            // open) row and has the same column index.
            if *row_ptr.last().unwrap() < col_idx.len() && col_idx.last() == Some(&c) {
                *values.last_mut().unwrap() += v;
            } else {
                col_idx.push(c);
                values.push(v);
            }
        }
        while row_ptr.len() < rows + 1 {
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows,
            cols: coo.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// [`Csr::from_coo`] for duplicate-free inputs, in *any* entry order:
    /// a counting scatter groups entries by row in O(nnz), then each row
    /// whose columns are not already ascending (entries within a row keep
    /// their input order, so sorted inputs skip this entirely) is sorted
    /// locally. With unique keys the globally sorted triplet order is a
    /// function of the key set alone, so this produces bit-identical arrays
    /// to the comparison-sort path. A duplicate key — the one case where
    /// summation order matters — is detected as an equal adjacent pair
    /// after the local sort and reported as `None`, deferring to the
    /// general path.
    fn from_unique_keys(coo: &Coo) -> Option<Csr> {
        let rows = coo.rows();
        let nnz = coo.nnz();
        let mut row_ptr = vec![0usize; rows + 1];
        for (r, _, _) in coo.iter() {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0f32; nnz];
        let mut next = row_ptr.clone();
        for (r, c, v) in coo.iter() {
            let pos = next[r];
            next[r] += 1;
            col_idx[pos] = c as u32;
            values[pos] = v;
        }
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..rows {
            let (s, e) = (row_ptr[r], row_ptr[r + 1]);
            if col_idx[s..e].windows(2).all(|w| w[0] < w[1]) {
                continue;
            }
            scratch.clear();
            scratch.extend(
                col_idx[s..e]
                    .iter()
                    .copied()
                    .zip(values[s..e].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            if scratch.windows(2).any(|w| w[0].0 == w[1].0) {
                return None;
            }
            for (i, &(c, v)) in scratch.iter().enumerate() {
                col_idx[s + i] = c;
                values[s + i] = v;
            }
        }
        Some(Csr {
            rows,
            cols: coo.cols(),
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Constructs a CSR matrix from raw component arrays, validating all
    /// structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedFormat`] if `row_ptr` is not monotone,
    /// does not have `rows + 1` entries, does not end at `values.len()`, if
    /// column indices are out of bounds or not strictly increasing within a
    /// row, or if `col_idx` and `values` lengths differ.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Csr, SparseError> {
        if rows == 0 || cols == 0 {
            return Err(SparseError::EmptyDimension);
        }
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::MalformedFormat(format!(
                "row_ptr has {} entries, expected {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::MalformedFormat(format!(
                "col_idx has {} entries but values has {}",
                col_idx.len(),
                values.len()
            )));
        }
        if row_ptr[0] != 0 || *row_ptr.last().unwrap() != values.len() {
            return Err(SparseError::MalformedFormat(
                "row_ptr must start at 0 and end at nnz".to_string(),
            ));
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(SparseError::MalformedFormat(
                    "row_ptr must be monotonically non-decreasing".to_string(),
                ));
            }
        }
        for r in 0..rows {
            let seg = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in seg.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::MalformedFormat(format!(
                        "column indices in row {r} not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = seg.last() {
                if last as usize >= cols {
                    return Err(SparseError::MalformedFormat(format!(
                        "column index {last} out of bounds in row {r}"
                    )));
                }
            }
        }
        Ok(Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array (length `nnz`).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array (length `nnz`).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Column indices and values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Number of non-zeros in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Value at `(r, c)`, or `0.0` if the coordinate is structurally zero
    /// or out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        if r >= self.rows || c >= self.cols {
            return 0.0;
        }
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored non-zeros in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Converts back to the triplet format.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols).expect("dimensions already validated");
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("indices already validated");
        }
        coo
    }

    /// Non-zero count per row.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_nnz(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        let coo = Coo::from_triplets(
            3,
            4,
            [
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap();
        Csr::from_coo(&coo)
    }

    #[test]
    fn from_coo_sorts_rows() {
        let coo = Coo::from_triplets(2, 3, [(1, 2, 1.0), (0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        let m = Csr::from_coo(&coo);
        assert_eq!(m.row(0), (&[1u32][..], &[2.0f32][..]));
        assert_eq!(m.row(1), (&[0u32, 2][..], &[3.0f32, 1.0][..]));
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let coo = Coo::from_triplets(1, 2, [(0, 1, 1.5), (0, 1, 2.5)]).unwrap();
        let m = Csr::from_coo(&coo);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 4.0);
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let m = sample();
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(9, 9), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
    }

    #[test]
    fn empty_rows_have_zero_nnz() {
        let coo = Coo::from_triplets(4, 4, [(3, 3, 1.0)]).unwrap();
        let m = Csr::from_coo(&coo);
        assert_eq!(m.degrees(), vec![0, 0, 0, 1]);
    }

    #[test]
    fn round_trip_through_coo() {
        let m = sample();
        let back = Csr::from_coo(&m.to_coo());
        assert_eq!(m, back);
    }

    #[test]
    fn from_raw_parts_accepts_valid() {
        let m = Csr::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).unwrap();
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn from_raw_parts_rejects_bad_ptr_len() {
        let err = Csr::from_raw_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedFormat(_)));
    }

    #[test]
    fn from_raw_parts_rejects_non_monotone_ptr() {
        let err = Csr::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedFormat(_)));
    }

    #[test]
    fn from_raw_parts_rejects_unsorted_cols() {
        let err = Csr::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedFormat(_)));
    }

    #[test]
    fn from_raw_parts_rejects_col_out_of_bounds() {
        let err = Csr::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::MalformedFormat(_)));
    }

    #[test]
    fn counting_path_matches_sort_path() {
        // A seeded random matrix built once from shuffled triplets (the
        // counting-scatter fast path handles arbitrary order) and once from
        // the same triplets with a duplicate appended (forcing the general
        // comparison-sort path): structure must agree exactly, and the
        // unique-key prefix must agree in value bits.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64::seed_from_u64(11);
        let (rows, cols) = (41, 19);
        let mut triplets = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(0.2) {
                    triplets.push((r, c, rng.gen_range(-2.0f32..2.0)));
                }
            }
        }
        for i in (1..triplets.len()).rev() {
            let j = rng.gen_range(0..=i);
            triplets.swap(i, j);
        }
        let fast = Csr::from_coo(&Coo::from_triplets(rows, cols, triplets.clone()).unwrap());
        // Appending a zero-valued duplicate of an existing entry changes no
        // value but defeats the unique-key precondition.
        let (dr, dc, _) = triplets[0];
        triplets.push((dr, dc, 0.0));
        let general = Csr::from_coo(&Coo::from_triplets(rows, cols, triplets).unwrap());
        assert_eq!(fast.row_ptr(), general.row_ptr());
        assert_eq!(fast.col_idx(), general.col_idx());
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(fast.values()), bits(general.values()));
    }

    #[test]
    fn iter_yields_row_major() {
        let m = sample();
        let got: Vec<_> = m.iter().collect();
        assert_eq!(
            got,
            vec![
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0)
            ]
        );
    }
}
