//! Criterion benchmark of HyMM's only preprocessing step — degree sorting —
//! the measurement behind Table II's "sorting cost" column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hymm_graph::datasets::Dataset;
use hymm_graph::normalize::gcn_normalize;
use hymm_graph::sort::degree_sort;

fn bench_degree_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("degree_sort");
    group.sample_size(10);
    for dataset in [Dataset::Cora, Dataset::AmazonPhoto] {
        let w = dataset.synthesize_scaled(4_000);
        group.bench_with_input(
            BenchmarkId::from_parameter(dataset.abbrev()),
            &w.adjacency,
            |b, adj| b.iter(|| degree_sort(adj).expect("square")),
        );
    }
    group.finish();
}

fn bench_normalisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gcn_normalize");
    group.sample_size(10);
    let w = Dataset::AmazonPhoto.synthesize_scaled(4_000);
    group.bench_function("AP_4k", |b| {
        b.iter(|| gcn_normalize(&w.adjacency).expect("square"))
    });
    group.finish();
}

criterion_group!(benches, bench_degree_sort, bench_normalisation);
criterion_main!(benches);
