//! Criterion benchmarks of the three simulated dataflows (the workload
//! behind the paper's Fig. 7, at a CI-friendly scale).
//!
//! These measure *simulator throughput*, complementing the `fig7` binary
//! which reports *simulated cycles*: run `cargo bench -p hymm-bench` for
//! statistical timing, `cargo run --release -p hymm-bench --bin fig7` for
//! the paper's numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_gcn::{run_inference, GcnModel};
use hymm_graph::datasets::Dataset;

fn bench_dataflows(c: &mut Criterion) {
    let mut group = c.benchmark_group("gcn_inference");
    group.sample_size(10);
    for dataset in [Dataset::Cora, Dataset::AmazonPhoto] {
        let w = dataset.synthesize_scaled(1_000);
        let model = GcnModel::two_layer(w.spec.feature_len, w.spec.layer_dim, w.spec.layer_dim, 42);
        let config = AcceleratorConfig::default();
        for df in Dataflow::ALL {
            group.bench_with_input(
                BenchmarkId::new(df.label(), dataset.abbrev()),
                &df,
                |b, &df| {
                    b.iter(|| {
                        run_inference(&config, df, &w.adjacency, &w.features, &model)
                            .expect("shapes consistent")
                            .report
                            .cycles
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_tiling_fractions(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_tiling_fraction");
    group.sample_size(10);
    let w = Dataset::AmazonComputers.synthesize_scaled(1_000);
    let model = GcnModel::two_layer(w.spec.feature_len, 16, 16, 42);
    for percent in [0u32, 20, 100] {
        let config = AcceleratorConfig {
            tiling_fraction: percent as f64 / 100.0,
            ..AcceleratorConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(percent), &config, |b, cfg| {
            b.iter(|| {
                run_inference(cfg, Dataflow::Hybrid, &w.adjacency, &w.features, &model)
                    .expect("shapes consistent")
                    .report
                    .cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dataflows, bench_tiling_fractions);
criterion_main!(benches);
