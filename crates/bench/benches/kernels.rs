//! Criterion benchmarks of the blocked numeric kernels against their scalar
//! references, and of the DMB read hot paths those kernels feed.
//!
//! The blocked kernels are bit-identical to the scalar ones by construction
//! (see `hymm_sparse::kernels`); this bench exists to keep the *speed* claim
//! honest — if a future change defeats the auto-vectoriser, `blocked` stops
//! beating `scalar` here long before it shows up in suite wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hymm_mem::dram::AccessPattern;
use hymm_mem::{Dmb, Dram, LineAddr, MatrixKind, MemConfig};
use hymm_sparse::kernels;

/// Row widths in elements: one 64-byte line (the GCN layer dimension), a
/// mid-size row, and a row long enough for vector throughput to dominate.
const WIDTHS: [usize; 3] = [16, 64, 256];

fn bench_axpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("axpy");
    for width in WIDTHS {
        let src: Vec<f32> = (0..width).map(|i| (i as f32).sin()).collect();
        let mut blocked = vec![0.0f32; width];
        group.bench_with_input(BenchmarkId::new("blocked", width), &width, |b, _| {
            b.iter(|| kernels::axpy(&mut blocked, 0.5, &src))
        });
        let mut scalar = vec![0.0f32; width];
        group.bench_with_input(BenchmarkId::new("scalar", width), &width, |b, _| {
            b.iter(|| kernels::axpy_scalar(&mut scalar, 0.5, &src))
        });
    }
    group.finish();
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    for width in WIDTHS {
        let mut blocked = vec![1.0f32; width];
        group.bench_with_input(BenchmarkId::new("blocked", width), &width, |b, _| {
            b.iter(|| kernels::scale(&mut blocked, 0.999_999))
        });
        let mut scalar = vec![1.0f32; width];
        group.bench_with_input(BenchmarkId::new("scalar", width), &width, |b, _| {
            b.iter(|| kernels::scale_scalar(&mut scalar, 0.999_999))
        });
    }
    group.finish();
}

/// Reads per iteration of the DMB benchmarks.
const DMB_BATCH: u64 = 256;

fn bench_dmb_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmb_read");

    // Resident working set: every read hits, and runs of consecutive reads
    // touch the same line — the last-line MRU probe plus the LRU tail-skip
    // carry the whole batch.
    group.bench_function("resident_hit", |b| {
        let config = MemConfig::default();
        let mut dmb = Dmb::new(&config);
        let mut dram = Dram::new(&config);
        let mut now = 0u64;
        for i in 0..DMB_BATCH / 4 {
            dmb.read(
                now,
                LineAddr::new(MatrixKind::Weight, i),
                &mut dram,
                AccessPattern::Sequential,
            );
            now += 1;
        }
        b.iter(|| {
            let mut last = 0u64;
            for i in 0..DMB_BATCH {
                let o = dmb.read(
                    now,
                    LineAddr::new(MatrixKind::Weight, i / 4),
                    &mut dram,
                    AccessPattern::Sequential,
                );
                now += 1;
                last = o.ready;
            }
            last
        })
    });

    // Cold stream: every read is a primary miss — MSHR allocation, DRAM
    // issue, insert and eviction churn once the table fills.
    group.bench_function("streaming_miss", |b| {
        let config = MemConfig::default();
        let mut dmb = Dmb::new(&config);
        let mut dram = Dram::new(&config);
        let mut now = 0u64;
        let mut next_line = 0u64;
        b.iter(|| {
            let mut last = 0u64;
            for _ in 0..DMB_BATCH {
                let o = dmb.read(
                    now,
                    LineAddr::new(MatrixKind::Combination, next_line),
                    &mut dram,
                    AccessPattern::Sequential,
                );
                next_line += 1;
                now = o.ready;
                last = o.ready;
            }
            last
        })
    });

    group.finish();
}

criterion_group!(benches, bench_axpy, bench_scale, bench_dmb_read);
criterion_main!(benches);
