//! Criterion benchmarks of the sparse substrate: format conversions,
//! functional SpDeMM dataflows, and region tiling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hymm_graph::generator::preferential_attachment;
use hymm_sparse::spdemm;
use hymm_sparse::tiling::{TiledMatrix, TilingConfig};
use hymm_sparse::{Csc, Csr, Dense};

fn bench_conversions(c: &mut Criterion) {
    let mut group = c.benchmark_group("format_conversion");
    for &n in &[1_000usize, 4_000] {
        let coo = preferential_attachment(n, n * 5, 7);
        group.bench_with_input(BenchmarkId::new("coo_to_csr", n), &coo, |b, coo| {
            b.iter(|| Csr::from_coo(coo))
        });
        group.bench_with_input(BenchmarkId::new("coo_to_csc", n), &coo, |b, coo| {
            b.iter(|| Csc::from_coo(coo))
        });
    }
    group.finish();
}

fn bench_spdemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_spdemm");
    let coo = preferential_attachment(2_000, 10_000, 7);
    let csr = Csr::from_coo(&coo);
    let csc = Csc::from_coo(&coo);
    let dense = Dense::from_fn(2_000, 16, |r, c| ((r + c) % 13) as f32 * 0.1);
    group.bench_function("row_wise_product", |b| {
        b.iter(|| spdemm::row_wise_product(&csr, &dense))
    });
    group.bench_function("outer_product", |b| {
        b.iter(|| spdemm::outer_product(&csc, &dense))
    });
    group.finish();
}

fn bench_tiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("region_tiling");
    let coo = preferential_attachment(4_000, 20_000, 7);
    let cfg = TilingConfig::default();
    group.bench_function("tile_4k_nodes", |b| {
        b.iter(|| TiledMatrix::new(&coo, &cfg).expect("square"))
    });
    group.finish();
}

criterion_group!(benches, bench_conversions, bench_spdemm, bench_tiling);
criterion_main!(benches);
