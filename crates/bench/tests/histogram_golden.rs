//! Golden shapes for the `hymmHistograms` trace sidecar.
//!
//! Pins the exact bucket contents of the three embedded histograms (MSHR
//! occupancy, read-miss latency, LSQ queue depth) for the OP dataflow on
//! the preferential-attachment fixture under the tiny-DMB configuration —
//! the same fixture `tests/timing_golden.rs` uses for its eviction
//! coverage, so the miss/MSHR paths are genuinely exercised. A diff here
//! means the memory system's latency or occupancy *distribution* moved,
//! which the scalar cycle goldens cannot see.
//!
//! Regenerating (only after an intentional timing-model change):
//! `cargo test -p hymm-bench --test histogram_golden -- --nocapture`
//! prints the actual lines on failure; paste them over the constant.

use hymm_bench::trace_json::histograms;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_gcn::inference::run_inference;
use hymm_gcn::model::GcnModel;
use hymm_graph::features::sparse_features;
use hymm_graph::generator::preferential_attachment;

#[test]
fn histogram_shapes_match_golden() {
    let adj = preferential_attachment(48, 160, 7);
    let x = sparse_features(48, 12, 0.6, 11);
    let model = GcnModel::two_layer(12, 16, 5, 3);
    let mut config = AcceleratorConfig::default();
    config.mem.trace = true;
    config.mem.dmb_bytes = 2048;
    config.mem.mshr_count = 4;
    config.mem.prefetch_mshr_cap = 2;

    let report = run_inference(&config, Dataflow::Outer, &adj, &x, &model)
        .unwrap()
        .report;
    let trace = report.trace.expect("tracing enabled");

    let got: Vec<String> = histograms(&trace)
        .iter()
        .map(|h| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(lo, count)| format!("{lo}:{count}"))
                .collect();
            format!("{} {}", h.name, buckets.join(" "))
        })
        .collect();
    if got != GOLDEN {
        eprintln!("--- actual histograms (paste over the golden constant) ---");
        for line in &got {
            eprintln!("    \"{line}\",");
        }
        eprintln!("--- end actual histograms ---");
    }
    let got_refs: Vec<&str> = got.iter().map(String::as_str).collect();
    assert_eq!(got_refs, GOLDEN, "histogram shapes drifted from golden");
}

const GOLDEN: &[&str] = &[
    "mshr-occupancy 0:126 1:130 2:6 3:1226 4:1224",
    "miss-latency 0:702 64:11 128:13 256:22 512:52 1024:560",
    "lsq-depth 0:2 2:3 3:1 4:2 5:2 6:3 7:1 8:2 9:2 10:2 11:2 12:2 13:2 14:2 15:2 16:2 17:2 18:2 19:2 20:2 21:3 22:1 23:2 24:2 25:2 26:2 27:2 28:2 29:2 30:2 31:2 32:2 33:2 34:2 35:2 36:2 37:2 38:2 39:2 40:2 41:2 42:2 43:2 44:2 45:2 46:2 47:3 48:2 49:1 50:2 51:2 52:2 53:2 54:2 55:2 56:2 57:2 58:2 59:2 60:2 61:2 62:2 63:2 64:2 65:2 66:2 67:3 68:1 69:2 70:2 71:2 72:2 73:2 74:2 75:2 76:2 77:2 78:3 79:1 80:2 81:2 82:3 83:1 84:2 85:2 86:2 87:2 88:2 89:2 90:2 91:2 92:2 93:2 94:2 95:2 96:2 97:2 98:2 99:2 100:2 101:2 102:2 103:2 104:2 105:2 106:2 107:2 108:2 109:2 110:3 111:1 112:2 113:2 114:2 115:2 116:2 117:2 118:2 119:2 120:2 121:2 122:2 123:2 124:3 125:1 126:2 127:1350 128:994",
];
