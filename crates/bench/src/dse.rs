//! Stall-guided design-space exploration over the accelerator's full
//! configuration surface (the `dse` binary's engine).
//!
//! The explorer enumerates a factorial [`Space`] over the PE side
//! (`num_pes`/`mac_latency`/`mac_pipelined`/`lane_gating`), the memory side
//! (`dmb_bytes`/`mshr_count`/`lsq_entries`/prefetch policy+degree) and the
//! hybrid tiling fraction, rejects points that fail
//! [`AcceleratorConfig::validate`] or bust the iso-area budget
//! (`--area-budget` × the Table III total at 7 nm via
//! [`hymm_core::area::estimate_area`]), and prunes the rest with a
//! successive-halving ladder:
//!
//! 1. **Screen** every candidate on small (`--screen-scale`) datasets.
//! 2. **Stall-ceiling cut**: the Table III incumbent's full-scale dominant
//!    non-idle stall share (plus a fixed margin) is a per-dataflow ceiling.
//!    A candidate is cut when it is *dominated by the incumbent* at screen
//!    scale — no cheaper in area and slower on **every** dataflow — and at
//!    least one dataflow's dominant share blows its ceiling. The cycle
//!    clause makes the cut legal for the Pareto fronts (such a point could
//!    only enter a front by beating the incumbent somewhere at full scale);
//!    the stall clause is the evidence that the screen-scale deficit is
//!    structural (a saturated bottleneck class), not small-sample noise.
//! 3. **Promote** the best `1/eta` of the survivors (ranked by combined
//!    screened cycles over the three paper dataflows) to full `--scale`.
//!
//! Every (configuration, dataflow, scale) evaluation is memoised by
//! [`AcceleratorConfig::content_hash`], so the incumbent's ceiling run, the
//! screen pass and the promotion pass never repeat a simulation. The output
//! is one Pareto front per dataflow over (suite cycles, area), with energy
//! reported alongside, plus the single best configuration under the budget
//! — the one the `tuned` preset ([`hymm_core::config::Preset`]) bakes in.
//!
//! Results are deterministic at any `--threads` count: simulations fan out
//! over [`pool::map_indexed`] (input-ordered results) and every reduction
//! runs on the caller's thread in fixed candidate order.

use crate::args::{parse_dataset_list, ArgError};
use crate::pool;
use crate::table::TextTable;
use hymm_core::area::estimate_area;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_core::energy::EnergyModel;
use hymm_core::stats::StallBreakdown;
use hymm_core::PreparedAdjacency;
use hymm_gcn::{prepare_adjacency, run_inference_prepared, GcnModel};
use hymm_graph::datasets::Dataset;
use hymm_mem::PrefetchPolicy;
use hymm_sparse::Coo;
use std::collections::HashMap;

/// Margin added to the incumbent's dominant stall share before it becomes
/// the early-abort ceiling: small enough to keep the cut real, large enough
/// that screen-scale noise in the share cannot cut a genuinely better
/// configuration.
const CEILING_MARGIN: f64 = 0.02;

/// Which candidate grid to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceKind {
    /// 2×2×2 smoke grid (8 points) for CI and the unit tests.
    Tiny,
    /// The full search space described in DESIGN.md §13 (972 points).
    Default,
}

impl SpaceKind {
    /// Label used by `--space`.
    pub fn label(&self) -> &'static str {
        match self {
            SpaceKind::Tiny => "tiny",
            SpaceKind::Default => "default",
        }
    }

    /// Parses a `--space` argument value.
    pub fn parse(s: &str) -> Option<SpaceKind> {
        [SpaceKind::Tiny, SpaceKind::Default]
            .into_iter()
            .find(|k| k.label() == s)
    }
}

/// The factorial search space: one axis per knob group. Every combination
/// is a candidate unless validation or the area budget rejects it.
#[derive(Debug, Clone)]
pub struct Space {
    /// `(num_pes, lane_gating)` pairs.
    pub pe: Vec<(usize, bool)>,
    /// `(mac_latency, mac_pipelined)` pairs.
    pub mac: Vec<(u64, bool)>,
    /// DMB capacities in KB.
    pub dmb_kb: Vec<usize>,
    /// MSHR counts.
    pub mshr: Vec<usize>,
    /// LSQ entry counts.
    pub lsq: Vec<usize>,
    /// `(policy, degree)` pairs for the hardware prefetcher.
    pub prefetch: Vec<(PrefetchPolicy, usize)>,
    /// Hybrid tiling fractions.
    pub tiling: Vec<f64>,
}

impl Space {
    /// The grid for a [`SpaceKind`]. Both grids contain the Table III
    /// incumbent (all-default combination) by construction.
    pub fn of(kind: SpaceKind) -> Space {
        let d = AcceleratorConfig::default();
        match kind {
            SpaceKind::Tiny => Space {
                pe: vec![(16, false), (32, true)],
                mac: vec![(1, false)],
                dmb_kb: vec![256, 512],
                mshr: vec![32],
                lsq: vec![128],
                prefetch: vec![
                    (PrefetchPolicy::Off, d.mem.prefetch_degree),
                    (PrefetchPolicy::SmqStream, 2),
                ],
                tiling: vec![0.20],
            },
            SpaceKind::Default => Space {
                pe: vec![(16, false), (32, false), (32, true)],
                // (4, false) trades the pipelined unit's stage area for an
                // initiation interval of 4 — the classic point the stall
                // ceiling should recognise as mac-saturated and cut.
                mac: vec![(1, false), (4, true), (4, false)],
                // 1024 KB is deliberately present and always over the 2×
                // budget: it keeps the area constraint binding instead of
                // vacuous.
                dmb_kb: vec![256, 512, 1024],
                mshr: vec![32, 64],
                lsq: vec![128, 256],
                prefetch: vec![
                    (PrefetchPolicy::Off, d.mem.prefetch_degree),
                    (PrefetchPolicy::SmqStream, 2),
                    (PrefetchPolicy::SmqStream, 4),
                ],
                tiling: vec![0.10, 0.20, 0.30],
            },
        }
    }

    /// Number of points in the exhaustive grid (before validation and the
    /// area budget).
    pub fn grid_size(&self) -> usize {
        self.pe.len()
            * self.mac.len()
            * self.dmb_kb.len()
            * self.mshr.len()
            * self.lsq.len()
            * self.prefetch.len()
            * self.tiling.len()
    }
}

/// One point of the search space that survived validation and the budget.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Index in generation order (stable tie-breaker everywhere).
    pub id: usize,
    /// Compact human-readable knob summary, e.g.
    /// `pe32g mac1 dmb512K mshr64 lsq128 pf:smq-stream@2 T0.20`.
    pub desc: String,
    /// The architectural configuration (host observability knobs default).
    pub config: AcceleratorConfig,
    /// Total area at 7 nm in mm².
    pub area_7nm: f64,
    /// [`AcceleratorConfig::content_hash`] — the memoisation identity.
    pub hash: u64,
}

/// Outcome of candidate generation.
#[derive(Debug, Clone)]
pub struct Generation {
    /// In-budget, valid candidates in grid order; the Table III incumbent
    /// is always present.
    pub candidates: Vec<Candidate>,
    /// Exhaustive grid size.
    pub grid: usize,
    /// Points rejected by the iso-area budget.
    pub over_budget: usize,
    /// Points rejected by [`AcceleratorConfig::validate`].
    pub invalid: usize,
    /// Absolute area budget in mm² at 7 nm.
    pub budget_7nm: f64,
}

fn describe(config: &AcceleratorConfig) -> String {
    let gating = if config.lane_gating { "g" } else { "" };
    let pipe = if config.mac_pipelined { "p" } else { "" };
    let pf = match config.mem.prefetch {
        PrefetchPolicy::Off => "pf:off".to_string(),
        p => format!("pf:{}@{}", p.label(), config.mem.prefetch_degree),
    };
    format!(
        "pe{}{gating} mac{}{pipe} dmb{}K mshr{} lsq{} {pf} T{:.2}",
        config.num_pes,
        config.mac_latency,
        config.mem.dmb_bytes / 1024,
        config.mem.mshr_count,
        config.mem.lsq_entries,
        config.tiling_fraction,
    )
}

/// Enumerates the grid, keeping valid candidates whose area is at most
/// `area_budget` × the Table III total.
pub fn generate(space: &Space, area_budget: f64) -> Generation {
    let budget_7nm = area_budget * estimate_area(&AcceleratorConfig::default()).total_7nm();
    let incumbent_hash = AcceleratorConfig::default().content_hash();
    let mut candidates = Vec::new();
    let mut over_budget = 0;
    let mut invalid = 0;
    for &(pes, gating) in &space.pe {
        for &(lat, pipe) in &space.mac {
            for &kb in &space.dmb_kb {
                for &mshr in &space.mshr {
                    for &lsq in &space.lsq {
                        for &(policy, degree) in &space.prefetch {
                            for &t in &space.tiling {
                                let mut config = AcceleratorConfig {
                                    num_pes: pes,
                                    lane_gating: gating,
                                    mac_latency: lat,
                                    mac_pipelined: pipe,
                                    tiling_fraction: t,
                                    ..AcceleratorConfig::default()
                                };
                                config.mem.dmb_bytes = kb * 1024;
                                config.mem.mshr_count = mshr;
                                config.mem.lsq_entries = lsq;
                                config.mem.prefetch = policy;
                                config.mem.prefetch_degree = degree;
                                // Keep the demand-priority cap legal for
                                // small MSHR pools (timing-inert when off).
                                config.mem.prefetch_mshr_cap =
                                    config.mem.prefetch_mshr_cap.min(mshr.saturating_sub(1));
                                if config.validate().is_err() {
                                    invalid += 1;
                                    continue;
                                }
                                let area = estimate_area(&config).total_7nm();
                                if area > budget_7nm {
                                    over_budget += 1;
                                    continue;
                                }
                                candidates.push(Candidate {
                                    id: candidates.len(),
                                    desc: describe(&config),
                                    area_7nm: area,
                                    hash: config.content_hash(),
                                    config,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    // The ladder anchors every ceiling and speedup on the incumbent, so a
    // space that omits it (or a budget under 1.0×) gets it appended.
    if !candidates.iter().any(|c| c.hash == incumbent_hash) {
        let config = AcceleratorConfig::default();
        candidates.push(Candidate {
            id: candidates.len(),
            desc: describe(&config),
            area_7nm: estimate_area(&config).total_7nm(),
            hash: incumbent_hash,
            config,
        });
    }
    Generation {
        candidates,
        grid: space.grid_size(),
        over_budget,
        invalid,
        budget_7nm,
    }
}

/// A dataset prepared once per scale and shared by every evaluation.
pub struct EvalDataset {
    /// Input feature matrix.
    pub features: Coo,
    /// Two-layer GCN model (the suite's canonical dims and seed).
    pub model: GcnModel,
    /// Normalised, sorted, tiled adjacency.
    pub prep: PreparedAdjacency,
}

/// Synthesises and preprocesses `datasets` capped at `scale` nodes.
pub fn prepare_eval(datasets: &[Dataset], scale: usize) -> Vec<EvalDataset> {
    datasets
        .iter()
        .map(|d| {
            let w = d.synthesize_scaled(scale);
            let prep = prepare_adjacency(&w.adjacency).expect("synthesised adjacency is square");
            let model =
                GcnModel::two_layer(w.spec.feature_len, w.spec.layer_dim, w.spec.layer_dim, 42);
            EvalDataset {
                features: w.features,
                model,
                prep,
            }
        })
        .collect()
}

/// Suite-total measurement of one (configuration, dataflow, scale): cycles
/// and stalls summed over the evaluation datasets, energy likewise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Total cycles over the evaluation datasets.
    pub cycles: u64,
    /// Stall waterfall summed over the evaluation datasets.
    pub stalls: StallBreakdown,
    /// Energy estimate summed over the evaluation datasets, in µJ.
    pub energy_uj: f64,
}

impl EvalResult {
    /// Dominant **non-idle** stall class and its share of total cycles.
    pub fn dominant(&self) -> (&'static str, f64) {
        let (name, v) = StallBreakdown::CLASSES
            .iter()
            .zip(self.stalls.as_array())
            .filter(|(name, _)| **name != "idle")
            .max_by_key(|&(_, v)| v)
            .expect("waterfall has non-idle classes");
        (name, v as f64 / self.cycles.max(1) as f64)
    }
}

/// Memoising evaluator: every (config hash, dataflow, scale) triple is
/// simulated at most once per explorer run.
pub struct Evaluator {
    memo: HashMap<(u64, usize, usize), EvalResult>,
    /// Worker threads for the simulation fan-out (`0` = auto).
    pub threads: usize,
    /// Run every simulation under the runtime invariant audit.
    pub audit: bool,
    /// Requested (candidate, dataflow, scale) evaluations answered from the
    /// memo.
    pub memo_hits: usize,
    /// Candidate-dataflow evaluations actually simulated.
    pub sim_evals: usize,
}

impl Evaluator {
    /// A fresh evaluator with an empty memo.
    pub fn new(threads: usize, audit: bool) -> Evaluator {
        Evaluator {
            memo: HashMap::new(),
            threads,
            audit,
            memo_hits: 0,
            sim_evals: 0,
        }
    }

    /// Evaluates every candidate under the three paper dataflows on `data`
    /// (prepared at `scale`), returning results in candidate order.
    /// Missing (candidate, dataflow) pairs fan out one job per dataset over
    /// the worker pool; the reduction runs serially in fixed job order, so
    /// the result (including the f64 energy sums) is identical at any
    /// thread count.
    pub fn evaluate(
        &mut self,
        cands: &[Candidate],
        data: &[EvalDataset],
        scale: usize,
    ) -> Vec<[EvalResult; 3]> {
        let mut missing: Vec<(usize, usize)> = Vec::new();
        let mut queued: std::collections::HashSet<(u64, usize)> = std::collections::HashSet::new();
        for (ci, c) in cands.iter().enumerate() {
            for df in 0..Dataflow::ALL.len() {
                if self.memo.contains_key(&(c.hash, df, scale)) {
                    self.memo_hits += 1;
                } else if queued.insert((c.hash, df)) {
                    missing.push((ci, df));
                }
            }
        }
        let jobs: Vec<(usize, usize, usize)> = missing
            .iter()
            .flat_map(|&(ci, df)| (0..data.len()).map(move |si| (ci, df, si)))
            .collect();
        let threads = if self.threads == 0 {
            pool::default_threads()
        } else {
            self.threads
        };
        let audit = self.audit;
        let results = pool::map_indexed(threads, &jobs, |_, &(ci, df, si)| {
            let mut config = cands[ci].config.clone();
            config.audit = audit;
            let d = &data[si];
            let out = run_inference_prepared(
                &config,
                Dataflow::ALL[df],
                &d.prep,
                &d.features,
                &d.model,
                None,
            )
            .expect("generated configurations validate");
            let energy = EnergyModel::default().estimate(&out.report).total_uj();
            (out.report.cycles, out.report.stalls, energy)
        });
        for (&(ci, df, _), (cycles, stalls, energy)) in jobs.iter().zip(&results) {
            let entry = self
                .memo
                .entry((cands[ci].hash, df, scale))
                .or_insert(EvalResult {
                    cycles: 0,
                    stalls: StallBreakdown::default(),
                    energy_uj: 0.0,
                });
            entry.cycles += cycles;
            entry.stalls.merge(stalls);
            entry.energy_uj += energy;
        }
        self.sim_evals += missing.len();
        cands
            .iter()
            .map(|c| {
                [0, 1, 2].map(|df| {
                    *self
                        .memo
                        .get(&(c.hash, df, scale))
                        .expect("just evaluated or memoised")
                })
            })
            .collect()
    }
}

/// Indices of the non-dominated points of `(cycles, area)` pairs, sorted
/// by cycles, then area, then index. A point is dominated when another is
/// no worse on both axes and strictly better on at least one; of
/// exactly-equal points only the first (lowest index) is kept.
pub fn pareto_front(points: &[(u64, f64)]) -> Vec<usize> {
    let mut front: Vec<usize> = (0..points.len())
        .filter(|&i| {
            let (ci, ai) = points[i];
            !points.iter().enumerate().any(|(j, &(cj, aj))| {
                j != i && cj <= ci && aj <= ai && (cj < ci || aj < ai || j < i)
            })
        })
        .collect();
    front.sort_by(|&a, &b| {
        points[a]
            .0
            .cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
            .then(a.cmp(&b))
    });
    front
}

/// Parsed `dse` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct DseArgs {
    /// Full-scale node cap for promoted candidates.
    pub scale: usize,
    /// Screening node cap for the first ladder rung.
    pub screen_scale: usize,
    /// Evaluation datasets (suite totals are summed over these).
    pub datasets: Vec<Dataset>,
    /// Worker threads (`0` = auto).
    pub threads: usize,
    /// Run every simulation under the runtime invariant audit.
    pub audit: bool,
    /// Successive-halving rate: the best `1/eta` of the screened survivors
    /// are promoted to full scale.
    pub eta: usize,
    /// Iso-area budget as a multiple of the Table III total at 7 nm.
    pub area_budget: f64,
    /// Which grid to explore.
    pub space: SpaceKind,
    /// Truncate the candidate list (incumbent always retained).
    pub max_candidates: Option<usize>,
}

/// Usage string for the `dse` binary.
pub const DSE_USAGE: &str = "usage: dse [--scale N] [--screen-scale N] [--datasets CR,AP,...] \
     [--threads N] [--audit] [--eta N] [--area-budget F] \
     [--space tiny|default] [--max-candidates N]";

impl Default for DseArgs {
    fn default() -> Self {
        DseArgs {
            scale: 600,
            screen_scale: 150,
            datasets: vec![Dataset::Cora, Dataset::AmazonPhoto],
            threads: 0,
            audit: false,
            eta: 4,
            area_budget: 2.0,
            space: SpaceKind::Default,
            max_candidates: None,
        }
    }
}

impl DseArgs {
    /// Parses the `dse` command line.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] describing the first malformed argument.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<DseArgs, ArgError> {
        let mut out = DseArgs::default();
        let mut it = args.into_iter();
        fn number<T: std::str::FromStr>(
            it: &mut impl Iterator<Item = String>,
            flag: &str,
        ) -> Result<T, ArgError> {
            let v = it
                .next()
                .ok_or_else(|| ArgError::new(format!("{flag} needs a value")))?;
            v.parse()
                .map_err(|_| ArgError::new(format!("{flag} needs a number, got {v:?}")))
        }
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => out.scale = number(&mut it, "--scale")?,
                "--screen-scale" => out.screen_scale = number(&mut it, "--screen-scale")?,
                "--datasets" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--datasets needs a CR,AP,... list"))?;
                    out.datasets = parse_dataset_list(&v)?;
                }
                "--threads" => out.threads = number(&mut it, "--threads")?,
                "--audit" => out.audit = true,
                "--eta" => out.eta = number(&mut it, "--eta")?,
                "--area-budget" => out.area_budget = number(&mut it, "--area-budget")?,
                "--space" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--space needs a grid name"))?;
                    out.space = SpaceKind::parse(&v).ok_or_else(|| {
                        ArgError::new(format!("unknown space {v:?} (tiny, default)"))
                    })?;
                }
                "--max-candidates" => {
                    out.max_candidates = Some(number(&mut it, "--max-candidates")?)
                }
                "--help" | "-h" => {
                    println!("{DSE_USAGE}");
                    std::process::exit(0);
                }
                other => {
                    return Err(ArgError::new(format!(
                        "unknown argument {other:?} (try --help)"
                    )))
                }
            }
        }
        if out.scale < 2 || out.screen_scale < 2 {
            return Err(ArgError::new(
                "--scale/--screen-scale need at least 2 nodes",
            ));
        }
        if out.screen_scale > out.scale {
            return Err(ArgError::new("--screen-scale must not exceed --scale"));
        }
        if out.eta < 2 {
            return Err(ArgError::new("--eta must be at least 2"));
        }
        if !(out.area_budget.is_finite() && out.area_budget > 0.0) {
            return Err(ArgError::new("--area-budget must be a positive number"));
        }
        if out.max_candidates == Some(0) {
            return Err(ArgError::new("--max-candidates must be at least 1"));
        }
        Ok(out)
    }
}

/// One Pareto-front entry of one dataflow.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontPoint {
    /// Candidate id.
    pub id: usize,
    /// Candidate knob summary.
    pub desc: String,
    /// Full-scale suite cycles under this dataflow.
    pub cycles: u64,
    /// Area at 7 nm in mm².
    pub area_7nm: f64,
    /// Full-scale suite energy in µJ.
    pub energy_uj: f64,
    /// Dominant non-idle stall class.
    pub dominant: &'static str,
    /// Dominant class share of total cycles.
    pub dominant_share: f64,
}

/// The winning configuration and its measured deltas vs the incumbent.
#[derive(Debug, Clone, PartialEq)]
pub struct Best {
    /// Candidate knob summary.
    pub desc: String,
    /// Full configuration (the `tuned` preset bakes this in).
    pub config: AcceleratorConfig,
    /// Combined (3-dataflow) full-scale cycles.
    pub combined_cycles: u64,
    /// The incumbent's combined full-scale cycles.
    pub incumbent_cycles: u64,
    /// `incumbent_cycles / combined_cycles`.
    pub speedup: f64,
    /// Area relative to the Table III total.
    pub area_ratio: f64,
    /// Per-dataflow `(label, best cycles, incumbent cycles)`.
    pub per_dataflow: Vec<(&'static str, u64, u64)>,
    /// OP dominant non-idle stall share, incumbent then best (the paper's
    /// OP baseline is dmb-miss bound; the delta is the headline pp number).
    pub op_dominant: (f64, f64),
}

/// Everything a `dse` run produced, renderable as a table or JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct DseOutcome {
    /// Grid name.
    pub space: &'static str,
    /// Exhaustive grid size.
    pub grid: usize,
    /// Valid in-budget candidates.
    pub in_budget: usize,
    /// Points rejected by the area budget.
    pub over_budget: usize,
    /// Candidates removed by the stall-ceiling cut.
    pub stall_cut: usize,
    /// Candidates promoted to full scale (incumbent included).
    pub promoted: usize,
    /// Memoised (candidate, dataflow, scale) answers.
    pub memo_hits: usize,
    /// Candidate-dataflow evaluations actually simulated.
    pub sim_evals: usize,
    /// Per-dataflow Pareto fronts over (full-scale cycles, area).
    pub fronts: Vec<(&'static str, Vec<FrontPoint>)>,
    /// The winning configuration.
    pub best: Best,
}

/// Runs the full explorer: generate → ceiling → screen → cut → promote →
/// Pareto. Deterministic at any thread count.
pub fn run(args: &DseArgs) -> DseOutcome {
    let space = Space::of(args.space);
    let mut gen = generate(&space, args.area_budget);
    let incumbent_hash = AcceleratorConfig::default().content_hash();
    if let Some(n) = args.max_candidates {
        truncate_keeping_incumbent(&mut gen.candidates, n, incumbent_hash);
    }
    let candidates = &gen.candidates;
    let incumbent_idx = candidates
        .iter()
        .position(|c| c.hash == incumbent_hash)
        .expect("generate always retains the incumbent");

    let mut eval = Evaluator::new(args.threads, args.audit);
    crate::progress!(
        "[dse] space {}: {} grid points, {} in budget ({} over {:.2}x budget = {:.3} mm2, {} invalid)",
        args.space.label(),
        gen.grid,
        candidates.len(),
        gen.over_budget,
        args.area_budget,
        gen.budget_7nm,
        gen.invalid,
    );

    // Rung 0: the incumbent at full scale anchors the stall ceilings and
    // the speedup denominator.
    crate::progress!("[dse] incumbent at full scale {} ...", args.scale);
    let full_data = prepare_eval(&args.datasets, args.scale);
    let incumbent_full = eval.evaluate(
        std::slice::from_ref(&candidates[incumbent_idx]),
        &full_data,
        args.scale,
    )[0];
    let ceilings: Vec<f64> = incumbent_full
        .iter()
        .map(|r| r.dominant().1 + CEILING_MARGIN)
        .collect();

    // Rung 1: screen everything small.
    crate::progress!(
        "[dse] screening {} candidates at scale {} ...",
        candidates.len(),
        args.screen_scale
    );
    let screen_data = prepare_eval(&args.datasets, args.screen_scale);
    let screened = eval.evaluate(candidates, &screen_data, args.screen_scale);
    let incumbent_screen = screened[incumbent_idx];

    // Stall-ceiling cut: a candidate dominated by the incumbent on every
    // screen objective (slower on all three dataflows, no cheaper in area)
    // whose deficit is structural (some dominant share blows its ceiling)
    // cannot reach any full-scale front. The incumbent survives by
    // construction (its screened cycles equal its own).
    let incumbent_area = candidates[incumbent_idx].area_7nm;
    let survivors: Vec<usize> = (0..candidates.len())
        .filter(|&i| {
            let dominated = candidates[i].area_7nm >= incumbent_area
                && (0..Dataflow::ALL.len())
                    .all(|df| screened[i][df].cycles > incumbent_screen[df].cycles);
            let structural =
                (0..Dataflow::ALL.len()).any(|df| screened[i][df].dominant().1 > ceilings[df]);
            i == incumbent_idx || !(dominated && structural)
        })
        .collect();
    let stall_cut = candidates.len() - survivors.len();

    // Successive halving: promote the best 1/eta by combined screen cycles.
    let mut ranked = survivors.clone();
    ranked.sort_by_key(|&i| {
        (
            screened[i].iter().map(|r| r.cycles).sum::<u64>(),
            candidates[i].id,
        )
    });
    let keep = ranked.len().div_ceil(args.eta).max(1);
    let mut promoted: Vec<usize> = ranked[..keep].to_vec();
    if !promoted.contains(&incumbent_idx) {
        // Free: its full-scale results are already memoised.
        promoted.push(incumbent_idx);
    }
    crate::progress!(
        "[dse] stall-cut {stall_cut}; promoting {} of {} survivors to scale {} ...",
        promoted.len(),
        survivors.len(),
        args.scale
    );

    // Rung 2: full scale for the promoted set.
    let promoted_cands: Vec<Candidate> = promoted.iter().map(|&i| candidates[i].clone()).collect();
    let fulls = eval.evaluate(&promoted_cands, &full_data, args.scale);

    // Pareto fronts per dataflow over (cycles, area).
    let fronts: Vec<(&'static str, Vec<FrontPoint>)> = Dataflow::ALL
        .iter()
        .enumerate()
        .map(|(df, flow)| {
            let points: Vec<(u64, f64)> = fulls
                .iter()
                .zip(&promoted_cands)
                .map(|(r, c)| (r[df].cycles, c.area_7nm))
                .collect();
            let front = pareto_front(&points)
                .into_iter()
                .map(|i| {
                    let (dominant, dominant_share) = fulls[i][df].dominant();
                    FrontPoint {
                        id: promoted_cands[i].id,
                        desc: promoted_cands[i].desc.clone(),
                        cycles: fulls[i][df].cycles,
                        area_7nm: promoted_cands[i].area_7nm,
                        energy_uj: fulls[i][df].energy_uj,
                        dominant,
                        dominant_share,
                    }
                })
                .collect();
            (flow.label(), front)
        })
        .collect();

    // The single winner: minimum combined full-scale cycles, ties by id.
    let best_pos = (0..promoted_cands.len())
        .min_by_key(|&i| {
            (
                fulls[i].iter().map(|r| r.cycles).sum::<u64>(),
                promoted_cands[i].id,
            )
        })
        .expect("promoted set is non-empty");
    let best_cand = &promoted_cands[best_pos];
    let best_full = &fulls[best_pos];
    let combined_cycles: u64 = best_full.iter().map(|r| r.cycles).sum();
    let incumbent_cycles: u64 = incumbent_full.iter().map(|r| r.cycles).sum();
    let default_area = estimate_area(&AcceleratorConfig::default()).total_7nm();
    let best = Best {
        desc: best_cand.desc.clone(),
        config: best_cand.config.clone(),
        combined_cycles,
        incumbent_cycles,
        speedup: incumbent_cycles as f64 / combined_cycles.max(1) as f64,
        area_ratio: best_cand.area_7nm / default_area,
        per_dataflow: Dataflow::ALL
            .iter()
            .enumerate()
            .map(|(df, flow)| {
                (
                    flow.label(),
                    best_full[df].cycles,
                    incumbent_full[df].cycles,
                )
            })
            .collect(),
        op_dominant: (incumbent_full[0].dominant().1, best_full[0].dominant().1),
    };

    DseOutcome {
        space: args.space.label(),
        grid: gen.grid,
        in_budget: candidates.len(),
        over_budget: gen.over_budget,
        stall_cut,
        promoted: promoted_cands.len(),
        memo_hits: eval.memo_hits,
        sim_evals: eval.sim_evals,
        fronts,
        best,
    }
}

fn truncate_keeping_incumbent(candidates: &mut Vec<Candidate>, n: usize, incumbent_hash: u64) {
    if candidates.len() <= n {
        return;
    }
    let incumbent_idx = candidates
        .iter()
        .position(|c| c.hash == incumbent_hash)
        .expect("incumbent present before truncation");
    if incumbent_idx >= n {
        let incumbent = candidates[incumbent_idx].clone();
        candidates[n - 1] = incumbent;
    }
    candidates.truncate(n.max(1));
}

impl DseOutcome {
    /// Renders the run as text: counters (greppable by CI), one table per
    /// dataflow front, and the winner line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "space {}: {} grid points, {} in budget ({} over budget)\n",
            self.space, self.grid, self.in_budget, self.over_budget
        ));
        out.push_str(&format!(
            "pruning: stall-cut {}; promoted {}; full-scale evals {} ({:.1}% of the {}-candidate grid)\n",
            self.stall_cut,
            self.promoted,
            self.promoted,
            100.0 * self.promoted as f64 / self.in_budget.max(1) as f64,
            self.in_budget
        ));
        out.push_str(&format!(
            "memo: {} hits / {} candidate-dataflow evaluations\n\n",
            self.memo_hits, self.sim_evals
        ));
        for (label, front) in &self.fronts {
            out.push_str(&format!("{label} front size {}\n", front.len()));
            let mut t = TextTable::new(vec![
                "id",
                "configuration",
                "cycles",
                "area mm2",
                "energy uJ",
                "dominant stall",
            ]);
            for p in front {
                t.row(vec![
                    p.id.to_string(),
                    p.desc.clone(),
                    p.cycles.to_string(),
                    format!("{:.3}", p.area_7nm),
                    format!("{:.1}", p.energy_uj),
                    format!("{} ({:.1}%)", p.dominant, 100.0 * p.dominant_share),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        let b = &self.best;
        out.push_str(&format!(
            "best: {} — combined cycles {} vs incumbent {} ({:.2}x speedup at {:.2}x area)\n",
            b.desc, b.combined_cycles, b.incumbent_cycles, b.speedup, b.area_ratio
        ));
        for (label, best, incumbent) in &b.per_dataflow {
            out.push_str(&format!(
                "  {label:<5} {best:>12} vs {incumbent:>12} ({:.2}x)\n",
                *incumbent as f64 / (*best).max(1) as f64
            ));
        }
        out.push_str(&format!(
            "  OP dominant stall share {:.1}% -> {:.1}% ({:+.1} pp)\n",
            100.0 * b.op_dominant.0,
            100.0 * b.op_dominant.1,
            100.0 * (b.op_dominant.1 - b.op_dominant.0)
        ));
        out
    }

    /// The run as a JSON object (embedded in `BENCH_host.json` by
    /// `perf_report`).
    pub fn to_json(&self) -> String {
        let fronts: Vec<String> = self
            .fronts
            .iter()
            .map(|(label, front)| {
                let points: Vec<String> = front
                    .iter()
                    .map(|p| {
                        format!(
                            "{{ \"id\": {}, \"desc\": \"{}\", \"cycles\": {}, \
                             \"area_7nm\": {:.4}, \"energy_uj\": {:.2}, \
                             \"dominant\": \"{}\", \"dominant_share\": {:.4} }}",
                            p.id,
                            p.desc,
                            p.cycles,
                            p.area_7nm,
                            p.energy_uj,
                            p.dominant,
                            p.dominant_share
                        )
                    })
                    .collect();
                format!("\"{label}\": [ {} ]", points.join(", "))
            })
            .collect();
        let b = &self.best;
        format!(
            "{{ \"space\": \"{}\", \"grid\": {}, \"in_budget\": {}, \"over_budget\": {}, \
             \"stall_cut\": {}, \"promoted\": {}, \"memo_hits\": {}, \"sim_evals\": {}, \
             \"fronts\": {{ {} }}, \"best\": {{ \"desc\": \"{}\", \"combined_cycles\": {}, \
             \"incumbent_cycles\": {}, \"speedup\": {:.4}, \"area_ratio\": {:.4}, \
             \"op_dominant_share\": [{:.4}, {:.4}] }} }}",
            self.space,
            self.grid,
            self.in_budget,
            self.over_budget,
            self.stall_cut,
            self.promoted,
            self.memo_hits,
            self.sim_evals,
            fronts.join(", "),
            b.desc,
            b.combined_cycles,
            b.incumbent_cycles,
            b.speedup,
            b.area_ratio,
            b.op_dominant.0,
            b.op_dominant.1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tiny_space_generates_at_most_12_valid_candidates_with_incumbent() {
        let gen = generate(&Space::of(SpaceKind::Tiny), 2.0);
        assert!(gen.candidates.len() <= 12, "{}", gen.candidates.len());
        assert_eq!(gen.grid, 8);
        let incumbent = AcceleratorConfig::default().content_hash();
        assert!(gen.candidates.iter().any(|c| c.hash == incumbent));
        for c in &gen.candidates {
            assert!(c.config.validate().is_ok(), "{}", c.desc);
            assert!(c.area_7nm <= gen.budget_7nm, "{}", c.desc);
        }
    }

    #[test]
    fn default_space_makes_the_area_budget_binding() {
        let gen = generate(&Space::of(SpaceKind::Default), 2.0);
        assert_eq!(gen.grid, 972);
        assert!(gen.over_budget > 0, "budget never binds — space too tame");
        assert!(gen.candidates.len() < gen.grid);
        // Distinct configurations must hash apart for the memo to be sound.
        let distinct: std::collections::HashSet<u64> =
            gen.candidates.iter().map(|c| c.hash).collect();
        assert_eq!(distinct.len(), gen.candidates.len());
    }

    #[test]
    fn memo_returns_cache_hits_for_repeated_configs() {
        let gen = generate(&Space::of(SpaceKind::Tiny), 2.0);
        let cand = gen.candidates[0].clone();
        let data = prepare_eval(&[Dataset::Cora], 80);
        let mut eval = Evaluator::new(1, false);
        let first = eval.evaluate(std::slice::from_ref(&cand), &data, 80);
        assert_eq!(eval.memo_hits, 0);
        assert_eq!(eval.sim_evals, 3);
        let second = eval.evaluate(std::slice::from_ref(&cand), &data, 80);
        assert_eq!(eval.memo_hits, 3, "repeat evaluation must hit the memo");
        assert_eq!(eval.sim_evals, 3, "repeat evaluation must not simulate");
        assert_eq!(first, second);
    }

    #[test]
    fn front_is_bit_identical_across_thread_counts() {
        let mk = |threads| DseArgs {
            scale: 160,
            screen_scale: 80,
            datasets: vec![Dataset::Cora],
            threads,
            space: SpaceKind::Tiny,
            ..DseArgs::default()
        };
        let serial = run(&mk(1));
        let parallel = run(&mk(4));
        assert_eq!(serial.fronts, parallel.fronts, "fronts diverged");
        assert_eq!(serial.best, parallel.best, "winner diverged");
        assert_eq!(serial, parallel, "counters diverged");
    }

    #[test]
    fn truncation_keeps_the_incumbent() {
        let incumbent = AcceleratorConfig::default().content_hash();
        let mut gen = generate(&Space::of(SpaceKind::Tiny), 2.0);
        // Push the incumbent to the tail so truncation would drop it.
        let idx = gen
            .candidates
            .iter()
            .position(|c| c.hash == incumbent)
            .unwrap();
        let last = gen.candidates.len() - 1;
        gen.candidates.swap(idx, last);
        truncate_keeping_incumbent(&mut gen.candidates, 3, incumbent);
        assert_eq!(gen.candidates.len(), 3);
        assert!(gen.candidates.iter().any(|c| c.hash == incumbent));
    }

    #[test]
    fn parses_and_validates_arguments() {
        let parse = |items: &[&str]| DseArgs::parse(items.iter().map(|s| s.to_string()));
        let a = parse(&[
            "--scale",
            "300",
            "--screen-scale",
            "100",
            "--datasets",
            "CR",
            "--space",
            "tiny",
            "--eta",
            "2",
            "--area-budget",
            "1.5",
            "--max-candidates",
            "6",
            "--audit",
        ])
        .unwrap();
        assert_eq!(a.scale, 300);
        assert_eq!(a.screen_scale, 100);
        assert_eq!(a.datasets, vec![Dataset::Cora]);
        assert_eq!(a.space, SpaceKind::Tiny);
        assert_eq!(a.eta, 2);
        assert_eq!(a.area_budget, 1.5);
        assert_eq!(a.max_candidates, Some(6));
        assert!(a.audit);
        assert!(parse(&["--screen-scale", "700"]).is_err());
        assert!(parse(&["--eta", "1"]).is_err());
        assert!(parse(&["--area-budget", "-1"]).is_err());
        assert!(parse(&["--space", "vast"]).is_err());
        assert!(parse(&["--max-candidates", "0"]).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn pareto_front_contains_no_dominated_point(
            raw in proptest::collection::vec((0u64..40, 0u64..40), 1..30)
        ) {
            let points: Vec<(u64, f64)> = raw.iter().map(|&(c, a)| (c, a as f64)).collect();
            let front = pareto_front(&points);
            prop_assert!(!front.is_empty(), "non-empty input must yield a front");
            for &i in &front {
                let (ci, ai) = points[i];
                let dominated = points
                    .iter()
                    .enumerate()
                    .any(|(j, &(cj, aj))| {
                        j != i && cj <= ci && aj <= ai && (cj < ci || aj < ai)
                    });
                prop_assert!(!dominated, "front point {i} ({ci}, {ai}) is dominated");
            }
            // Everything off the front is dominated or a duplicate of a
            // front member.
            for (j, &(cj, aj)) in points.iter().enumerate() {
                if front.contains(&j) {
                    continue;
                }
                let covered = points.iter().enumerate().any(|(k, &(ck, ak))| {
                    k != j && ck <= cj && ak <= aj
                });
                prop_assert!(covered, "non-front point {j} is not covered");
            }
        }
    }
}
