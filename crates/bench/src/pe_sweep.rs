//! PE-subsystem sweep: a lanes × MAC-latency grid over the benchmark suite.
//!
//! For every grid point the full suite is re-run through the shared
//! [`crate::runner`] path and the RWP and HyMM dataflows' suite-total cycles
//! and `mac` stall cycles are tabulated against the default 16-lane,
//! latency-1 PE — the quick answer to "does a wider or deeper MAC pipe move
//! the mac-bound wall, and what does it cost in area?". The suite's layer
//! width is 16 everywhere (Table II), so:
//!
//! - 8 lanes split every row into two issue slots (mac occupancy doubles);
//! - 32 lanes without gating change nothing (a 16-wide row still takes one
//!   slot either way);
//! - 32 lanes *with* gating pack two rows per slot à la FlexVector, halving
//!   mac occupancy — the headline configuration that breaks the mac-bound
//!   wall;
//! - latency 4 unpipelined quadruples mac occupancy; pipelined (II = 1) it
//!   costs only area.

use crate::args::BenchArgs;
use crate::runner::{run_suite, DatasetResults, MissingRunError};
use crate::table::TextTable;
use hymm_core::area::estimate_area;
use hymm_core::config::AcceleratorConfig;

/// Lane counts swept.
pub const LANES: [usize; 3] = [8, 16, 32];
/// MAC latencies swept.
pub const LATENCIES: [u64; 2] = [1, 4];

/// Suite-total PE counters for one dataflow at one grid point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuiteTotals {
    /// Total cycles summed over the datasets.
    pub cycles: u64,
    /// `mac` stall-class cycles summed over the datasets.
    pub mac_stall: u64,
    /// Logical MAC operations — invariant across every grid point.
    pub mac_ops: u64,
    /// Lane-level MAC events (the energy proxy).
    pub mac_lane_ops: u64,
}

/// One grid point's aggregated result.
#[derive(Debug, Clone)]
pub struct PeSweepRow {
    /// MAC lanes per PE vector unit.
    pub lanes: usize,
    /// MAC issue-to-result latency in cycles.
    pub latency: u64,
    /// Whether the MAC pipe accepts a new issue every cycle.
    pub pipelined: bool,
    /// Whether per-lane operand gating (flexible VRF) was enabled.
    pub gating: bool,
    /// Suite totals for the RWP dataflow.
    pub rwp: SuiteTotals,
    /// Suite totals for the HyMM dataflow.
    pub hymm: SuiteTotals,
    /// Estimated total area at 7 nm in mm² for this configuration.
    pub area_7nm: f64,
    /// The full per-dataset results, kept for the baseline-identity check.
    pub results: Vec<DatasetResults>,
}

fn totals(results: &[DatasetResults], label: &str) -> Result<SuiteTotals, MissingRunError> {
    let mut t = SuiteTotals::default();
    for d in results {
        let r = &d.run(label)?.report;
        t.cycles += r.cycles;
        t.mac_stall += r.stalls.mac;
        t.mac_ops += r.mac_ops;
        t.mac_lane_ops += r.mac_lane_ops;
    }
    Ok(t)
}

/// Runs the `LANES` × `LATENCIES` grid over the suite described by `base`
/// (datasets, scale, threads, scheduler, prefetch, audit are honoured;
/// `--pe-lanes` and `--mac-latency` are overridden by the grid, while
/// `--mac-pipeline` and `--lane-gating` apply to every point).
///
/// # Errors
///
/// Returns a [`MissingRunError`] if a suite run is missing the RWP or HyMM
/// variant.
pub fn sweep(base: &BenchArgs) -> Result<Vec<PeSweepRow>, MissingRunError> {
    let mut rows = Vec::with_capacity(LANES.len() * LATENCIES.len());
    for lanes in LANES {
        for latency in LATENCIES {
            crate::progress!(
                "[pe_sweep] {lanes} lanes, latency {latency}{}{} ...",
                if base.mac_pipeline { ", pipelined" } else { "" },
                if base.lane_gating { ", gated" } else { "" },
            );
            let args = BenchArgs {
                pe_lanes: Some(lanes),
                mac_latency: Some(latency),
                ..base.clone()
            };
            let results = run_suite(&args);
            let mut config = AcceleratorConfig::default();
            args.apply_pe(&mut config);
            rows.push(PeSweepRow {
                lanes,
                latency,
                pipelined: base.mac_pipeline,
                gating: base.lane_gating,
                rwp: totals(&results, "RWP")?,
                hymm: totals(&results, "HyMM")?,
                area_7nm: estimate_area(&config).total_7nm(),
                results,
            });
        }
    }
    Ok(rows)
}

/// Index of the default-PE grid point (16 lanes, latency 1) in the rows
/// returned by [`sweep`].
pub fn baseline_index(rows: &[PeSweepRow]) -> Option<usize> {
    rows.iter().position(|r| r.lanes == 16 && r.latency == 1)
}

/// Signed stall-cycle reduction of `row` versus `base`, as a fraction
/// (positive = fewer `mac` stall cycles than the baseline).
pub fn mac_stall_reduction(row: &SuiteTotals, base: &SuiteTotals) -> f64 {
    1.0 - row.mac_stall as f64 / base.mac_stall.max(1) as f64
}

/// Renders the sweep as a text table, with `mac` stall-share deltas against
/// the baseline row (16 lanes, latency 1, or the first row if absent).
pub fn render(rows: &[PeSweepRow]) -> String {
    let base_idx = baseline_index(rows).unwrap_or(0);
    let (rwp_base, hymm_base) = (rows[base_idx].rwp, rows[base_idx].hymm);
    let mut t = TextTable::new(vec![
        "lanes",
        "latency",
        "II",
        "gating",
        "RWP cycles",
        "RWP mac-stall",
        "d-mac",
        "HyMM cycles",
        "HyMM mac-stall",
        "d-mac",
        "area 7nm (mm2)",
    ]);
    // `ratio - 1` rather than negated reduction so the baseline row prints
    // "+0.0%" instead of IEEE negative zero.
    let delta = |row: &SuiteTotals, base: &SuiteTotals| {
        format!(
            "{:+.1}%",
            100.0 * (row.mac_stall as f64 / base.mac_stall.max(1) as f64 - 1.0)
        )
    };
    for r in rows {
        let ii = if r.pipelined { 1 } else { r.latency };
        t.row(vec![
            r.lanes.to_string(),
            r.latency.to_string(),
            ii.to_string(),
            if r.gating { "on" } else { "off" }.to_string(),
            r.rwp.cycles.to_string(),
            r.rwp.mac_stall.to_string(),
            delta(&r.rwp, &rwp_base),
            r.hymm.cycles.to_string(),
            r.hymm.mac_stall.to_string(),
            delta(&r.hymm, &hymm_base),
            format!("{:.3}", r.area_7nm),
        ]);
    }
    format!(
        "PE sweep: suite-total cycles and mac-stall cycles per PE configuration\n\
         (d-mac: mac stall cycles vs the 16-lane latency-1 baseline; negative = fewer)\n{}",
        t.render()
    )
}

/// Serialises the sweep as a JSON object for `BENCH_host.json`.
pub fn to_json(rows: &[PeSweepRow]) -> String {
    let gating = rows.first().is_some_and(|r| r.gating);
    let pipelined = rows.first().is_some_and(|r| r.pipelined);
    let grid: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{ \"lanes\": {}, \"latency\": {}, \"pipelined\": {}, \"gating\": {}, \
                 \"rwp_cycles\": {}, \"rwp_mac_stall\": {}, \
                 \"hymm_cycles\": {}, \"hymm_mac_stall\": {}, \
                 \"mac_ops\": {}, \"mac_lane_ops\": {}, \"area_7nm_mm2\": {:.3} }}",
                r.lanes,
                r.latency,
                r.pipelined,
                r.gating,
                r.rwp.cycles,
                r.rwp.mac_stall,
                r.hymm.cycles,
                r.hymm.mac_stall,
                r.rwp.mac_ops + r.hymm.mac_ops,
                r.rwp.mac_lane_ops + r.hymm.mac_lane_ops,
                r.area_7nm,
            )
        })
        .collect();
    format!(
        "{{ \"gating\": {gating}, \"pipelined\": {pipelined}, \"grid\": [ {} ] }}",
        grid.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::results_match;
    use hymm_graph::datasets::Dataset;

    fn base(gating: bool) -> BenchArgs {
        BenchArgs {
            scale: Some(150),
            datasets: vec![Dataset::Cora],
            threads: 1,
            audit: true,
            lane_gating: gating,
            ..BenchArgs::default()
        }
    }

    #[test]
    fn gated_sweep_halves_mac_stall_at_32_lanes() {
        let rows = sweep(&base(true)).unwrap();
        let base_idx = baseline_index(&rows).unwrap();
        let wide = rows
            .iter()
            .find(|r| r.lanes == 32 && r.latency == 1)
            .unwrap();
        // Every row is 16 elements wide, so 32 gated lanes pack 2 rows per
        // issue slot: the mac stall class drops by half (>= 25% is the
        // acceptance floor; exact halving holds at layer width 16).
        let reduction = mac_stall_reduction(&wide.rwp, &rows[base_idx].rwp);
        assert!(
            reduction >= 0.25,
            "expected >=25% RWP mac-stall reduction at 32 gated lanes, got {:.1}%",
            100.0 * reduction
        );
        // Logical work is invariant across the grid.
        for r in &rows {
            assert_eq!(
                r.rwp.mac_ops, rows[base_idx].rwp.mac_ops,
                "{} lanes",
                r.lanes
            );
            assert_eq!(r.hymm.mac_ops, rows[base_idx].hymm.mac_ops);
        }
    }

    #[test]
    fn gated_baseline_row_is_bit_identical_to_default() {
        // At 16 lanes every 16-wide row fills the vector unit, so the
        // flexible VRF has nothing to gate or pack: the gated sweep's
        // baseline row must be bit-identical to a plain default-PE run.
        let rows = sweep(&base(true)).unwrap();
        let base_idx = baseline_index(&rows).unwrap();
        let reference = crate::runner::run_suite(&base(false));
        assert!(
            results_match(&rows[base_idx].results, &reference),
            "gated 16x1 grid point diverged from the default PE"
        );
    }

    #[test]
    fn render_and_json_cover_every_grid_point() {
        let rows = sweep(&base(true)).unwrap();
        let text = render(&rows);
        let json = to_json(&rows);
        for lanes in LANES {
            assert!(text.contains(&lanes.to_string()), "{text}");
            assert!(json.contains(&format!("\"lanes\": {lanes}")), "{json}");
        }
        assert!(text.contains("area 7nm"));
        assert!(json.contains("\"rwp_mac_stall\""));
    }
}
