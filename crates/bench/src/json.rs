//! Dependency-free JSON support shared across the workspace.
//!
//! The workspace has no crates.io access, so every JSON producer and
//! consumer — the Chrome-trace writer/validator ([`crate::trace_json`]),
//! the metrics sidecar checker ([`crate::metrics_json`]), the
//! perf-regression gate ([`crate::perf_diff`]) and the `hymm-serve`
//! request/response protocol — funnels through this one hand-rolled
//! reader/writer instead of growing per-module dialects.
//!
//! The reader is strict where it matters for round-tripping (complete
//! documents only, finite numbers, no raw control characters in strings)
//! and deliberately small: numbers are `f64`, objects preserve insertion
//! order in a `Vec` so rendering is deterministic.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object; `None` for missing keys and non-objects.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value of this node, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value of this node, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value of this node, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Replaces the value under `key` (or appends the pair) on an object.
    /// No-op on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(fields) = self {
            match fields.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => fields.push((key.to_string(), value)),
            }
        }
    }

    /// Renders the value back to compact JSON (`"key": value` with a space
    /// after each colon, matching the hand-written style of BENCH_host.json
    /// so spliced sections stay greppable).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => out.push_str(&fmt_num(*n)),
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", esc(s));
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\": ", esc(k));
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats a number the way the hand-written exporters do: integral values
/// without a decimal point, everything else via the shortest round-trip
/// `f64` representation.
pub fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Escapes a string for embedding inside a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            // Surrogates outside the BMP are not produced by
                            // the writer; map them to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(&c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Copy the contiguous run of plain characters in one
                    // slice (the input is a &str, so any span that stops at
                    // an ASCII delimiter is on a char boundary).
                    let start = self.i;
                    while matches!(self.b.get(self.i), Some(&c) if c != b'"' && c != b'\\' && c >= 0x20)
                    {
                        self.i += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            out.push((key, value));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a full JSON document.
///
/// # Errors
///
/// Returns a description of the first malformed construct, with its byte
/// offset.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trip() {
        let src = r#"{"a": 1, "b": [true, null, "x\"y"], "c": {"d": 0.5, "e": -3}}"#;
        let doc = parse_json(src).unwrap();
        let rendered = doc.render();
        assert_eq!(parse_json(&rendered).unwrap(), doc);
        // Integral numbers render without a decimal point.
        assert!(rendered.contains("\"a\": 1,"), "{rendered}");
        assert!(rendered.contains("\"d\": 0.5"), "{rendered}");
    }

    #[test]
    fn accessors() {
        let doc = parse_json(r#"{"n": 2.5, "s": "hi", "b": false}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(2.5));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.get("n").and_then(Json::as_str), None);
    }

    #[test]
    fn set_replaces_and_appends() {
        let mut doc = parse_json(r#"{"a": 1}"#).unwrap();
        doc.set("a", Json::Num(2.0));
        doc.set("b", Json::Str("new".into()));
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("new"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "1 2",
            "\"unterminated",
            "{\"a\": inf}",
            "nul",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn fmt_num_styles() {
        assert_eq!(fmt_num(9619767.0), "9619767");
        assert_eq!(fmt_num(-3.0), "-3");
        assert_eq!(fmt_num(0.343), "0.343");
        assert_eq!(fmt_num(2.806e7), "28060000");
    }
}
