//! JSON sidecar export of interval-sampled telemetry.
//!
//! [`metrics_json`] serialises one or more labelled
//! [`MetricsData`](hymm_core::metrics::MetricsData) series (one per
//! dataflow run, produced by `--metrics-interval`) into a single
//! self-describing JSON document: a `runs` array where every run carries
//! its sampling interval, drop counter and a `series` array of per-interval
//! samples. Stall deltas are keyed by class name (the same eight names as
//! [`StallBreakdown::CLASSES`](hymm_core::stats::StallBreakdown::CLASSES))
//! so downstream tooling never has to know the array order.
//!
//! [`validate_metrics_json`] mirrors `trace_json::validate_chrome_trace`:
//! a dependency-free reader used by the CI smoke check that parses the
//! whole document and verifies every sample carries a finite numeric `ts`
//! and all eight stall classes.

use crate::json::{parse_json, Json};
use hymm_core::metrics::MetricsData;
use hymm_core::stats::StallBreakdown;
use std::fmt::Write as _;

/// Renders a float for JSON embedding; non-finite values (which the sampler
/// never produces, but a corrupted ring could) degrade to `0`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

/// Serialises labelled metrics series into one JSON document.
///
/// Every `(label, data)` pair becomes one entry of the top-level `runs`
/// array. Per-channel DRAM busy fractions are truncated to the channels the
/// run actually sampled (`dram_channels`).
pub fn metrics_json(runs: &[(String, &MetricsData)]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"format\": \"hymm-metrics-v1\",\n  \"stall_classes\": [");
    let classes: Vec<String> = StallBreakdown::CLASSES
        .iter()
        .map(|c| format!("\"{c}\""))
        .collect();
    out.push_str(&classes.join(", "));
    out.push_str("],\n  \"runs\": [\n");
    for (i, (label, data)) in runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"sample_every\": {}, \"dropped\": {}, \"series\": [",
            crate::json::esc(label),
            data.sample_every,
            data.dropped
        );
        for (j, s) in data.samples.iter().enumerate() {
            let stalls: Vec<String> = StallBreakdown::CLASSES
                .iter()
                .zip(s.stalls)
                .map(|(name, v)| format!("\"{name}\": {v}"))
                .collect();
            let busy: Vec<String> = s
                .dram_busy_frac
                .iter()
                .take(s.dram_channels as usize)
                .map(|&f| num(f as f64))
                .collect();
            let kinds: Vec<String> = s.dmb_kind_occupancy.iter().map(u32::to_string).collect();
            let _ = writeln!(
                out,
                "      {{\"ts\": {}, \"stalls\": {{{}}}, \
                 \"dmb_hit_rate\": {}, \"dmb_fills\": {}, \"dmb_occupancy\": {}, \
                 \"dmb_kind_occupancy\": [{}], \"mshr_occupancy\": {}, \
                 \"dram_busy_frac\": [{}], \"dram_bytes_per_cycle\": {}, \
                 \"lsq_depth\": {}, \"pe_issues\": {}, \"pe_lane_util\": {}, \
                 \"prefetch\": {{\"issued\": {}, \"useful\": {}, \"late\": {}}}}}{}",
                s.ts,
                stalls.join(", "),
                num(s.dmb_hit_rate as f64),
                s.dmb_fills,
                s.dmb_occupancy,
                kinds.join(","),
                s.mshr_occupancy,
                busy.join(","),
                num(s.dram_bytes_per_cycle as f64),
                s.lsq_depth,
                s.pe_issues,
                num(s.pe_lane_util as f64),
                s.prefetch_issued,
                s.prefetch_useful,
                s.prefetch_late,
                if j + 1 < data.samples.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "    ]}}{}", if i + 1 < runs.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a metrics sidecar document: the JSON must parse completely,
/// carry a `runs` array, and every sample of every run must be an object
/// with a finite numeric `ts` and a `stalls` object holding a numeric entry
/// for all eight stall classes. Returns the total sample count.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn validate_metrics_json(src: &str) -> Result<usize, String> {
    let doc = parse_json(src)?;
    let Some(Json::Arr(runs)) = doc.get("runs") else {
        return Err("missing top-level \"runs\" array".into());
    };
    let mut total = 0usize;
    for (r, run) in runs.iter().enumerate() {
        let label = match run.get("label") {
            Some(Json::Str(l)) if !l.is_empty() => l.clone(),
            other => return Err(format!("run {r}: bad \"label\" field: {other:?}")),
        };
        match run.get("sample_every") {
            Some(Json::Num(n)) if *n >= 1.0 => {}
            other => return Err(format!("{label}: bad \"sample_every\" field: {other:?}")),
        }
        let Some(Json::Arr(series)) = run.get("series") else {
            return Err(format!("{label}: missing \"series\" array"));
        };
        for (i, s) in series.iter().enumerate() {
            match s.get("ts") {
                Some(Json::Num(_)) => {}
                other => return Err(format!("{label} sample {i}: bad \"ts\" field: {other:?}")),
            }
            let Some(stalls @ Json::Obj(_)) = s.get("stalls") else {
                return Err(format!("{label} sample {i}: missing \"stalls\" object"));
            };
            for class in StallBreakdown::CLASSES {
                match stalls.get(class) {
                    Some(Json::Num(_)) => {}
                    other => {
                        return Err(format!(
                            "{label} sample {i}: bad stall class {class:?}: {other:?}"
                        ))
                    }
                }
            }
        }
        total += series.len();
    }
    Ok(total)
}

/// Sums the per-interval stall deltas of one parsed run back into class
/// order — the accounting check the `metrics_export --check` mode runs
/// against the end-of-run waterfall.
pub fn stall_sums_of(src: &str, label: &str) -> Result<[i64; 8], String> {
    let doc = parse_json(src)?;
    let Some(Json::Arr(runs)) = doc.get("runs") else {
        return Err("missing top-level \"runs\" array".into());
    };
    let run = runs
        .iter()
        .find(|r| matches!(r.get("label"), Some(Json::Str(l)) if l == label))
        .ok_or_else(|| format!("no run labelled {label:?}"))?;
    let Some(Json::Arr(series)) = run.get("series") else {
        return Err(format!("{label}: missing \"series\" array"));
    };
    let mut sums = [0i64; 8];
    for s in series {
        let stalls = s
            .get("stalls")
            .ok_or_else(|| format!("{label}: sample without \"stalls\""))?;
        for (k, class) in StallBreakdown::CLASSES.iter().enumerate() {
            match stalls.get(class) {
                Some(Json::Num(v)) => sums[k] += *v as i64,
                other => return Err(format!("{label}: bad stall class {class:?}: {other:?}")),
            }
        }
    }
    Ok(sums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymm_core::metrics::MetricsSample;

    fn sample_data() -> MetricsData {
        let mut d = MetricsData::new(64);
        d.samples.push(MetricsSample {
            ts: 64,
            stalls: [5, 0, 3, 0, 1, 0, 0, 7],
            dmb_hit_rate: 0.75,
            dmb_fills: 2,
            dram_channels: 2,
            dram_busy_frac: [0.5, 0.25, 0.0, 0.0],
            ..MetricsSample::default()
        });
        d.samples.push(MetricsSample {
            ts: 128,
            stalls: [1, 0, -2, 0, 0, 0, 0, 4],
            dram_channels: 2,
            ..MetricsSample::default()
        });
        d
    }

    #[test]
    fn exported_metrics_validate_and_carry_every_class() {
        let data = sample_data();
        let json = metrics_json(&[("CR/HyMM".into(), &data)]);
        assert_eq!(validate_metrics_json(&json), Ok(2), "{json}");
        for needle in [
            "hymm-metrics-v1",
            "\"sample_every\": 64",
            "\"dmb-miss\": 3",
            "\"dmb-miss\": -2",
            "\"idle\": 7",
            "\"dmb_hit_rate\": 0.75",
            "\"dram_busy_frac\": [0.5,0.25]",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn stall_sums_match_the_series() {
        let data = sample_data();
        let json = metrics_json(&[("CR/HyMM".into(), &data)]);
        assert_eq!(
            stall_sums_of(&json, "CR/HyMM"),
            Ok([6, 0, 1, 0, 1, 0, 0, 11])
        );
        assert!(stall_sums_of(&json, "AP/OP").is_err());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_metrics_json("{").is_err());
        assert!(validate_metrics_json("{\"x\": 1}").is_err());
        // missing one stall class
        let json = "{\"runs\":[{\"label\":\"x\",\"sample_every\":64,\"series\":[\
                    {\"ts\":64,\"stalls\":{\"mac\":1}}]}]}";
        let e = validate_metrics_json(json).unwrap_err();
        assert!(e.contains("merge"), "{e}");
        // sample_every of zero is never written
        let json = "{\"runs\":[{\"label\":\"x\",\"sample_every\":0,\"series\":[]}]}";
        assert!(validate_metrics_json(json).is_err());
        // empty series is legal (run shorter than one interval, metrics off)
        let json = "{\"runs\":[{\"label\":\"x\",\"sample_every\":64,\"series\":[]}]}";
        assert_eq!(validate_metrics_json(json), Ok(0));
    }
}
