//! A tiny scoped worker pool for fanning out independent simulation jobs.
//!
//! The suite's jobs (dataset synthesis, one dataflow variant's simulation)
//! are pure functions of their inputs, so parallelism must not change any
//! result — only wall-clock. `map_indexed` guarantees that by construction:
//! results land in a slot per input index, so the output order equals the
//! input order no matter which worker ran which job or in what order.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count used when the user passes `--threads 0` (auto): the host's
/// available parallelism, or 1 if it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item, fanning out across `threads` scoped workers,
/// and returns the results **in input order**.
///
/// Workers claim items through an atomic cursor, so an expensive item does
/// not leave a fixed shard of cheap ones waiting behind it. With
/// `threads <= 1` the items run serially on the caller's thread (no spawn
/// overhead, and panics propagate directly).
///
/// # Panics
///
/// Propagates a panic from `f`; remaining items may be skipped.
pub fn map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scope joined every worker, so every slot is filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = map_indexed(4, &items, |i, &v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(out, (0..64).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel() {
        let items: Vec<u64> = (0..33).collect();
        let serial = map_indexed(1, &items, |i, &v| v.wrapping_mul(31) + i as u64);
        let parallel = map_indexed(8, &items, |i, &v| v.wrapping_mul(31) + i as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        map_indexed(3, &counters, |_, c| c.fetch_add(1, Ordering::Relaxed));
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out = map_indexed(4, &items, |_, &v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1, 2, 3];
        assert_eq!(map_indexed(16, &items, |_, &v| v + 1), vec![2, 3, 4]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
