//! One printer per paper table/figure, each consuming the shared
//! [`crate::runner::DatasetResults`].

use crate::runner::{DatasetResults, MissingRunError};
use crate::table::{mb, pct, speedup, TextTable};
use hymm_core::area::estimate_area;
use hymm_core::config::AcceleratorConfig;
use hymm_mem::MatrixKind;

/// Table I: qualitative comparison of GCN accelerator dataflows (static
/// content from the paper, reproduced for completeness).
pub fn table1() -> String {
    let mut t = TextTable::new(vec!["", "AWB-GCN", "GCNAX", "G-CoD", "GROW", "HyMM (ours)"]);
    t.row(vec![
        "Aggregation dataflow".into(),
        "Column-wise product".into(),
        "Outer product".into(),
        "Outer product".into(),
        "Row-wise product".into(),
        "Hybrid (row + outer)".into(),
    ]);
    t.row(vec![
        "Combination dataflow".into(),
        "Column-wise product".into(),
        "Outer product".into(),
        "Row-wise product".into(),
        "Row-wise product".into(),
        "Row-wise product".into(),
    ]);
    t.row(vec![
        "Compression format".into(),
        "CSC".into(),
        "CSC".into(),
        "CSC (A), CSR (others)".into(),
        "CSR".into(),
        "CSC (region 1), CSR (others)".into(),
    ]);
    t.row(vec![
        "Graph preprocessing".into(),
        "None".into(),
        "None".into(),
        "Partitioning & tuning".into(),
        "Graph partitioning".into(),
        "Degree sorting".into(),
    ]);
    format!(
        "Table I: comparison of GCN accelerator architectures\n{}",
        t.render()
    )
}

/// Table II: dataset statistics plus measured sorting cost.
pub fn table2(results: &[DatasetResults]) -> String {
    let mut t = TextTable::new(vec![
        "Graph dataset",
        "# nodes",
        "# edges",
        "Adj sparsity",
        "Feat sparsity",
        "Feat len",
        "Layer dim",
        "Sort cost (ms)",
    ]);
    for r in results {
        t.row(vec![
            format!("{} ({})", r.spec.dataset.name(), r.spec.dataset.abbrev()),
            r.spec.nodes.to_string(),
            r.spec.edges.to_string(),
            pct(r.spec.adjacency_sparsity),
            pct(r.spec.feature_sparsity),
            r.spec.feature_len.to_string(),
            r.spec.layer_dim.to_string(),
            format!("{:.2}", r.sort_cost_ms),
        ]);
    }
    format!(
        "Table II: graph datasets (synthesised; sorting cost measured on this host)\n{}",
        t.render()
    )
}

/// Table III: hardware parameters and estimated area.
pub fn table3(config: &AcceleratorConfig) -> String {
    let report = estimate_area(config);
    let mut t = TextTable::new(vec![
        "Component",
        "Configuration",
        "7nm (mm2)",
        "40nm (mm2)",
    ]);
    for c in &report.components {
        t.row(vec![
            c.name.to_string(),
            c.configuration.clone(),
            format!("{:.3}", c.area_7nm),
            format!("{:.3}", c.area_40nm),
        ]);
    }
    t.row(vec![
        "Total".into(),
        "-".into(),
        format!("{:.3}", report.total_7nm()),
        format!("{:.3}", report.total_40nm()),
    ]);
    format!(
        "Table III: hardware parameters and estimated area\n{}",
        t.render()
    )
}

/// Fig. 2: degree distribution — edge share of the top-x% nodes and the
/// resulting region split of the sorted adjacency matrix.
pub fn fig2(results: &[DatasetResults]) -> String {
    let mut t = TextTable::new(vec![
        "Dataset",
        "top 5%",
        "top 10%",
        "top 20%",
        "top 50%",
        "gini",
        "tiling T",
        "region1 share",
    ]);
    for r in results {
        let d = &r.degrees;
        // share of edges covered by region 1 = rows of the top-T nodes
        let t_frac = r.tiling_threshold as f64 / r.spec.nodes as f64;
        t.row(vec![
            r.spec.dataset.abbrev().to_string(),
            pct(d.top_fraction_edge_share(0.05)),
            pct(d.top_fraction_edge_share(0.10)),
            pct(d.top_fraction_edge_share(0.20)),
            pct(d.top_fraction_edge_share(0.50)),
            format!("{:.3}", d.gini()),
            r.tiling_threshold.to_string(),
            pct(d.top_fraction_edge_share(t_frac)),
        ]);
    }
    let mut out = format!(
        "Fig. 2: degree distribution of the synthesised graphs\n\
         (paper: top 20% of nodes account for >70% of edges)\n{}",
        t.render()
    );
    // Fig. 2b: density map of the degree-sorted adjacency matrix for the
    // first dataset (darker = denser; regions 1/2/3 are visible as the top
    // band, left band, and sparse remainder).
    if let Some(first) = results.first() {
        out.push_str(&format!(
            "\nFig. 2b: sorted-adjacency density map for {} (darkest = densest cell)\n",
            first.spec.dataset.abbrev()
        ));
        out.push_str(&density_ascii(&first.density_grid));
    }
    out
}

/// Renders a normalised density grid as an ASCII shade map.
pub fn density_ascii(grid: &[f64]) -> String {
    const SHADES: [char; 5] = [' ', '.', ':', '*', '#'];
    let side = (grid.len() as f64).sqrt() as usize;
    let mut out = String::new();
    for r in 0..side {
        out.push_str("  ");
        for c in 0..side {
            // log-ish scale so sparse regions stay visible
            let v = grid[r * side + c];
            let idx = if v <= 0.0 {
                0
            } else if v < 0.01 {
                1
            } else if v < 0.1 {
                2
            } else if v < 0.5 {
                3
            } else {
                4
            };
            out.push(SHADES[idx]);
            out.push(SHADES[idx]);
        }
        out.push('\n');
    }
    out
}

/// Fig. 6: storage usage of the tiled adjacency matrix versus plain CSR/CSC.
pub fn fig6(results: &[DatasetResults]) -> String {
    let mut t = TextTable::new(vec!["Dataset", "plain (MB)", "tiled (MB)", "overhead"]);
    for r in results {
        t.row(vec![
            r.spec.dataset.abbrev().to_string(),
            mb(r.storage.plain_bytes as u64),
            mb(r.storage.tiled_bytes as u64),
            pct(r.storage.overhead()),
        ]);
    }
    format!(
        "Fig. 6: storage usage of the adjacency matrix (paper: 10.2% overhead on Cora,\n\
         decreasing as graphs grow)\n{}",
        t.render()
    )
}

/// Fig. 7: speedup of every dataflow, normalised to the OP baseline.
///
/// # Errors
///
/// Returns a [`MissingRunError`] if a required dataflow variant was not
/// simulated.
pub fn fig7(results: &[DatasetResults]) -> Result<String, MissingRunError> {
    let mut t = TextTable::new(vec![
        "Dataset",
        "OP cycles",
        "RWP cycles",
        "HyMM cycles",
        "RWP speedup",
        "HyMM speedup",
    ]);
    let mut max_speedup: f64 = 0.0;
    let mut rwp_product = 1.0f64;
    for r in results {
        let op = r.run("OP")?.report.cycles as f64;
        let rwp = r.run("RWP")?.report.cycles as f64;
        let hy = r.run("HyMM")?.report.cycles as f64;
        max_speedup = max_speedup.max(op / hy);
        rwp_product *= op / rwp;
        t.row(vec![
            r.spec.dataset.abbrev().to_string(),
            format!("{:.0}", op),
            format!("{:.0}", rwp),
            format!("{:.0}", hy),
            speedup(op / rwp),
            speedup(op / hy),
        ]);
    }
    let geo = rwp_product.powf(1.0 / results.len().max(1) as f64);
    Ok(format!(
        "Fig. 7: speedup over the outer-product baseline\n\
         (paper: HyMM up to 4.78x on AP; RWP ~2x over OP on average)\n{}\
         max HyMM speedup: {} | geomean RWP speedup: {}\n",
        t.render(),
        speedup(max_speedup),
        speedup(geo)
    ))
}

/// Fig. 8: ALU utilisation per dataflow.
///
/// # Errors
///
/// Returns a [`MissingRunError`] if a required dataflow variant was not
/// simulated.
pub fn fig8(results: &[DatasetResults]) -> Result<String, MissingRunError> {
    let mut t = TextTable::new(vec!["Dataset", "OP", "RWP", "HyMM", "HyMM vs RWP"]);
    for r in results {
        let op = r.run("OP")?.report.alu_utilization();
        let rwp = r.run("RWP")?.report.alu_utilization();
        let hy = r.run("HyMM")?.report.alu_utilization();
        t.row(vec![
            r.spec.dataset.abbrev().to_string(),
            pct(op),
            pct(rwp),
            pct(hy),
            format!("{:+.1}%", (hy - rwp) * 100.0),
        ]);
    }
    Ok(format!(
        "Fig. 8: ALU utilisation (paper: OP lowest; HyMM up to +27% over RWP on AC;\n\
         CR/CS/PH depressed by sparse, long feature vectors)\n{}",
        t.render()
    ))
}

/// Fig. 9: DMB hit rate per dataflow (whole inference and aggregation-only).
///
/// # Errors
///
/// Returns a [`MissingRunError`] if a required dataflow variant was not
/// simulated.
pub fn fig9(results: &[DatasetResults]) -> Result<String, MissingRunError> {
    let mut t = TextTable::new(vec![
        "Dataset",
        "OP",
        "RWP",
        "HyMM",
        "OP (agg)",
        "RWP (agg)",
        "HyMM (agg)",
    ]);
    let agg_rate = |r: &crate::runner::DataflowRun| {
        let mut hits = hymm_mem::stats::HitStats::default();
        for p in &r.report.phases {
            if p.name.starts_with("aggregation") {
                hits.merge(&p.dmb_hits);
            }
        }
        hits.hit_rate()
    };
    for r in results {
        t.row(vec![
            r.spec.dataset.abbrev().to_string(),
            pct(r.run("OP")?.report.dmb_hit_rate()),
            pct(r.run("RWP")?.report.dmb_hit_rate()),
            pct(r.run("HyMM")?.report.dmb_hit_rate()),
            pct(agg_rate(r.run("OP")?)),
            pct(agg_rate(r.run("RWP")?)),
            pct(agg_rate(r.run("HyMM")?)),
        ]);
    }
    Ok(format!(
        "Fig. 9: dense-matrix-buffer hit rate (paper: both baselines low, HyMM higher)\n{}",
        t.render()
    ))
}

/// Fig. 10: peak memory footprint of partial outputs, with and without the
/// near-memory accumulator.
///
/// # Errors
///
/// Returns a [`MissingRunError`] if a required dataflow variant was not
/// simulated.
pub fn fig10(results: &[DatasetResults]) -> Result<String, MissingRunError> {
    let capacity = AcceleratorConfig::default().mem.dmb_bytes as u64;
    let mut t = TextTable::new(vec![
        "Dataset",
        "OP (MB)",
        "HyMM-noacc (MB)",
        "HyMM (MB)",
        "DMB cap (MB)",
        "reduction",
    ]);
    for r in results {
        let op = r.run("OP")?.report.partials.peak_bytes;
        let noacc = r.run("HyMM-noacc")?.report.partials.peak_bytes;
        let hy = r.run("HyMM")?.report.partials.peak_bytes;
        let reduction = if noacc > 0 {
            1.0 - hy as f64 / noacc as f64
        } else {
            0.0
        };
        t.row(vec![
            r.spec.dataset.abbrev().to_string(),
            mb(op),
            mb(noacc),
            mb(hy),
            mb(capacity),
            pct(reduction),
        ]);
    }
    Ok(format!(
        "Fig. 10: memory usage by partial outputs (paper: without an accumulator the\n\
         footprint frequently exceeds the DMB; accumulator cuts it by up to 85% on AP)\n{}",
        t.render()
    ))
}

/// Stall-attribution table (printed by `--stalls`): for every dataset and
/// dataflow variant, the share of total cycles each stall class absorbs
/// (waterfall attribution — see `hymm_core::stats::StallBreakdown`).
pub fn stalls(results: &[DatasetResults]) -> String {
    use hymm_core::stats::StallBreakdown;
    let mut header = vec!["Dataset", "Dataflow", "cycles"];
    header.extend(StallBreakdown::CLASSES);
    let mut t = TextTable::new(header);
    for r in results {
        for run in &r.runs {
            let cycles = run.report.cycles.max(1);
            let mut row = vec![
                r.spec.dataset.abbrev().to_string(),
                run.label.to_string(),
                run.report.cycles.to_string(),
            ];
            row.extend(
                run.report
                    .stalls
                    .as_array()
                    .iter()
                    .map(|&c| pct(c as f64 / cycles as f64)),
            );
            t.row(row);
        }
    }
    format!(
        "Stall attribution: where every simulated cycle went, per dataflow\n\
         (waterfall order: a class only claims cycles the classes before it left)\n{}",
        t.render()
    )
}

/// Fig. 11: DRAM access breakdown by matrix kind.
///
/// # Errors
///
/// Returns a [`MissingRunError`] if a required dataflow variant was not
/// simulated.
pub fn fig11(results: &[DatasetResults]) -> Result<String, MissingRunError> {
    let mut t = TextTable::new(vec![
        "Dataset",
        "Dataflow",
        "A (MB)",
        "X (MB)",
        "W (MB)",
        "XW (MB)",
        "AXW (MB)",
        "total (MB)",
        "vs OP",
    ]);
    for r in results {
        let op_total = r.run("OP")?.report.dram_bytes();
        for label in ["OP", "RWP", "HyMM"] {
            let rep = &r.run(label)?.report;
            let k = |kind: MatrixKind| mb(rep.dram.kind(kind).total_bytes());
            let total = rep.dram_bytes();
            t.row(vec![
                r.spec.dataset.abbrev().to_string(),
                label.to_string(),
                k(MatrixKind::SparseA),
                k(MatrixKind::SparseX),
                k(MatrixKind::Weight),
                k(MatrixKind::Combination),
                k(MatrixKind::Output),
                mb(total),
                format!("-{}", pct(1.0 - total as f64 / op_total as f64)),
            ]);
        }
    }
    Ok(format!(
        "Fig. 11: DRAM access breakdown (paper: HyMM reduces off-chip accesses by 91%\n\
         on AP and 89% on AC versus the conventional dataflow)\n{}",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_dataset;
    use hymm_graph::datasets::Dataset;

    fn tiny() -> Vec<DatasetResults> {
        vec![run_dataset(Dataset::Cora, Some(200))]
    }

    #[test]
    fn static_tables_render() {
        assert!(table1().contains("HyMM"));
        assert!(table3(&AcceleratorConfig::default()).contains("PE Array"));
    }

    #[test]
    fn all_figures_render_on_tiny_suite() {
        let results = tiny();
        for s in [
            table2(&results),
            fig2(&results),
            fig6(&results),
            fig7(&results).unwrap(),
            fig8(&results).unwrap(),
            fig9(&results).unwrap(),
            fig10(&results).unwrap(),
            fig11(&results).unwrap(),
        ] {
            assert!(s.contains("CR"), "figure missing dataset row:\n{s}");
        }
    }

    #[test]
    fn figures_surface_missing_variants_as_errors() {
        let mut results = tiny();
        results[0].runs.retain(|r| r.label != "RWP");
        let e = fig7(&results).unwrap_err();
        assert!(e.to_string().contains("no run labelled \"RWP\""), "{e}");
        // Figures that never touch RWP still render.
        assert!(fig10(&results).is_ok());
    }

    #[test]
    fn stalls_table_covers_every_variant_and_class() {
        let results = tiny();
        let s = stalls(&results);
        for label in ["OP", "RWP", "HyMM", "HyMM-noacc"] {
            assert!(s.contains(label), "missing variant {label}:\n{s}");
        }
        for class in hymm_core::stats::StallBreakdown::CLASSES {
            assert!(s.contains(class), "missing class {class}:\n{s}");
        }
    }

    #[test]
    fn fig7_reports_hybrid_speedup_over_one() {
        let results = tiny();
        let s = fig7(&results).unwrap();
        // HyMM should beat OP on Cora even at small scale
        assert!(s.contains("max HyMM speedup"));
        let op = results[0].run("OP").unwrap().report.cycles;
        let hy = results[0].run("HyMM").unwrap().report.cycles;
        assert!(hy < op);
    }
}

#[cfg(test)]
mod density_ascii_tests {
    use super::density_ascii;

    #[test]
    fn shades_scale_with_density() {
        let s = density_ascii(&[0.0, 0.005, 0.05, 1.0]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("  ") && lines[0].contains(".."));
        assert!(lines[1].contains("::") && lines[1].contains("##"));
    }
}
