//! Experiment regenerators for every table and figure of the HyMM paper.
//!
//! Each binary in `src/bin/` reproduces one table or figure; they all share
//! the [`runner`] (dataset synthesis + simulation, with caching across
//! figures in `all_experiments`), the [`table`] text formatter and the
//! [`args`] command-line conventions:
//!
//! ```text
//! cargo run --release -p hymm-bench --bin fig7 -- [--scale N] [--datasets CR,AP] [--threads N]
//! ```
//!
//! `--scale N` caps every dataset at `N` nodes (average degree, sparsities
//! and dimensions preserved) for quick runs; the default is the paper's
//! full-size Table II datasets. `--datasets` filters by the paper's
//! two-letter abbreviations. `--threads N` fans the independent
//! (dataset x variant) simulations out across a [`pool`] of `N` workers
//! (`0` = one per host core); results are identical at any thread count.
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — qualitative dataflow comparison |
//! | `table2` | Table II — dataset statistics + sorting cost |
//! | `table3` | Table III — hardware parameters and area |
//! | `fig2` | Fig. 2 — degree distribution / region split |
//! | `fig6` | Fig. 6 — tiled-format storage overhead |
//! | `fig7` | Fig. 7 — speedup of RWP / OP / HyMM |
//! | `fig8` | Fig. 8 — ALU utilisation |
//! | `fig9` | Fig. 9 — DMB hit rate |
//! | `fig10` | Fig. 10 — partial-output memory footprint |
//! | `fig11` | Fig. 11 — DRAM access breakdown |
//! | `all_experiments` | everything above, one shared simulation pass |

pub mod args;
pub mod dse;
pub mod export;
pub mod figures;
pub mod json;
pub mod log;
pub mod metrics_json;
pub mod pe_sweep;
pub mod perf_diff;
pub mod pool;
pub mod runner;
pub mod table;
pub mod trace_json;

pub use args::BenchArgs;
pub use runner::{run_dataset, run_dataset_with, run_suite, DataflowRun, DatasetResults};
