//! Plain-text aligned table formatting for experiment output.

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use hymm_bench::table::TextTable;
///
/// let mut t = TextTable::new(vec!["dataset", "cycles"]);
/// t.row(vec!["CR".into(), "123".into()]);
/// let s = t.render();
/// assert!(s.contains("dataset"));
/// assert!(s.contains("CR"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> TextTable {
        TextTable {
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a byte count as a human-readable MB string.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// Formats a ratio as `N.NNx`.
pub fn speedup(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(mb(2_500_000), "2.50");
        assert_eq!(speedup(4.776), "4.78x");
        assert_eq!(pct(0.913), "91.3%");
    }
}
