//! A tiny leveled stderr logger shared by every bench binary.
//!
//! The bench bins used to `eprintln!` progress lines unconditionally;
//! routing them through one level gate makes the output controllable —
//! `--quiet` silences progress for scripted/CI invocations (and, later,
//! server mode), `-v`/`--verbose` opens up diagnostic detail — without
//! touching the *default* output, which stays exactly what it was.
//! Error-path messages (usage errors, fatal failures) are deliberately
//! not routed through here: they always print.
//!
//! Levels are a process-wide atomic so the pool workers and the runner
//! share one setting with no plumbing.

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity levels, ordered: a message prints when its level is at or
/// below the configured one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Errors only (`--quiet`).
    Quiet = 0,
    /// Progress lines — the historical default output.
    Progress = 1,
    /// Extra diagnostic detail (`-v` / `--verbose`).
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Progress as u8);

/// Sets the process-wide verbosity.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current process-wide verbosity.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        1 => Level::Progress,
        _ => Level::Verbose,
    }
}

/// Whether a message at `at` should print.
pub fn enabled(at: Level) -> bool {
    at <= level()
}

/// Prints a progress line to stderr unless `--quiet` was given. Same
/// calling convention as `eprintln!`.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Progress) {
            eprintln!($($arg)*);
        }
    };
}

/// Prints a diagnostic line to stderr only under `-v`/`--verbose`.
#[macro_export]
macro_rules! verbose {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Verbose) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns the global level (tests run concurrently; splitting
    // these across #[test] fns would race on the atomic).
    #[test]
    fn level_gate_orders_quiet_progress_verbose() {
        let original = level();
        set_level(Level::Quiet);
        assert!(!enabled(Level::Progress));
        assert!(!enabled(Level::Verbose));
        set_level(Level::Progress);
        assert!(enabled(Level::Progress));
        assert!(!enabled(Level::Verbose));
        set_level(Level::Verbose);
        assert!(enabled(Level::Progress));
        assert!(enabled(Level::Verbose));
        set_level(original);
        assert_eq!(level(), original);
    }
}
