//! Shared simulation runner: synthesise each dataset once, run every
//! dataflow variant on it, and hand the reports to the figure printers.

use crate::args::BenchArgs;
use crate::pool;
use hymm_core::config::{AcceleratorConfig, Dataflow, MergePolicy};
use hymm_core::prepared::{CombinationMemo, PreparedAdjacency};
use hymm_core::stats::SimReport;
use hymm_gcn::{prepare_adjacency, run_inference_prepared, GcnModel};
use hymm_graph::datasets::{Dataset, DatasetSpec, Workload};
use hymm_graph::degree::DegreeDistribution;
use hymm_graph::sort::degree_sort;
use hymm_sparse::storage::{StorageLayout, StorageReport};
use hymm_sparse::tiling::{TiledMatrix, TilingConfig};
use std::fmt;
use std::sync::Arc;

/// One dataflow variant's simulation result on one dataset.
#[derive(Debug, Clone)]
pub struct DataflowRun {
    /// Display label (`OP`, `RWP`, `HyMM`, `HyMM-noacc`).
    pub label: &'static str,
    /// Aggregate report over the two GCN layers.
    pub report: SimReport,
    /// Event-core scheduling counters (zero under `--scheduler stepped`).
    pub events: hymm_mem::EventStats,
}

/// Everything the figures need about one dataset.
#[derive(Debug, Clone)]
pub struct DatasetResults {
    /// Which dataset (possibly scaled).
    pub spec: DatasetSpec,
    /// Degree-distribution summary of the synthesised graph (Fig. 2).
    pub degrees: DegreeDistribution,
    /// Host-side degree-sorting cost in ms (Table II).
    pub sort_cost_ms: f64,
    /// Tiled-format storage accounting (Fig. 6).
    pub storage: StorageReport,
    /// Tiling threshold used by the hybrid dataflow.
    pub tiling_threshold: usize,
    /// `GRID x GRID` non-zero density map of the degree-sorted adjacency
    /// matrix (paper Fig. 2b), row-major, normalised per-matrix.
    pub density_grid: Vec<f64>,
    /// Simulation runs: OP baseline, RWP baseline, HyMM, and HyMM without
    /// the near-memory accumulator (Fig. 10's ablation).
    pub runs: Vec<DataflowRun>,
}

/// A figure or exporter asked for a dataflow label that was never
/// simulated — e.g. a typo, or a suite run with a reduced variant set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingRunError {
    /// The label that was requested.
    pub label: String,
    /// Labels that were actually simulated, in run order.
    pub available: Vec<&'static str>,
}

impl fmt::Display for MissingRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no run labelled {:?} (available: {})",
            self.label,
            self.available.join(", ")
        )
    }
}

impl std::error::Error for MissingRunError {}

impl DatasetResults {
    /// Looks up one run by label.
    ///
    /// # Errors
    ///
    /// Returns a [`MissingRunError`] naming the available labels if the
    /// label was not simulated.
    pub fn run(&self, label: &str) -> Result<&DataflowRun, MissingRunError> {
        self.runs
            .iter()
            .find(|r| r.label == label)
            .ok_or_else(|| MissingRunError {
                label: label.to_string(),
                available: self.runs.iter().map(|r| r.label).collect(),
            })
    }
}

/// Cells per side of the Fig. 2b density map.
pub const DENSITY_GRID: usize = 16;

/// Computes a `grid x grid` map of non-zero counts over a square matrix,
/// normalised so the densest cell is 1.0.
pub fn density_grid(adj: &hymm_sparse::Coo, grid: usize) -> Vec<f64> {
    let n = adj.rows().max(1);
    let mut counts = vec![0u64; grid * grid];
    for (r, c, _) in adj.iter() {
        let gr = (r * grid / n).min(grid - 1);
        let gc = (c * grid / n).min(grid - 1);
        counts[gr * grid + gc] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(0).max(1) as f64;
    counts.into_iter().map(|c| c as f64 / max).collect()
}

/// Simulation variants run per dataset: the [`Dataflow::ALL`] baselines plus
/// HyMM with the near-memory accumulator disabled (Fig. 10's ablation).
pub const VARIANTS_PER_DATASET: usize = Dataflow::ALL.len() + 1;

/// A synthesised dataset plus its preprocessing analytics — everything a
/// variant simulation needs, computed once and shared (immutably) by the
/// four variant jobs.
struct PreparedDataset {
    spec: DatasetSpec,
    workload: Workload,
    degrees: DegreeDistribution,
    sort_cost_ms: f64,
    storage: StorageReport,
    tiling_threshold: usize,
    density_grid: Vec<f64>,
    model: GcnModel,
    config: AcceleratorConfig,
    /// Normalised adjacency plus lazily shared CSR/CSC/sort/tiling, reused
    /// by all four variant simulations.
    sim_prep: Arc<PreparedAdjacency>,
    /// Numeric memo shared by the two hybrid variants (HyMM and
    /// HyMM-noacc), whose numeric trajectories are bit-identical.
    hybrid_memo: Arc<CombinationMemo>,
}

/// Synthesises one dataset and runs its preprocessing analytics (Table II
/// sorting cost, Fig. 6 storage, Fig. 2b density map).
fn prepare_dataset(dataset: Dataset, args: &BenchArgs) -> PreparedDataset {
    let spec = match args.scale {
        Some(n) => dataset.spec().scaled(n),
        None => dataset.spec(),
    };
    let workload = spec.synthesize();
    let degrees = DegreeDistribution::measure(&workload.adjacency);

    let sorted = degree_sort(&workload.adjacency).expect("adjacency is square");
    let config = args.accelerator_config();
    let tiling = TilingConfig {
        threshold_fraction: config.tiling_fraction,
        dmb_capacity_rows: Some(config.dmb_capacity_rows(spec.layer_dim)),
    };
    let tiled = TiledMatrix::new(&sorted.adjacency, &tiling).expect("sorted matrix is square");
    let storage = tiled.storage_report(&StorageLayout::default());
    let tiling_threshold = tiled.threshold();
    let density_grid = density_grid(&sorted.adjacency, DENSITY_GRID);

    let model = GcnModel::two_layer(spec.feature_len, spec.layer_dim, spec.layer_dim, 42);
    let sim_prep = Arc::new(prepare_adjacency(&workload.adjacency).expect("adjacency is square"));

    PreparedDataset {
        spec,
        workload,
        degrees,
        sort_cost_ms: sorted.sort_cost_ms,
        storage,
        tiling_threshold,
        density_grid,
        model,
        config,
        sim_prep,
        hybrid_memo: Arc::new(CombinationMemo::new()),
    }
}

/// Runs one simulation variant (`0..VARIANTS_PER_DATASET`) on a prepared
/// dataset. Variants below `Dataflow::ALL.len()` are the per-dataflow
/// baselines; the last is HyMM with the near-memory accumulator disabled
/// (materialised region-1 partials) — the "without accumulator" series of
/// Fig. 10.
fn simulate_variant(prep: &PreparedDataset, variant: usize) -> DataflowRun {
    let (config, dataflow, label) = if let Some(&df) = Dataflow::ALL.get(variant) {
        (prep.config.clone(), df, df.label())
    } else {
        let mut noacc = prep.config.clone();
        noacc.hybrid_merge = MergePolicy::Materialize;
        (noacc, Dataflow::Hybrid, "HyMM-noacc")
    };
    // Hybrid variants differ only in merge policy (timing, not numerics),
    // so they may share the numeric memo.
    let memo = (dataflow == Dataflow::Hybrid).then_some(&*prep.hybrid_memo);
    let outcome = run_inference_prepared(
        &config,
        dataflow,
        &prep.sim_prep,
        &prep.workload.features,
        &prep.model,
        memo,
    )
    .expect("workload shapes are consistent");
    DataflowRun {
        label,
        report: outcome.report,
        events: outcome.events,
    }
}

fn assemble(prep: PreparedDataset, runs: Vec<DataflowRun>) -> DatasetResults {
    DatasetResults {
        spec: prep.spec,
        degrees: prep.degrees,
        sort_cost_ms: prep.sort_cost_ms,
        storage: prep.storage,
        tiling_threshold: prep.tiling_threshold,
        density_grid: prep.density_grid,
        runs,
    }
}

/// Runs the full suite for one dataset: synthesis, preprocessing analytics,
/// and all four simulation variants, serially on the calling thread.
pub fn run_dataset(dataset: Dataset, scale: Option<usize>) -> DatasetResults {
    let args = BenchArgs {
        scale,
        ..BenchArgs::default()
    };
    run_dataset_with(dataset, &args)
}

/// [`run_dataset`] honouring the full argument set (scheduler, prefetch,
/// audit), still serially on the calling thread; `args.threads` is ignored.
pub fn run_dataset_with(dataset: Dataset, args: &BenchArgs) -> DatasetResults {
    let prep = prepare_dataset(dataset, args);
    let runs = (0..VARIANTS_PER_DATASET)
        .map(|v| simulate_variant(&prep, v))
        .collect();
    assemble(prep, runs)
}

/// Runs the suite for every requested dataset, printing progress to stderr.
///
/// With `args.threads != 1` the work fans out over a [`pool`] in two waves —
/// dataset preparation, then every (dataset x variant) simulation — and is
/// reassembled dataset-major, so the results (and their order) are identical
/// to a serial run at any thread count. Progress lines are printed from the
/// coordinating thread only, one per dataset before its jobs are enqueued,
/// so stderr is stable too.
pub fn run_suite(args: &BenchArgs) -> Vec<DatasetResults> {
    let threads = args.worker_threads();
    for d in &args.datasets {
        crate::progress!("[hymm-bench] simulating {} ...", d.name());
    }
    let preps = pool::map_indexed(threads, &args.datasets, |_, &d| prepare_dataset(d, args));

    // One job per (dataset, variant): dataset-major, so chunking the flat
    // result vector reassembles each dataset's runs in variant order.
    let jobs: Vec<(usize, usize)> = (0..preps.len())
        .flat_map(|d| (0..VARIANTS_PER_DATASET).map(move |v| (d, v)))
        .collect();
    let mut runs =
        pool::map_indexed(threads, &jobs, |_, &(d, v)| simulate_variant(&preps[d], v)).into_iter();

    preps
        .into_iter()
        .map(|prep| {
            let dataset_runs = runs.by_ref().take(VARIANTS_PER_DATASET).collect();
            assemble(prep, dataset_runs)
        })
        .collect()
}

/// True when two suite results carry bit-identical simulation outcomes
/// (same datasets, labels, and full [`SimReport`]s) — the invariance check
/// shared by `perf_report` and the `pe_sweep` baseline assertion.
pub fn results_match(a: &[DatasetResults], b: &[DatasetResults]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.runs.len() == y.runs.len()
                && x.runs
                    .iter()
                    .zip(&y.runs)
                    .all(|(rx, ry)| rx.label == ry.label && rx.report == ry.report)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_has_all_variants() {
        let r = run_dataset(Dataset::Cora, Some(200));
        assert_eq!(r.runs.len(), 4);
        for label in ["OP", "RWP", "HyMM", "HyMM-noacc"] {
            let run = r.run(label).expect("variant was simulated");
            assert!(run.report.cycles > 0, "{label} did not run");
        }
        assert!(r.sort_cost_ms >= 0.0);
        assert!(r.storage.tiled_bytes > r.storage.plain_bytes);
        assert!(r.tiling_threshold > 0);
    }

    #[test]
    fn missing_label_is_an_error_naming_the_alternatives() {
        let r = run_dataset(Dataset::Cora, Some(200));
        let e = r.run("GROW").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("no run labelled \"GROW\""), "{msg}");
        for label in ["OP", "RWP", "HyMM", "HyMM-noacc"] {
            assert!(msg.contains(label), "{msg} missing {label}");
        }
    }

    #[test]
    fn hybrid_beats_outer_on_small_cora() {
        let r = run_dataset(Dataset::Cora, Some(400));
        assert!(r.run("HyMM").unwrap().report.cycles < r.run("OP").unwrap().report.cycles);
    }

    #[test]
    fn smq_stream_prefetching_issues_under_audit() {
        let args = BenchArgs {
            scale: Some(200),
            datasets: vec![Dataset::Cora],
            threads: 1,
            audit: true,
            prefetch: Some(hymm_mem::PrefetchPolicy::SmqStream),
            ..BenchArgs::default()
        };
        let results = run_suite(&args);
        assert!(
            results[0]
                .runs
                .iter()
                .any(|run| run.report.prefetch.issued > 0),
            "no variant issued a single prefetch"
        );
    }

    #[test]
    fn parallel_suite_matches_serial() {
        let mk = |threads| BenchArgs {
            scale: Some(150),
            datasets: vec![Dataset::Cora, Dataset::AmazonPhoto],
            threads,
            audit: true,
            ..BenchArgs::default()
        };
        let serial = run_suite(&mk(1));
        let parallel = run_suite(&mk(4));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.spec.dataset, p.spec.dataset,
                "dataset order must be stable"
            );
            assert_eq!(s.runs.len(), p.runs.len());
            for (sr, pr) in s.runs.iter().zip(&p.runs) {
                assert_eq!(sr.label, pr.label);
                assert_eq!(sr.report.cycles, pr.report.cycles, "{}", sr.label);
                assert_eq!(sr.report.dram, pr.report.dram, "{}", sr.label);
                assert_eq!(sr.report.phases, pr.report.phases, "{}", sr.label);
            }
        }
    }
}

#[cfg(test)]
mod density_tests {
    use super::*;
    use hymm_sparse::Coo;

    #[test]
    fn density_grid_normalises_to_one() {
        let adj = Coo::from_triplets(8, 8, [(0, 0, 1.0), (0, 1, 1.0), (7, 7, 1.0)]).unwrap();
        let g = density_grid(&adj, 4);
        assert_eq!(g.len(), 16);
        let max = g.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        // top-left cell holds 2 of 3 entries
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[15] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn density_grid_empty_matrix_is_zero() {
        let adj = Coo::new(4, 4).unwrap();
        let g = density_grid(&adj, 4);
        assert!(g.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sorted_power_law_is_top_left_heavy() {
        use hymm_graph::generator::preferential_attachment;
        use hymm_graph::sort::degree_sort;
        let adj = preferential_attachment(400, 2_000, 3);
        let sorted = degree_sort(&adj).unwrap();
        let g = density_grid(&sorted.adjacency, 4);
        // the top-left cell must be the global maximum
        assert!((g[0] - 1.0).abs() < 1e-12, "top-left is not densest: {g:?}");
        // and denser than the bottom-right sparse remainder
        assert!(g[0] > 10.0 * g[15].max(1e-9));
    }
}
