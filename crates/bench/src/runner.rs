//! Shared simulation runner: synthesise each dataset once, run every
//! dataflow variant on it, and hand the reports to the figure printers.

use crate::args::BenchArgs;
use hymm_core::config::{AcceleratorConfig, Dataflow, MergePolicy};
use hymm_core::stats::SimReport;
use hymm_gcn::{run_inference, GcnModel};
use hymm_graph::datasets::{Dataset, DatasetSpec};
use hymm_graph::degree::DegreeDistribution;
use hymm_graph::sort::degree_sort;
use hymm_sparse::storage::{StorageLayout, StorageReport};
use hymm_sparse::tiling::{TiledMatrix, TilingConfig};

/// One dataflow variant's simulation result on one dataset.
#[derive(Debug, Clone)]
pub struct DataflowRun {
    /// Display label (`OP`, `RWP`, `HyMM`, `HyMM-noacc`).
    pub label: &'static str,
    /// Aggregate report over the two GCN layers.
    pub report: SimReport,
}

/// Everything the figures need about one dataset.
#[derive(Debug, Clone)]
pub struct DatasetResults {
    /// Which dataset (possibly scaled).
    pub spec: DatasetSpec,
    /// Degree-distribution summary of the synthesised graph (Fig. 2).
    pub degrees: DegreeDistribution,
    /// Host-side degree-sorting cost in ms (Table II).
    pub sort_cost_ms: f64,
    /// Tiled-format storage accounting (Fig. 6).
    pub storage: StorageReport,
    /// Tiling threshold used by the hybrid dataflow.
    pub tiling_threshold: usize,
    /// `GRID x GRID` non-zero density map of the degree-sorted adjacency
    /// matrix (paper Fig. 2b), row-major, normalised per-matrix.
    pub density_grid: Vec<f64>,
    /// Simulation runs: OP baseline, RWP baseline, HyMM, and HyMM without
    /// the near-memory accumulator (Fig. 10's ablation).
    pub runs: Vec<DataflowRun>,
}

impl DatasetResults {
    /// Looks up one run by label.
    ///
    /// # Panics
    ///
    /// Panics if the label was not simulated.
    pub fn run(&self, label: &str) -> &DataflowRun {
        self.runs
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("no run labelled {label:?}"))
    }
}

/// Cells per side of the Fig. 2b density map.
pub const DENSITY_GRID: usize = 16;

/// Computes a `grid x grid` map of non-zero counts over a square matrix,
/// normalised so the densest cell is 1.0.
pub fn density_grid(adj: &hymm_sparse::Coo, grid: usize) -> Vec<f64> {
    let n = adj.rows().max(1);
    let mut counts = vec![0u64; grid * grid];
    for (r, c, _) in adj.iter() {
        let gr = (r * grid / n).min(grid - 1);
        let gc = (c * grid / n).min(grid - 1);
        counts[gr * grid + gc] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(0).max(1) as f64;
    counts.into_iter().map(|c| c as f64 / max).collect()
}

/// Runs the full suite for one dataset: synthesis, preprocessing analytics,
/// and all four simulation variants.
pub fn run_dataset(dataset: Dataset, scale: Option<usize>) -> DatasetResults {
    let spec = match scale {
        Some(n) => dataset.spec().scaled(n),
        None => dataset.spec(),
    };
    let workload = spec.synthesize();
    let degrees = DegreeDistribution::measure(&workload.adjacency);

    // Preprocessing analytics (Table II sorting cost, Fig. 6 storage).
    let sorted = degree_sort(&workload.adjacency).expect("adjacency is square");
    let config = AcceleratorConfig::default();
    let tiling = TilingConfig {
        threshold_fraction: config.tiling_fraction,
        dmb_capacity_rows: Some(config.dmb_capacity_rows(spec.layer_dim)),
    };
    let tiled = TiledMatrix::new(&sorted.adjacency, &tiling).expect("sorted matrix is square");
    let storage = tiled.storage_report(&StorageLayout::default());
    let tiling_threshold = tiled.threshold();
    let density_grid = density_grid(&sorted.adjacency, DENSITY_GRID);

    let model = GcnModel::two_layer(spec.feature_len, spec.layer_dim, spec.layer_dim, 42);

    let mut runs = Vec::new();
    for df in Dataflow::ALL {
        let outcome = run_inference(&config, df, &workload.adjacency, &workload.features, &model)
            .expect("workload shapes are consistent");
        runs.push(DataflowRun { label: df.label(), report: outcome.report });
    }
    // HyMM with the near-memory accumulator disabled (materialised region-1
    // partials) — the "without accumulator" series of Fig. 10.
    let mut noacc = config.clone();
    noacc.hybrid_merge = MergePolicy::Materialize;
    let outcome =
        run_inference(&noacc, Dataflow::Hybrid, &workload.adjacency, &workload.features, &model)
            .expect("workload shapes are consistent");
    runs.push(DataflowRun { label: "HyMM-noacc", report: outcome.report });

    DatasetResults {
        spec,
        degrees,
        sort_cost_ms: sorted.sort_cost_ms,
        storage,
        tiling_threshold,
        density_grid,
        runs,
    }
}

/// Runs the suite for every requested dataset, printing progress to stderr.
pub fn run_suite(args: &BenchArgs) -> Vec<DatasetResults> {
    args.datasets
        .iter()
        .map(|&d| {
            eprintln!("[hymm-bench] simulating {} ...", d.name());
            run_dataset(d, args.scale)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_has_all_variants() {
        let r = run_dataset(Dataset::Cora, Some(200));
        assert_eq!(r.runs.len(), 4);
        for label in ["OP", "RWP", "HyMM", "HyMM-noacc"] {
            assert!(r.run(label).report.cycles > 0, "{label} did not run");
        }
        assert!(r.sort_cost_ms >= 0.0);
        assert!(r.storage.tiled_bytes > r.storage.plain_bytes);
        assert!(r.tiling_threshold > 0);
    }

    #[test]
    fn hybrid_beats_outer_on_small_cora() {
        let r = run_dataset(Dataset::Cora, Some(400));
        assert!(r.run("HyMM").report.cycles < r.run("OP").report.cycles);
    }
}

#[cfg(test)]
mod density_tests {
    use super::*;
    use hymm_sparse::Coo;

    #[test]
    fn density_grid_normalises_to_one() {
        let adj = Coo::from_triplets(8, 8, [(0, 0, 1.0), (0, 1, 1.0), (7, 7, 1.0)]).unwrap();
        let g = density_grid(&adj, 4);
        assert_eq!(g.len(), 16);
        let max = g.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        // top-left cell holds 2 of 3 entries
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[15] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn density_grid_empty_matrix_is_zero() {
        let adj = Coo::new(4, 4).unwrap();
        let g = density_grid(&adj, 4);
        assert!(g.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sorted_power_law_is_top_left_heavy() {
        use hymm_graph::generator::preferential_attachment;
        use hymm_graph::sort::degree_sort;
        let adj = preferential_attachment(400, 2_000, 3);
        let sorted = degree_sort(&adj).unwrap();
        let g = density_grid(&sorted.adjacency, 4);
        // the top-left cell must be the global maximum
        assert!((g[0] - 1.0).abs() < 1e-12, "top-left is not densest: {g:?}");
        // and denser than the bottom-right sparse remainder
        assert!(g[0] > 10.0 * g[15].max(1e-9));
    }
}
