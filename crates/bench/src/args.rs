//! Minimal command-line conventions shared by every experiment binary.

use hymm_graph::datasets::Dataset;

/// Parsed experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Cap each dataset at this many nodes (`None` = full Table II scale).
    pub scale: Option<usize>,
    /// Datasets to run (defaults to all seven).
    pub datasets: Vec<Dataset>,
    /// Worker threads for the suite runner (`0` = auto-detect, `1` = serial).
    pub threads: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: None,
            datasets: Dataset::ALL.to_vec(),
            threads: 0,
        }
    }
}

impl BenchArgs {
    /// Parses `--scale N`, `--datasets CR,AP,...`, and `--threads N` from an
    /// iterator of arguments (typically `std::env::args().skip(1)`).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments — these binaries
    /// are developer tools, not library API.
    pub fn parse(args: impl IntoIterator<Item = String>) -> BenchArgs {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a node count");
                    out.scale = Some(v.parse().expect("--scale needs an integer"));
                }
                "--datasets" => {
                    let v = it.next().expect("--datasets needs a CR,AP,... list");
                    out.datasets = v
                        .split(',')
                        .map(|abbr| {
                            Dataset::ALL
                                .into_iter()
                                .find(|d| d.abbrev().eq_ignore_ascii_case(abbr.trim()))
                                .unwrap_or_else(|| panic!("unknown dataset {abbr:?}"))
                        })
                        .collect();
                }
                "--threads" => {
                    let v = it.next().expect("--threads needs a worker count");
                    out.threads = v.parse().expect("--threads needs an integer");
                }
                "--help" | "-h" => {
                    println!(
                        "usage: <bin> [--scale N] [--datasets CR,AP,AC,CS,PH,FR,YP] [--threads N]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?} (try --help)"),
            }
        }
        out
    }

    /// Parses from the process arguments.
    pub fn from_env() -> BenchArgs {
        BenchArgs::parse(std::env::args().skip(1))
    }

    /// Resolved worker count: `--threads N`, with `0` (the default) mapped
    /// to the host's available parallelism.
    pub fn worker_threads(&self) -> usize {
        if self.threads == 0 {
            crate::pool::default_threads()
        } else {
            self.threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> BenchArgs {
        BenchArgs::parse(items.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_to_full_scale_all_datasets() {
        let a = parse(&[]);
        assert_eq!(a.scale, None);
        assert_eq!(a.datasets.len(), 7);
    }

    #[test]
    fn parses_scale() {
        assert_eq!(parse(&["--scale", "500"]).scale, Some(500));
    }

    #[test]
    fn parses_threads() {
        assert_eq!(parse(&["--threads", "4"]).threads, 4);
    }

    #[test]
    fn threads_defaults_to_auto() {
        assert_eq!(parse(&[]).threads, 0);
    }

    #[test]
    #[should_panic(expected = "--threads needs an integer")]
    fn rejects_non_numeric_threads() {
        let _ = parse(&["--threads", "many"]);
    }

    #[test]
    fn parses_dataset_filter() {
        let a = parse(&["--datasets", "cr,AP"]);
        assert_eq!(a.datasets, vec![Dataset::Cora, Dataset::AmazonPhoto]);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn rejects_unknown_dataset() {
        let _ = parse(&["--datasets", "XX"]);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown_flag() {
        let _ = parse(&["--frobnicate"]);
    }
}
