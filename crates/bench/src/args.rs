//! Minimal command-line conventions shared by every experiment binary.

use hymm_core::config::{Preset, SchedulerKind};
use hymm_graph::datasets::Dataset;
use hymm_mem::PrefetchPolicy;
use std::fmt;

/// Usage string printed by `--help` and alongside argument errors.
pub const USAGE: &str = "usage: <bin> [--scale N] [--datasets CR,AP,AC,CS,PH,FR,YP] [--threads N] \
     [--audit] [--stalls] [--scheduler stepped|event] [--preset default|tuned] \
     [--prefetch off|next-line|smq-stream] [--prefetch-degree N] \
     [--prefetch-mshr-cap K] [--pe-lanes N] [--mac-latency N] \
     [--mac-pipeline] [--lane-gating] [--metrics-interval CYCLES] \
     [--quiet] [-v|--verbose]";

/// A malformed command line. Binaries print this (plus [`USAGE`]) and exit
/// with status 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(String);

impl ArgError {
    pub(crate) fn new(msg: impl Into<String>) -> ArgError {
        ArgError(msg.into())
    }
}

/// Parses a `CR,AP,...` dataset-abbreviation list (shared by `--datasets`
/// here and in the `dse` binary's argument parser).
pub(crate) fn parse_dataset_list(v: &str) -> Result<Vec<Dataset>, ArgError> {
    v.split(',')
        .map(|abbr| {
            Dataset::ALL
                .into_iter()
                .find(|d| d.abbrev().eq_ignore_ascii_case(abbr.trim()))
                .ok_or_else(|| ArgError::new(format!("unknown dataset {abbr:?}")))
        })
        .collect()
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Cap each dataset at this many nodes (`None` = full Table II scale).
    pub scale: Option<usize>,
    /// Datasets to run (defaults to all seven).
    pub datasets: Vec<Dataset>,
    /// Worker threads for the suite runner (`0` = auto-detect, `1` = serial).
    pub threads: usize,
    /// Enable the simulator's runtime invariant audit (see
    /// `hymm_core::audit`); any violation aborts the run.
    pub audit: bool,
    /// Print the per-dataflow stall-attribution table (see
    /// `hymm_core::stats::StallBreakdown`) after the figures.
    pub stalls: bool,
    /// Which simulation core to run (`event` by default; `stepped` keeps
    /// the legacy per-access walk — reports are bit-identical either way).
    pub scheduler: SchedulerKind,
    /// Named configuration preset applied before every individual knob
    /// override (`default` reproduces Table III; `tuned` is the best
    /// iso-area-budget configuration found by the `dse` binary).
    pub preset: Preset,
    /// Hardware-prefetch policy override on the DMB miss path (`None` =
    /// whatever the preset/config default says; `off` keeps timing
    /// bit-identical to a build without the prefetcher).
    pub prefetch: Option<PrefetchPolicy>,
    /// Prefetch degree override (`None` = the `MemConfig` default).
    pub prefetch_degree: Option<usize>,
    /// Prefetch MSHR occupancy cap override (`None` = the `MemConfig`
    /// default).
    pub prefetch_mshr_cap: Option<usize>,
    /// MAC lanes per PE vector unit (`None` = the accelerator config's
    /// default of 16).
    pub pe_lanes: Option<usize>,
    /// MAC issue-to-result latency in cycles (`None` = the default of 1).
    pub mac_latency: Option<u64>,
    /// Pipeline the MAC unit: accept a new issue every cycle regardless of
    /// latency (initiation interval 1).
    pub mac_pipeline: bool,
    /// Per-lane operand gating (flexible VRF): short rows charge only
    /// occupied lanes' energy and may be packed several to an issue slot.
    pub lane_gating: bool,
    /// Interval-sampled telemetry: sample component gauges every this many
    /// cycles into `SimReport::metrics` (`None` = off, the pinned
    /// bit-identical default).
    pub metrics_interval: Option<u64>,
    /// Silence progress output (`--quiet`); errors still print.
    pub quiet: bool,
    /// Enable diagnostic detail (`-v`/`--verbose`).
    pub verbose: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: None,
            datasets: Dataset::ALL.to_vec(),
            threads: 0,
            audit: false,
            stalls: false,
            scheduler: SchedulerKind::Event,
            preset: Preset::Default,
            prefetch: None,
            prefetch_degree: None,
            prefetch_mshr_cap: None,
            pe_lanes: None,
            mac_latency: None,
            mac_pipeline: false,
            lane_gating: false,
            metrics_interval: None,
            quiet: false,
            verbose: false,
        }
    }
}

impl BenchArgs {
    /// Parses `--scale N`, `--datasets CR,AP,...`, `--threads N` and
    /// `--audit` from an iterator of arguments (typically
    /// `std::env::args().skip(1)`).
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] describing the first malformed argument;
    /// nothing panics and no partial state escapes.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<BenchArgs, ArgError> {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--scale needs a node count"))?;
                    let n: usize = v.parse().map_err(|_| {
                        ArgError::new(format!("--scale needs an integer, got {v:?}"))
                    })?;
                    if n == 0 {
                        return Err(ArgError::new("--scale must be at least 1"));
                    }
                    out.scale = Some(n);
                }
                "--datasets" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--datasets needs a CR,AP,... list"))?;
                    out.datasets = parse_dataset_list(&v)?;
                }
                "--threads" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--threads needs a worker count"))?;
                    out.threads = v.parse().map_err(|_| {
                        ArgError::new(format!("--threads needs an integer, got {v:?}"))
                    })?;
                }
                "--audit" => out.audit = true,
                "--stalls" => out.stalls = true,
                "--scheduler" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--scheduler needs a core name"))?;
                    out.scheduler = SchedulerKind::parse(&v).ok_or_else(|| {
                        ArgError::new(format!("unknown scheduler {v:?} (stepped, event)"))
                    })?;
                }
                "--preset" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--preset needs a preset name"))?;
                    out.preset = Preset::parse(&v).ok_or_else(|| {
                        ArgError::new(format!("unknown preset {v:?} (default, tuned)"))
                    })?;
                }
                "--prefetch" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--prefetch needs a policy name"))?;
                    out.prefetch = Some(PrefetchPolicy::parse(&v).ok_or_else(|| {
                        ArgError::new(format!(
                            "unknown prefetch policy {v:?} (off, next-line, smq-stream)"
                        ))
                    })?);
                }
                "--prefetch-degree" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--prefetch-degree needs a line count"))?;
                    let n: usize = v.parse().map_err(|_| {
                        ArgError::new(format!("--prefetch-degree needs an integer, got {v:?}"))
                    })?;
                    if n == 0 {
                        return Err(ArgError::new("--prefetch-degree must be at least 1"));
                    }
                    out.prefetch_degree = Some(n);
                }
                "--prefetch-mshr-cap" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--prefetch-mshr-cap needs an MSHR count"))?;
                    let n: usize = v.parse().map_err(|_| {
                        ArgError::new(format!("--prefetch-mshr-cap needs an integer, got {v:?}"))
                    })?;
                    if n == 0 {
                        return Err(ArgError::new("--prefetch-mshr-cap must be at least 1"));
                    }
                    out.prefetch_mshr_cap = Some(n);
                }
                "--pe-lanes" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--pe-lanes needs a lane count"))?;
                    let n: usize = v.parse().map_err(|_| {
                        ArgError::new(format!("--pe-lanes needs an integer, got {v:?}"))
                    })?;
                    if n == 0 {
                        return Err(ArgError::new("--pe-lanes must be at least 1"));
                    }
                    out.pe_lanes = Some(n);
                }
                "--mac-latency" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--mac-latency needs a cycle count"))?;
                    let n: u64 = v.parse().map_err(|_| {
                        ArgError::new(format!("--mac-latency needs an integer, got {v:?}"))
                    })?;
                    if n == 0 {
                        return Err(ArgError::new("--mac-latency must be at least 1"));
                    }
                    out.mac_latency = Some(n);
                }
                "--mac-pipeline" => out.mac_pipeline = true,
                "--lane-gating" => out.lane_gating = true,
                "--metrics-interval" => {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::new("--metrics-interval needs a cycle count"))?;
                    let n: u64 = v.parse().map_err(|_| {
                        ArgError::new(format!(
                            "--metrics-interval needs a positive integer, got {v:?}"
                        ))
                    })?;
                    if n == 0 {
                        return Err(ArgError::new("--metrics-interval must be at least 1"));
                    }
                    out.metrics_interval = Some(n);
                }
                "--quiet" => out.quiet = true,
                "-v" | "--verbose" => out.verbose = true,
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => {
                    return Err(ArgError::new(format!(
                        "unknown argument {other:?} (try --help)"
                    )))
                }
            }
        }
        if out.quiet && out.verbose {
            return Err(ArgError::new(
                "--quiet and --verbose are mutually exclusive",
            ));
        }
        Ok(out)
    }

    /// Parses from the process arguments; on a malformed command line prints
    /// the error plus [`USAGE`] to stderr and exits with status 2. Also
    /// applies the `--quiet`/`--verbose` selection to the process-wide
    /// logger (see [`crate::log`]).
    pub fn from_env() -> BenchArgs {
        match BenchArgs::parse(std::env::args().skip(1)) {
            Ok(args) => {
                crate::log::set_level(args.log_level());
                args
            }
            Err(e) => exit_usage(&e),
        }
    }

    /// Logger level implied by the `--quiet`/`--verbose` flags.
    pub fn log_level(&self) -> crate::log::Level {
        if self.quiet {
            crate::log::Level::Quiet
        } else if self.verbose {
            crate::log::Level::Verbose
        } else {
            crate::log::Level::Progress
        }
    }

    /// Applies the `--prefetch*` options onto a memory configuration,
    /// leaving unset overrides at the config's (or active preset's) own
    /// defaults.
    pub fn apply_prefetch(&self, mem: &mut hymm_mem::MemConfig) {
        if let Some(p) = self.prefetch {
            mem.prefetch = p;
        }
        if let Some(d) = self.prefetch_degree {
            mem.prefetch_degree = d;
        }
        if let Some(k) = self.prefetch_mshr_cap {
            mem.prefetch_mshr_cap = k;
        }
    }

    /// Builds the full accelerator configuration these arguments describe:
    /// the preset applied over Table III, then every individual knob
    /// override on top (so explicit flags always win), plus the audit and
    /// scheduler selections. Shared by the suite runner and the standalone
    /// binaries so `--preset tuned` means the same thing everywhere.
    pub fn accelerator_config(&self) -> hymm_core::config::AcceleratorConfig {
        let mut config = hymm_core::config::AcceleratorConfig {
            audit: self.audit,
            scheduler: self.scheduler,
            ..hymm_core::config::AcceleratorConfig::default()
        };
        self.preset.apply(&mut config);
        self.apply_prefetch(&mut config.mem);
        self.apply_pe(&mut config);
        if let Some(every) = self.metrics_interval {
            config.metrics = Some(hymm_mem::metrics::MetricsConfig {
                sample_every: every,
                ..hymm_mem::metrics::MetricsConfig::default()
            });
        }
        config
    }

    /// Applies the `--pe-lanes`, `--mac-latency`, `--mac-pipeline` and
    /// `--lane-gating` options onto an accelerator configuration, leaving
    /// unset overrides at the config's own defaults.
    pub fn apply_pe(&self, config: &mut hymm_core::config::AcceleratorConfig) {
        if let Some(lanes) = self.pe_lanes {
            config.num_pes = lanes;
        }
        if let Some(latency) = self.mac_latency {
            config.mac_latency = latency;
        }
        if self.mac_pipeline {
            config.mac_pipelined = true;
        }
        if self.lane_gating {
            config.lane_gating = true;
        }
    }

    /// Resolved worker count: `--threads N`, with `0` (the default) mapped
    /// to the host's available parallelism.
    pub fn worker_threads(&self) -> usize {
        if self.threads == 0 {
            crate::pool::default_threads()
        } else {
            self.threads
        }
    }
}

/// Prints an argument error plus [`USAGE`] to stderr and exits with
/// status 2 — shared by every binary's entry point.
pub fn exit_usage(e: &ArgError) -> ! {
    eprintln!("error: {e}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Prints a runtime error (one that is not a command-line problem, so
/// [`USAGE`] would only add noise) to stderr and exits with status 2.
pub fn exit_fatal(e: &dyn fmt::Display) -> ! {
    eprintln!("error: {e}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Result<BenchArgs, ArgError> {
        BenchArgs::parse(items.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_to_full_scale_all_datasets() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, None);
        assert_eq!(a.datasets.len(), 7);
        assert!(!a.audit);
        assert!(!a.stalls);
    }

    #[test]
    fn parses_stalls_flag() {
        assert!(parse(&["--stalls"]).unwrap().stalls);
    }

    #[test]
    fn scheduler_defaults_to_event_and_parses_both_cores() {
        assert_eq!(parse(&[]).unwrap().scheduler, SchedulerKind::Event);
        for kind in [SchedulerKind::Stepped, SchedulerKind::Event] {
            let a = parse(&["--scheduler", kind.label()]).unwrap();
            assert_eq!(a.scheduler, kind);
        }
    }

    #[test]
    fn rejects_unknown_scheduler() {
        let e = parse(&["--scheduler", "calendar"]).unwrap_err();
        assert!(e.to_string().contains("unknown scheduler"), "{e}");
    }

    #[test]
    fn parses_scale() {
        assert_eq!(parse(&["--scale", "500"]).unwrap().scale, Some(500));
    }

    #[test]
    fn parses_threads() {
        assert_eq!(parse(&["--threads", "4"]).unwrap().threads, 4);
    }

    #[test]
    fn threads_defaults_to_auto() {
        assert_eq!(parse(&[]).unwrap().threads, 0);
    }

    #[test]
    fn parses_audit_flag() {
        assert!(parse(&["--audit"]).unwrap().audit);
    }

    #[test]
    fn rejects_non_numeric_threads() {
        let e = parse(&["--threads", "many"]).unwrap_err();
        assert!(e.to_string().contains("--threads needs an integer"), "{e}");
    }

    #[test]
    fn rejects_non_numeric_scale() {
        let e = parse(&["--scale", "big"]).unwrap_err();
        assert!(e.to_string().contains("--scale needs an integer"), "{e}");
    }

    #[test]
    fn rejects_zero_scale() {
        let e = parse(&["--scale", "0"]).unwrap_err();
        assert!(e.to_string().contains("at least 1"), "{e}");
    }

    #[test]
    fn rejects_missing_flag_value() {
        let e = parse(&["--scale"]).unwrap_err();
        assert!(e.to_string().contains("--scale needs a node count"), "{e}");
    }

    #[test]
    fn parses_dataset_filter() {
        let a = parse(&["--datasets", "cr,AP"]).unwrap();
        assert_eq!(a.datasets, vec![Dataset::Cora, Dataset::AmazonPhoto]);
    }

    #[test]
    fn rejects_unknown_dataset() {
        let e = parse(&["--datasets", "XX"]).unwrap_err();
        assert!(e.to_string().contains("unknown dataset"), "{e}");
    }

    #[test]
    fn rejects_unknown_flag() {
        let e = parse(&["--frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("unknown argument"), "{e}");
    }

    #[test]
    fn prefetch_defaults_to_unset_with_no_overrides() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.prefetch, None);
        assert_eq!(a.prefetch_degree, None);
        assert_eq!(a.prefetch_mshr_cap, None);
    }

    #[test]
    fn parses_each_prefetch_policy() {
        for policy in PrefetchPolicy::ALL {
            let a = parse(&["--prefetch", policy.label()]).unwrap();
            assert_eq!(a.prefetch, Some(policy));
        }
    }

    #[test]
    fn rejects_unknown_prefetch_policy() {
        let e = parse(&["--prefetch", "psychic"]).unwrap_err();
        assert!(e.to_string().contains("unknown prefetch policy"), "{e}");
    }

    #[test]
    fn parses_prefetch_degree_and_cap() {
        let a = parse(&[
            "--prefetch",
            "next-line",
            "--prefetch-degree",
            "4",
            "--prefetch-mshr-cap",
            "6",
        ])
        .unwrap();
        assert_eq!(a.prefetch_degree, Some(4));
        assert_eq!(a.prefetch_mshr_cap, Some(6));
    }

    #[test]
    fn rejects_zero_prefetch_degree_and_cap() {
        for flag in ["--prefetch-degree", "--prefetch-mshr-cap"] {
            let e = parse(&[flag, "0"]).unwrap_err();
            assert!(e.to_string().contains("at least 1"), "{flag}: {e}");
        }
    }

    #[test]
    fn pe_defaults_leave_accelerator_config_untouched() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.pe_lanes, None);
        assert_eq!(a.mac_latency, None);
        assert!(!a.mac_pipeline);
        assert!(!a.lane_gating);
        let mut config = hymm_core::config::AcceleratorConfig::default();
        let before = config.clone();
        a.apply_pe(&mut config);
        assert_eq!(config, before);
    }

    #[test]
    fn parses_pe_flags() {
        let a = parse(&[
            "--pe-lanes",
            "32",
            "--mac-latency",
            "4",
            "--mac-pipeline",
            "--lane-gating",
        ])
        .unwrap();
        assert_eq!(a.pe_lanes, Some(32));
        assert_eq!(a.mac_latency, Some(4));
        assert!(a.mac_pipeline);
        assert!(a.lane_gating);
    }

    #[test]
    fn pe_overrides_apply_onto_accelerator_config() {
        let mut config = hymm_core::config::AcceleratorConfig::default();
        parse(&["--pe-lanes", "8", "--mac-latency", "2", "--lane-gating"])
            .unwrap()
            .apply_pe(&mut config);
        assert_eq!(config.num_pes, 8);
        assert_eq!(config.mac_latency, 2);
        assert!(!config.mac_pipelined);
        assert!(config.lane_gating);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn rejects_zero_pe_lanes_and_latency() {
        for flag in ["--pe-lanes", "--mac-latency"] {
            let e = parse(&[flag, "0"]).unwrap_err();
            assert!(e.to_string().contains("at least 1"), "{flag}: {e}");
        }
    }

    #[test]
    fn prefetch_overrides_apply_onto_mem_config() {
        let mut mem = hymm_mem::MemConfig::default();
        let defaults = (mem.prefetch_degree, mem.prefetch_mshr_cap);
        parse(&["--prefetch", "smq-stream"])
            .unwrap()
            .apply_prefetch(&mut mem);
        assert_eq!(mem.prefetch, PrefetchPolicy::SmqStream);
        assert_eq!((mem.prefetch_degree, mem.prefetch_mshr_cap), defaults);
        // An unset --prefetch leaves the policy alone (so a preset's choice
        // survives) while degree/cap overrides still land.
        parse(&["--prefetch-degree", "3", "--prefetch-mshr-cap", "2"])
            .unwrap()
            .apply_prefetch(&mut mem);
        assert_eq!(mem.prefetch, PrefetchPolicy::SmqStream);
        assert_eq!(mem.prefetch_degree, 3);
        assert_eq!(mem.prefetch_mshr_cap, 2);
    }

    #[test]
    fn metrics_interval_defaults_off_and_parses() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.metrics_interval, None);
        assert_eq!(a.accelerator_config().metrics, None);
        let a = parse(&["--metrics-interval", "2048"]).unwrap();
        assert_eq!(a.metrics_interval, Some(2048));
        let config = a.accelerator_config();
        let m = config.metrics.expect("sampling enabled");
        assert_eq!(m.sample_every, 2048);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn rejects_zero_or_negative_metrics_interval() {
        // Zero at parse time, negative via the unsigned grammar; both land
        // before any config is built, matching the PR 7/8 knob pattern
        // (AcceleratorConfig::validate rejects the same values with
        // SparseError::InvalidConfig for non-CLI construction).
        let e = parse(&["--metrics-interval", "0"]).unwrap_err();
        assert!(e.to_string().contains("at least 1"), "{e}");
        let e = parse(&["--metrics-interval", "-5"]).unwrap_err();
        assert!(e.to_string().contains("positive integer"), "{e}");
        let e = parse(&["--metrics-interval"]).unwrap_err();
        assert!(e.to_string().contains("needs a cycle count"), "{e}");
    }

    #[test]
    fn log_flags_parse_and_map_to_levels() {
        use crate::log::Level;
        assert_eq!(parse(&[]).unwrap().log_level(), Level::Progress);
        assert_eq!(parse(&["--quiet"]).unwrap().log_level(), Level::Quiet);
        assert_eq!(parse(&["-v"]).unwrap().log_level(), Level::Verbose);
        assert_eq!(parse(&["--verbose"]).unwrap().log_level(), Level::Verbose);
        let e = parse(&["--quiet", "-v"]).unwrap_err();
        assert!(e.to_string().contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn preset_defaults_to_table_iii_and_parses_tuned() {
        assert_eq!(parse(&[]).unwrap().preset, Preset::Default);
        assert_eq!(parse(&["--preset", "tuned"]).unwrap().preset, Preset::Tuned);
        let e = parse(&["--preset", "mystery"]).unwrap_err();
        assert!(e.to_string().contains("unknown preset"), "{e}");
    }

    #[test]
    fn accelerator_config_applies_preset_under_explicit_flags() {
        // Preset alone: the tuned configuration lands as-is.
        let tuned = parse(&["--preset", "tuned"]).unwrap().accelerator_config();
        let mut expect = hymm_core::config::AcceleratorConfig::default();
        Preset::Tuned.apply(&mut expect);
        assert_eq!(tuned, expect);
        assert!(tuned.validate().is_ok());
        // Explicit flags win over the preset's choices.
        let overridden = parse(&["--preset", "tuned", "--prefetch", "off", "--pe-lanes", "16"])
            .unwrap()
            .accelerator_config();
        assert_eq!(overridden.mem.prefetch, PrefetchPolicy::Off);
        assert_eq!(overridden.num_pes, 16);
    }
}
