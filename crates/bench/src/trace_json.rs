//! Chrome-trace/Perfetto export of simulator event traces.
//!
//! [`chrome_trace`] serialises one or more labelled [`TraceData`]s (one per
//! dataflow run) into a single Chrome-trace JSON document — loadable in
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) — with each
//! run as its own process and each event [`Track`] as a named thread:
//!
//! - phases and DRAM channel occupancy become duration (`"ph": "X"`) slices;
//! - DMB accesses become slices spanning request → data-ready (hits, with
//!   zero latency span, become instants);
//! - MSHR occupancy and LSQ queue depth become counter (`"ph": "C"`) tracks;
//! - prefetch issues become slices spanning issue → fill on their own
//!   `prefetch` thread;
//! - everything else (evictions, MSHR stalls, SMQ fetches, prefetch
//!   fills/drops/late hits) becomes instant (`"ph": "i"`) events.
//!
//! The document also carries a non-standard top-level `hymmHistograms`
//! object ([`histograms`]: MSHR occupancy, read-miss latency, LSQ queue
//! depth), which trace viewers ignore.
//!
//! [`validate_chrome_trace`] is a small, dependency-free JSON reader used by
//! the CI smoke check: it parses the whole document and verifies every
//! trace event carries a string `ph` and a numeric `ts`.

use crate::json::{esc, parse_json, Json};
use hymm_core::trace::{AccessClass, LsqOpKind, TraceData, TraceKind, Track};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Thread id of a track inside its run's process.
fn track_tid(track: Track) -> u32 {
    match track {
        Track::Phase => 0,
        Track::DmbRead => 1,
        Track::DmbWrite => 2,
        Track::MshrRetire => 3,
        Track::Lsq => 4,
        Track::Prefetch => 5,
        Track::DramChannel(c) => 10 + c as u32,
        Track::Smq(s) => 100 + s as u32,
    }
}

/// Human-readable thread name of a track.
fn track_label(track: Track) -> String {
    match track {
        Track::Phase => "phases".into(),
        Track::DmbRead => "dmb-read-port".into(),
        Track::DmbWrite => "dmb-write-port".into(),
        Track::MshrRetire => "mshr-retire".into(),
        Track::Lsq => "lsq".into(),
        Track::Prefetch => "prefetch".into(),
        Track::DramChannel(c) => format!("dram-ch{c}"),
        Track::Smq(s) => format!("smq-{s}"),
    }
}

fn access_label(class: AccessClass) -> &'static str {
    match class {
        AccessClass::ReadHit => "read-hit",
        AccessClass::ReadMissFill => "read-miss-fill",
        AccessClass::ReadMissMerge => "read-miss-merge",
        AccessClass::WriteHit => "write-hit",
        AccessClass::WriteMissAlloc => "write-miss-alloc",
        AccessClass::WriteMissBypass => "write-miss-bypass",
    }
}

fn lsq_label(op: LsqOpKind) -> &'static str {
    match op {
        LsqOpKind::Load => "lsq-load",
        LsqOpKind::LoadForwarded => "lsq-forward",
        LsqOpKind::Store => "lsq-store",
    }
}

/// Appends one event object; `extra` is raw JSON appended after the common
/// fields (either empty or beginning with a comma).
fn push_event(events: &mut Vec<String>, name: &str, ph: &str, ts: u64, pid: usize, extra: String) {
    events.push(format!(
        "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid}{extra}}}",
        esc(name)
    ));
}

/// Serialises labelled traces into one Chrome-trace JSON document.
///
/// Every `(label, trace)` pair becomes one process (pid = slice index) whose
/// tracks appear as named threads; see the module docs for the event
/// mapping. Timestamps are simulated cycles reported as microseconds (the
/// format's native unit), so viewer durations read directly as cycles.
pub fn chrome_trace(runs: &[(String, &TraceData)]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, (label, trace)) in runs.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(label)
        ));
        let mut tracks_seen: BTreeMap<u32, Track> = BTreeMap::new();
        for e in &trace.events {
            tracks_seen.entry(track_tid(e.track)).or_insert(e.track);
        }
        for (tid, track) in &tracks_seen {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                esc(&track_label(*track))
            ));
        }

        // Open phase begins awaiting their end event (paired by name).
        let mut open_phases: Vec<(&'static str, u64)> = Vec::new();
        for e in &trace.events {
            let tid = track_tid(e.track);
            match e.kind {
                TraceKind::PhaseBegin { name } => open_phases.push((name, e.ts)),
                TraceKind::PhaseEnd { name } => {
                    let Some(pos) = open_phases.iter().rposition(|(n, _)| *n == name) else {
                        continue;
                    };
                    let (_, begin) = open_phases.remove(pos);
                    push_event(
                        &mut events,
                        name,
                        "X",
                        begin,
                        pid,
                        format!(",\"dur\":{},\"tid\":{tid}", e.ts.saturating_sub(begin)),
                    );
                }
                TraceKind::DmbAccess { addr, class, ready } => {
                    let dur = ready.saturating_sub(e.ts);
                    let args = format!(
                        ",\"tid\":{tid},\"args\":{{\"kind\":\"{}\",\"line\":{}}}",
                        addr.kind.label(),
                        addr.index
                    );
                    if dur > 0 {
                        push_event(
                            &mut events,
                            access_label(class),
                            "X",
                            e.ts,
                            pid,
                            format!(",\"dur\":{dur}{args}"),
                        );
                    } else {
                        push_event(
                            &mut events,
                            access_label(class),
                            "i",
                            e.ts,
                            pid,
                            format!(",\"s\":\"t\"{args}"),
                        );
                    }
                }
                TraceKind::DmbEvict { addr, dirty } => push_event(
                    &mut events,
                    if dirty { "evict-dirty" } else { "evict" },
                    "i",
                    e.ts,
                    pid,
                    format!(
                        ",\"s\":\"t\",\"tid\":{tid},\"args\":{{\"kind\":\"{}\",\"line\":{}}}",
                        addr.kind.label(),
                        addr.index
                    ),
                ),
                TraceKind::MshrAllocate { occupancy, .. }
                | TraceKind::MshrRetire { occupancy, .. } => push_event(
                    &mut events,
                    "mshr-occupancy",
                    "C",
                    e.ts,
                    pid,
                    format!(",\"args\":{{\"mshrs\":{occupancy}}}"),
                ),
                TraceKind::MshrStall { waited } => push_event(
                    &mut events,
                    "mshr-stall",
                    "i",
                    e.ts,
                    pid,
                    format!(",\"s\":\"t\",\"tid\":{tid},\"args\":{{\"waited\":{waited}}}"),
                ),
                TraceKind::DramBusy {
                    kind,
                    bytes,
                    is_write,
                } => push_event(
                    &mut events,
                    if is_write { "dram-write" } else { "dram-read" },
                    "X",
                    e.ts,
                    pid,
                    format!(
                        ",\"dur\":{},\"tid\":{tid},\"args\":{{\"kind\":\"{}\",\"bytes\":{bytes}}}",
                        e.dur,
                        kind.label()
                    ),
                ),
                TraceKind::LsqOp { op, occupancy } => {
                    push_event(
                        &mut events,
                        lsq_label(op),
                        "i",
                        e.ts,
                        pid,
                        format!(",\"s\":\"t\",\"tid\":{tid}"),
                    );
                    push_event(
                        &mut events,
                        "lsq-depth",
                        "C",
                        e.ts,
                        pid,
                        format!(",\"args\":{{\"entries\":{occupancy}}}"),
                    );
                }
                TraceKind::PrefetchIssue { addr, ready } => push_event(
                    &mut events,
                    "prefetch-issue",
                    "X",
                    e.ts,
                    pid,
                    format!(
                        ",\"dur\":{},\"tid\":{tid},\"args\":{{\"kind\":\"{}\",\"line\":{}}}",
                        ready.saturating_sub(e.ts),
                        addr.kind.label(),
                        addr.index
                    ),
                ),
                TraceKind::PrefetchFill { addr } => push_event(
                    &mut events,
                    "prefetch-fill",
                    "i",
                    e.ts,
                    pid,
                    format!(
                        ",\"s\":\"t\",\"tid\":{tid},\"args\":{{\"kind\":\"{}\",\"line\":{}}}",
                        addr.kind.label(),
                        addr.index
                    ),
                ),
                TraceKind::PrefetchDropped { addr, reason } => push_event(
                    &mut events,
                    "prefetch-drop",
                    "i",
                    e.ts,
                    pid,
                    format!(
                        ",\"s\":\"t\",\"tid\":{tid},\"args\":{{\"kind\":\"{}\",\"line\":{},\
                         \"reason\":\"{}\"}}",
                        addr.kind.label(),
                        addr.index,
                        reason.label()
                    ),
                ),
                TraceKind::PrefetchLate { addr, waited } => push_event(
                    &mut events,
                    "prefetch-late",
                    "i",
                    e.ts,
                    pid,
                    format!(
                        ",\"s\":\"t\",\"tid\":{tid},\"args\":{{\"kind\":\"{}\",\"line\":{},\
                         \"waited\":{waited}}}",
                        addr.kind.label(),
                        addr.index
                    ),
                ),
                TraceKind::SmqFetch { kind, ready } => push_event(
                    &mut events,
                    "smq-fetch",
                    "i",
                    e.ts,
                    pid,
                    format!(
                        ",\"s\":\"t\",\"tid\":{tid},\"args\":{{\"kind\":\"{}\",\"ready\":{ready}}}",
                        kind.label()
                    ),
                ),
            }
        }
    }

    let histograms: Vec<String> = runs
        .iter()
        .map(|(label, trace)| {
            let hs: Vec<String> = histograms(trace)
                .into_iter()
                .map(|h| {
                    let buckets: Vec<String> = h
                        .buckets
                        .iter()
                        .map(|(lo, count)| format!("[{lo},{count}]"))
                        .collect();
                    format!("\"{}\":[{}]", h.name, buckets.join(","))
                })
                .collect();
            format!("\"{}\":{{{}}}", esc(label), hs.join(","))
        })
        .collect();

    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\"hymmHistograms\":{{{}}}}}\n",
        events.join(",\n"),
        histograms.join(",")
    )
}

/// One histogram: sorted `(bucket lower bound, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Stable metric name.
    pub name: &'static str,
    /// Sorted `(bucket lower bound, count)` pairs; occupancy metrics use
    /// exact-value buckets, latency metrics power-of-two buckets.
    pub buckets: Vec<(u64, u64)>,
}

/// Lower bound of the power-of-two bucket containing `v`.
fn pow2_bucket(v: u64) -> u64 {
    if v <= 1 {
        v
    } else {
        1 << (63 - v.leading_zeros())
    }
}

/// Computes the three latency/occupancy histograms from a trace: MSHR
/// occupancy at allocate/retire, DMB read-miss latency (request to data
/// ready, power-of-two buckets), and LSQ queue depth at each operation.
pub fn histograms(trace: &TraceData) -> Vec<Histogram> {
    let mut mshr: BTreeMap<u64, u64> = BTreeMap::new();
    let mut miss: BTreeMap<u64, u64> = BTreeMap::new();
    let mut lsq: BTreeMap<u64, u64> = BTreeMap::new();
    for e in &trace.events {
        match e.kind {
            TraceKind::MshrAllocate { occupancy, .. } | TraceKind::MshrRetire { occupancy, .. } => {
                *mshr.entry(occupancy as u64).or_default() += 1;
            }
            TraceKind::DmbAccess {
                class: AccessClass::ReadMissFill | AccessClass::ReadMissMerge,
                ready,
                ..
            } => {
                *miss
                    .entry(pow2_bucket(ready.saturating_sub(e.ts)))
                    .or_default() += 1;
            }
            TraceKind::LsqOp { occupancy, .. } => {
                *lsq.entry(occupancy as u64).or_default() += 1;
            }
            _ => {}
        }
    }
    let collect = |name, m: BTreeMap<u64, u64>| Histogram {
        name,
        buckets: m.into_iter().collect(),
    };
    vec![
        collect("mshr-occupancy", mshr),
        collect("miss-latency", miss),
        collect("lsq-depth", lsq),
    ]
}

// ---------------------------------------------------------------------------
// Trace diffing (the `trace_diff` binary).

/// Summary of a chrome-trace document for diffing: total per-phase durations
/// and the embedded `hymmHistograms`, both keyed `"run/name"` in document
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// `(run/phase, total duration in cycles)`, first-seen order.
    pub phases: Vec<(String, f64)>,
    /// `(run/metric, sorted (bucket lower bound, count) pairs)`.
    pub histograms: Vec<(String, Vec<(u64, u64)>)>,
}

/// Parses a document written by [`chrome_trace`] into a [`TraceSummary`].
///
/// Phase slices are recognised as complete (`"ph": "X"`) events on thread 0
/// — the `phases` track — of any process; their durations are summed per
/// `(process, name)` pair.
///
/// # Errors
///
/// Returns a description of the first malformed construct, or of a missing
/// `traceEvents` array.
pub fn summarize_trace(src: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(src)?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("missing top-level \"traceEvents\" array".into());
    };

    // pid → process name, from the metadata events.
    let mut run_names: BTreeMap<u64, String> = BTreeMap::new();
    for e in events {
        if e.get("name") == Some(&Json::Str("process_name".into())) {
            if let (Some(Json::Num(pid)), Some(Json::Str(name))) =
                (e.get("pid"), e.get("args").and_then(|a| a.get("name")))
            {
                run_names.insert(*pid as u64, name.clone());
            }
        }
    }
    let run_of = |e: &Json| -> String {
        match e.get("pid") {
            Some(Json::Num(pid)) => run_names
                .get(&(*pid as u64))
                .cloned()
                .unwrap_or_else(|| format!("pid{pid}")),
            _ => "?".into(),
        }
    };

    let mut phases: Vec<(String, f64)> = Vec::new();
    for e in events {
        let is_phase_slice = e.get("ph") == Some(&Json::Str("X".into()))
            && matches!(e.get("tid"), Some(Json::Num(t)) if *t == 0.0);
        if !is_phase_slice {
            continue;
        }
        let (Some(Json::Str(name)), Some(Json::Num(dur))) = (e.get("name"), e.get("dur")) else {
            continue;
        };
        let key = format!("{}/{}", run_of(e), name);
        match phases.iter_mut().find(|(k, _)| *k == key) {
            Some((_, total)) => *total += dur,
            None => phases.push((key, *dur)),
        }
    }

    let mut histograms: Vec<(String, Vec<(u64, u64)>)> = Vec::new();
    if let Some(Json::Obj(runs)) = doc.get("hymmHistograms") {
        for (run, metrics) in runs {
            let Json::Obj(metrics) = metrics else {
                continue;
            };
            for (metric, buckets) in metrics {
                let Json::Arr(buckets) = buckets else {
                    continue;
                };
                let pairs: Vec<(u64, u64)> = buckets
                    .iter()
                    .filter_map(|b| match b {
                        Json::Arr(pair) => match pair.as_slice() {
                            [Json::Num(lo), Json::Num(count)] => Some((*lo as u64, *count as u64)),
                            _ => None,
                        },
                        _ => None,
                    })
                    .collect();
                histograms.push((format!("{run}/{metric}"), pairs));
            }
        }
    }

    Ok(TraceSummary { phases, histograms })
}

/// Count-weighted mean of a histogram's bucket lower bounds.
fn hist_mean(buckets: &[(u64, u64)]) -> f64 {
    let n: u64 = buckets.iter().map(|(_, c)| c).sum();
    if n == 0 {
        return 0.0;
    }
    buckets.iter().map(|(lo, c)| (lo * c) as f64).sum::<f64>() / n as f64
}

/// Renders the phase-duration deltas and histogram shifts between two trace
/// summaries as an aligned plain-text table. Keys missing on either side
/// are reported with a `-` placeholder; durations in B relative to A.
pub fn diff_table(a: &TraceSummary, b: &TraceSummary) -> String {
    let mut out = String::new();
    let fmt_delta = |x: f64, y: f64| -> String {
        let delta = y - x;
        if x != 0.0 {
            format!("{delta:+14.0} {:+9.1}%", 100.0 * delta / x)
        } else {
            format!("{delta:+14.0}          ")
        }
    };

    let _ = writeln!(
        out,
        "{:<28} {:>14} {:>14} {:>14} {:>10}",
        "phase", "A cycles", "B cycles", "delta", "delta%"
    );
    let mut keys: Vec<&String> = a.phases.iter().map(|(k, _)| k).collect();
    for (k, _) in &b.phases {
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let lookup = |s: &TraceSummary, k: &str| -> Option<f64> {
        s.phases.iter().find(|(n, _)| n == k).map(|(_, d)| *d)
    };
    for k in keys {
        let (x, y) = (lookup(a, k), lookup(b, k));
        let _ = match (x, y) {
            (Some(x), Some(y)) => writeln!(out, "{k:<28} {x:>14.0} {y:>14.0} {}", fmt_delta(x, y)),
            (Some(x), None) => {
                writeln!(out, "{k:<28} {x:>14.0} {:>14} {:>14} {:>10}", "-", "-", "-")
            }
            (None, Some(y)) => {
                writeln!(out, "{k:<28} {:>14} {y:>14.0} {:>14} {:>10}", "-", "-", "-")
            }
            (None, None) => Ok(()),
        };
    }

    let _ = writeln!(
        out,
        "\n{:<28} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "histogram", "A samples", "B samples", "A mean", "B mean", "shift"
    );
    let mut keys: Vec<&String> = a.histograms.iter().map(|(k, _)| k).collect();
    for (k, _) in &b.histograms {
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    fn lookup_hist<'a>(s: &'a TraceSummary, k: &str) -> Option<&'a Vec<(u64, u64)>> {
        s.histograms.iter().find(|(n, _)| n == k).map(|(_, h)| h)
    }
    let lookup = lookup_hist;
    for k in keys {
        let (x, y) = (lookup(a, k), lookup(b, k));
        let count = |h: Option<&Vec<(u64, u64)>>| -> u64 {
            h.map_or(0, |h| h.iter().map(|(_, c)| c).sum())
        };
        let mean = |h: Option<&Vec<(u64, u64)>>| -> f64 { h.map_or(0.0, |h| hist_mean(h)) };
        let (ma, mb) = (mean(x), mean(y));
        let _ = writeln!(
            out,
            "{k:<28} {:>10} {:>10} {ma:>12.2} {mb:>12.2} {:>+10.2}",
            count(x),
            count(y),
            mb - ma
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Validating JSON reader (CI smoke check). The parser itself lives in
// [`crate::json`], shared with the metrics sidecar validator, the
// perf-regression gate and the `hymm-serve` protocol.

/// Validates a Chrome-trace document: the JSON must parse completely, carry
/// a `traceEvents` array, and every event must be an object with a
/// non-empty string `ph` and a finite numeric `ts`. Returns the event count.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn validate_chrome_trace(src: &str) -> Result<usize, String> {
    let doc = parse_json(src)?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("missing top-level \"traceEvents\" array".into());
    };
    for (i, e) in events.iter().enumerate() {
        match e.get("ph") {
            Some(Json::Str(ph)) if !ph.is_empty() => {}
            other => return Err(format!("event {i}: bad \"ph\" field: {other:?}")),
        }
        match e.get("ts") {
            Some(Json::Num(_)) => {}
            other => return Err(format!("event {i}: bad \"ts\" field: {other:?}")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymm_core::trace::TraceEvent;
    use hymm_mem::{LineAddr, MatrixKind};

    fn ev(track: Track, kind: TraceKind, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            track,
            kind,
            ts,
            dur,
        }
    }

    fn sample() -> TraceData {
        let mut t = TraceData::new();
        let addr = LineAddr::new(MatrixKind::Combination, 3);
        t.events.extend([
            ev(Track::Phase, TraceKind::PhaseBegin { name: "comb" }, 0, 0),
            ev(
                Track::DmbRead,
                TraceKind::MshrAllocate {
                    addr,
                    occupancy: 1,
                    ready: 104,
                },
                2,
                0,
            ),
            ev(
                Track::DmbRead,
                TraceKind::DmbAccess {
                    addr,
                    class: AccessClass::ReadMissFill,
                    ready: 104,
                },
                2,
                0,
            ),
            ev(
                Track::DramChannel(0),
                TraceKind::DramBusy {
                    kind: MatrixKind::Combination,
                    bytes: 64,
                    is_write: false,
                },
                2,
                1,
            ),
            ev(
                Track::Lsq,
                TraceKind::LsqOp {
                    op: LsqOpKind::Store,
                    occupancy: 1,
                },
                5,
                0,
            ),
            ev(
                Track::Smq(0),
                TraceKind::SmqFetch {
                    kind: MatrixKind::SparseA,
                    ready: 7,
                },
                6,
                0,
            ),
            ev(Track::Phase, TraceKind::PhaseEnd { name: "comb" }, 110, 0),
        ]);
        t
    }

    #[test]
    fn exported_trace_is_valid_and_named() {
        let data = sample();
        let json = chrome_trace(&[("HyMM".into(), &data)]);
        let n = validate_chrome_trace(&json).expect("valid chrome trace");
        assert!(
            n >= data.events.len(),
            "expected at least one JSON event per trace event"
        );
        for needle in [
            "\"comb\"",
            "read-miss-fill",
            "dram-read",
            "mshr-occupancy",
            "lsq-depth",
            "smq-fetch",
            "process_name",
            "hymmHistograms",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn phase_pairs_become_complete_events() {
        let data = sample();
        let json = chrome_trace(&[("x".into(), &data)]);
        // The phase slice spans begin → end.
        assert!(
            json.contains("{\"name\":\"comb\",\"ph\":\"X\",\"ts\":0,\"pid\":0,\"dur\":110"),
            "{json}"
        );
    }

    #[test]
    fn histograms_bucket_latency_by_power_of_two() {
        let data = sample();
        let hs = histograms(&data);
        assert_eq!(hs.len(), 3);
        let miss = hs.iter().find(|h| h.name == "miss-latency").unwrap();
        // latency 102 lands in the [64, 128) bucket
        assert_eq!(miss.buckets, vec![(64, 1)]);
        let mshr = hs.iter().find(|h| h.name == "mshr-occupancy").unwrap();
        assert_eq!(mshr.buckets, vec![(1, 1)]);
    }

    #[test]
    fn pow2_buckets_are_stable() {
        assert_eq!(pow2_bucket(0), 0);
        assert_eq!(pow2_bucket(1), 1);
        assert_eq!(pow2_bucket(2), 2);
        assert_eq!(pow2_bucket(3), 2);
        assert_eq!(pow2_bucket(64), 64);
        assert_eq!(pow2_bucket(127), 64);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{").is_err());
        assert!(validate_chrome_trace("{\"x\": 1}").is_err());
        // ph present but not a string
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":1,\"ts\":0}]}").is_err());
        // ts missing
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert_eq!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0}]}"),
            Ok(1)
        );
    }

    #[test]
    fn summary_extracts_phases_and_histograms() {
        let data = sample();
        let json = chrome_trace(&[("HyMM".into(), &data)]);
        let s = summarize_trace(&json).expect("summarizable");
        assert_eq!(s.phases, vec![("HyMM/comb".to_string(), 110.0)]);
        let miss = s
            .histograms
            .iter()
            .find(|(k, _)| k == "HyMM/miss-latency")
            .expect("miss-latency histogram present");
        assert_eq!(miss.1, vec![(64, 1)]);
    }

    #[test]
    fn diff_table_reports_phase_deltas_and_mean_shifts() {
        let a = TraceSummary {
            phases: vec![("OP/comb".into(), 100.0), ("OP/agg".into(), 50.0)],
            histograms: vec![("OP/miss-latency".into(), vec![(64, 2), (128, 2)])],
        };
        let b = TraceSummary {
            phases: vec![("OP/comb".into(), 80.0)],
            histograms: vec![("OP/miss-latency".into(), vec![(64, 4)])],
        };
        let table = diff_table(&a, &b);
        // comb: 100 → 80 is a -20 cycle, -20% shift.
        assert!(table.contains("OP/comb"), "{table}");
        assert!(table.contains("-20.0%"), "{table}");
        // agg only exists in A → placeholder row.
        assert!(table.contains("OP/agg"), "{table}");
        // miss-latency mean drops from 96 to 64.
        assert!(table.contains("-32.00"), "{table}");
    }

    #[test]
    fn validator_handles_escapes_and_nesting() {
        let src = "{\"traceEvents\":[{\"ph\":\"i\",\"ts\":1.5e2,\
                   \"args\":{\"k\":[null,true,\"a\\\\\\\"b\\u0041\"]}}]}";
        assert_eq!(validate_chrome_trace(src), Ok(1));
        assert!(validate_chrome_trace("{\"traceEvents\":[]} junk").is_err());
    }
}
