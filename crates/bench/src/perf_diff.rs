//! Noise-aware comparison of two `BENCH_host.json` reports — the perf
//! regression gate.
//!
//! [`diff_reports`] extracts the comparable fields from two reports written
//! by the `perf_report` binary and classifies every delta into one of three
//! metric families, each with its own percentage tolerance:
//!
//! - **seconds** (lower is better, noisy): `serial_seconds`,
//!   `parallel_seconds`, every `per_dataset_serial_seconds` entry and the
//!   `serve` section's latency quantiles (`serve.p50_ms` …
//!   `serve.warm_ms`). Wall clock on a shared host jitters even with
//!   min-of-5 sampling, so this family's tolerance should stay generous.
//! - **throughput** (higher is better, noisy): `sim_cycles_per_second`
//!   and `serve.throughput_rps`.
//! - **cycles** (lower is better, deterministic): `sim_cycles_total` and
//!   the per-dataflow `stall_cycles` totals. These are exact simulator
//!   outputs; any drift is a real behaviour change, so the tolerance can
//!   be tight — it exists only to absorb deliberate config/suite changes
//!   that land with a re-baselined report.
//!
//! A field present in only one report is reported as `skipped` (reports
//! from different code generations legitimately differ in shape) and never
//! fails the gate; only a tolerance-exceeding move in the regressing
//! direction does. The `perf_diff` binary renders the table and exits
//! non-zero when [`PerfDiff::has_regression`] holds.

use crate::json::{parse_json, Json};
use std::fmt::Write as _;

/// Metric family, deciding the tolerance and the regressing direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Wall-clock seconds; lower is better, host-noisy.
    Seconds,
    /// Simulated cycles; lower is better, deterministic.
    Cycles,
    /// Simulated cycles per wall-clock second; higher is better, noisy.
    Throughput,
}

impl Family {
    /// Stable label used in the rendered table.
    pub fn label(self) -> &'static str {
        match self {
            Family::Seconds => "seconds",
            Family::Cycles => "cycles",
            Family::Throughput => "throughput",
        }
    }
}

/// Per-family percentage tolerances. A move is a regression only when it
/// exceeds the family's tolerance in the regressing direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Allowed increase in the seconds family, percent.
    pub seconds_pct: f64,
    /// Allowed increase in the cycles family, percent.
    pub cycles_pct: f64,
    /// Allowed decrease in the throughput family, percent.
    pub throughput_pct: f64,
}

impl Default for Tolerances {
    /// Generous defaults for shared-host CI: wall-clock families absorb
    /// 50% of noise, the deterministic cycles family 5%.
    fn default() -> Self {
        Tolerances {
            seconds_pct: 50.0,
            cycles_pct: 5.0,
            throughput_pct: 50.0,
        }
    }
}

impl Tolerances {
    /// The tolerance applying to one family.
    pub fn for_family(&self, family: Family) -> f64 {
        match family {
            Family::Seconds => self.seconds_pct,
            Family::Cycles => self.cycles_pct,
            Family::Throughput => self.throughput_pct,
        }
    }

    /// Rejects negative or non-finite tolerances.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending value.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("--tol-seconds", self.seconds_pct),
            ("--tol-cycles", self.cycles_pct),
            ("--tol-throughput", self.throughput_pct),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be a non-negative percentage, got {v}"));
            }
        }
        Ok(())
    }
}

/// One compared field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDiff {
    /// Dotted field path (`serial_seconds`, `stall_cycles.HyMM`, ...).
    pub name: String,
    /// Which tolerance / direction applies.
    pub family: Family,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub new: f64,
    /// Signed percent change relative to the baseline (`0` when the
    /// baseline is zero and the candidate is too).
    pub change_pct: f64,
    /// Whether the move exceeds the family tolerance in the regressing
    /// direction.
    pub regressed: bool,
}

/// Result of comparing two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfDiff {
    /// Every field present in both reports, in extraction order.
    pub fields: Vec<FieldDiff>,
    /// Fields present in only one report (shape drift), never failing.
    pub skipped: Vec<String>,
    /// The tolerances the verdicts were computed with.
    pub tolerances: Tolerances,
}

impl PerfDiff {
    /// True when any compared field regressed beyond its tolerance.
    pub fn has_regression(&self) -> bool {
        self.fields.iter().any(|f| f.regressed)
    }

    /// Renders the comparison as an aligned plain-text table, regressions
    /// marked with `REGRESSED`, plus a skipped-fields footer.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<36} {:<11} {:>14} {:>14} {:>9}  verdict",
            "field", "family", "baseline", "candidate", "delta%"
        );
        for f in &self.fields {
            let tol = self.tolerances.for_family(f.family);
            let verdict = if f.regressed {
                format!("REGRESSED (tol {tol}%)")
            } else {
                "ok".to_string()
            };
            let _ = writeln!(
                out,
                "{:<36} {:<11} {:>14.3} {:>14.3} {:>+9.2}  {verdict}",
                f.name,
                f.family.label(),
                f.base,
                f.new,
                f.change_pct
            );
        }
        for name in &self.skipped {
            let _ = writeln!(out, "{name:<36} skipped (present in only one report)");
        }
        out
    }
}

/// The comparable fields of one parsed report: `(path, family, value)`.
fn extract(doc: &Json) -> Vec<(String, Family, f64)> {
    let mut out = Vec::new();
    let mut scalar = |name: &str, family: Family| {
        if let Some(Json::Num(v)) = doc.get(name) {
            out.push((name.to_string(), family, *v));
        }
    };
    scalar("serial_seconds", Family::Seconds);
    scalar("parallel_seconds", Family::Seconds);
    scalar("sim_cycles_total", Family::Cycles);
    scalar("sim_cycles_per_second", Family::Throughput);
    if let Some(Json::Obj(per)) = doc.get("per_dataset_serial_seconds") {
        for (ds, v) in per {
            if let Json::Num(v) = v {
                out.push((
                    format!("per_dataset_serial_seconds.{ds}"),
                    Family::Seconds,
                    *v,
                ));
            }
        }
    }
    if let Some(serve) = doc.get("serve") {
        // The hymm-serve load-generator section: latencies are wall clock
        // (noisy, generous tolerance via the seconds family), throughput
        // likewise. Counters (cache hits, coalesces) are workload-shape
        // facts, not performance, and are deliberately not compared.
        for name in [
            "p50_ms", "p95_ms", "p99_ms", "mean_ms", "cold_ms", "warm_ms",
        ] {
            if let Some(Json::Num(v)) = serve.get(name) {
                out.push((format!("serve.{name}"), Family::Seconds, *v));
            }
        }
        if let Some(Json::Num(v)) = serve.get("throughput_rps") {
            out.push(("serve.throughput_rps".to_string(), Family::Throughput, *v));
        }
    }
    if let Some(Json::Obj(per_dataflow)) = doc.get("stall_cycles") {
        for (dataflow, classes) in per_dataflow {
            let Json::Obj(classes) = classes else {
                continue;
            };
            let total: f64 = classes
                .iter()
                .filter_map(|(_, v)| match v {
                    Json::Num(v) => Some(*v),
                    _ => None,
                })
                .sum();
            out.push((format!("stall_cycles.{dataflow}"), Family::Cycles, total));
        }
    }
    out
}

/// Percent change of `new` relative to `base`, `0` when both are zero and
/// `±inf`-free (a zero baseline with a nonzero candidate reports 100%).
fn pct(base: f64, new: f64) -> f64 {
    if base != 0.0 {
        100.0 * (new - base) / base
    } else if new == 0.0 {
        0.0
    } else {
        100.0 * new.signum()
    }
}

/// Compares two `BENCH_host.json` documents.
///
/// # Errors
///
/// Returns a description of the first malformed construct in either
/// document, or of invalid tolerances.
pub fn diff_reports(base_src: &str, new_src: &str, tol: Tolerances) -> Result<PerfDiff, String> {
    tol.validate()?;
    let base = parse_json(base_src).map_err(|e| format!("baseline: {e}"))?;
    let new = parse_json(new_src).map_err(|e| format!("candidate: {e}"))?;
    let base_fields = extract(&base);
    let new_fields = extract(&new);

    let mut fields = Vec::new();
    let mut skipped = Vec::new();
    for (name, family, base_v) in &base_fields {
        let Some((_, _, new_v)) = new_fields.iter().find(|(n, _, _)| n == name) else {
            skipped.push(name.clone());
            continue;
        };
        let change_pct = pct(*base_v, *new_v);
        // Seconds/cycles regress upward, throughput downward.
        let adverse = match family {
            Family::Seconds | Family::Cycles => change_pct,
            Family::Throughput => -change_pct,
        };
        fields.push(FieldDiff {
            name: name.clone(),
            family: *family,
            base: *base_v,
            new: *new_v,
            change_pct,
            regressed: adverse > tol.for_family(*family),
        });
    }
    for (name, _, _) in &new_fields {
        if !base_fields.iter().any(|(n, _, _)| n == name) {
            skipped.push(name.clone());
        }
    }
    Ok(PerfDiff {
        fields,
        skipped,
        tolerances: tol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(serial: f64, cycles: u64, throughput: f64, hymm_stalls: u64) -> String {
        format!(
            "{{\"serial_seconds\": {serial}, \"parallel_seconds\": {serial}, \
             \"sim_cycles_total\": {cycles}, \"sim_cycles_per_second\": {throughput}, \
             \"per_dataset_serial_seconds\": {{\"CR\": {serial}}}, \
             \"stall_cycles\": {{\"HyMM\": {{\"mac\": {hymm_stalls}, \"idle\": 5}}}}}}"
        )
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(0.3, 1_000_000, 3.0e6, 100);
        let d = diff_reports(&a, &a, Tolerances::default()).unwrap();
        assert!(!d.has_regression(), "{}", d.render_table());
        assert_eq!(d.fields.len(), 6);
        assert!(d.skipped.is_empty());
        let stall = d
            .fields
            .iter()
            .find(|f| f.name == "stall_cycles.HyMM")
            .unwrap();
        assert_eq!(stall.base, 105.0, "class totals are summed per dataflow");
    }

    #[test]
    fn noise_within_tolerance_is_not_a_regression() {
        let a = report(0.30, 1_000_000, 3.0e6, 100);
        // 20% slower wall clock, cycles identical: inside the 50% default.
        let b = report(0.36, 1_000_000, 2.5e6, 100);
        let d = diff_reports(&a, &b, Tolerances::default()).unwrap();
        assert!(!d.has_regression(), "{}", d.render_table());
    }

    #[test]
    fn cycle_growth_beyond_tolerance_regresses() {
        let a = report(0.30, 1_000_000, 3.0e6, 100);
        let b = report(0.30, 1_100_000, 3.0e6, 100);
        let d = diff_reports(&a, &b, Tolerances::default()).unwrap();
        assert!(d.has_regression());
        let f = d
            .fields
            .iter()
            .find(|f| f.name == "sim_cycles_total")
            .unwrap();
        assert!(f.regressed);
        assert!((f.change_pct - 10.0).abs() < 1e-9);
        assert!(
            d.render_table().contains("REGRESSED"),
            "{}",
            d.render_table()
        );
    }

    #[test]
    fn throughput_regresses_downward_not_upward() {
        let a = report(0.30, 1_000_000, 3.0e6, 100);
        let faster = report(0.30, 1_000_000, 9.0e6, 100);
        let d = diff_reports(&a, &faster, Tolerances::default()).unwrap();
        assert!(
            !d.has_regression(),
            "an improvement must never fail the gate"
        );
        let slower = report(0.30, 1_000_000, 1.0e6, 100);
        let d = diff_reports(&a, &slower, Tolerances::default()).unwrap();
        assert!(d.has_regression());
    }

    #[test]
    fn cycle_improvements_pass_even_when_large() {
        let a = report(0.30, 1_000_000, 3.0e6, 100);
        let b = report(0.05, 400_000, 8.0e6, 10);
        let d = diff_reports(&a, &b, Tolerances::default()).unwrap();
        assert!(!d.has_regression(), "{}", d.render_table());
    }

    #[test]
    fn shape_drift_is_skipped_not_failed() {
        let a = report(0.3, 1_000_000, 3.0e6, 100);
        let b = "{\"serial_seconds\": 0.3, \"sim_cycles_total\": 1000000}";
        let d = diff_reports(&a, b, Tolerances::default()).unwrap();
        assert!(!d.has_regression());
        assert!(d.skipped.iter().any(|s| s == "sim_cycles_per_second"));
        assert!(d.render_table().contains("skipped"), "{}", d.render_table());
    }

    #[test]
    fn invalid_tolerances_are_rejected() {
        let a = report(0.3, 1, 1.0, 1);
        let bad = Tolerances {
            cycles_pct: -1.0,
            ..Tolerances::default()
        };
        let e = diff_reports(&a, &a, bad).unwrap_err();
        assert!(e.contains("--tol-cycles"), "{e}");
        assert!(e.contains("non-negative"), "{e}");
    }

    #[test]
    fn serve_section_compares_latency_and_throughput_only() {
        let serve = |p50: f64, rps: f64| {
            format!(
                "{{\"serial_seconds\": 0.3, \"serve\": {{\"mode\": \"closed\", \
                 \"p50_ms\": {p50}, \"p95_ms\": {p50}, \"cold_ms\": 40.0, \
                 \"warm_ms\": 8.0, \"throughput_rps\": {rps}, \"cache_hits\": 28}}}}"
            )
        };
        let a = serve(10.0, 25.0);
        let d = diff_reports(&a, &a, Tolerances::default()).unwrap();
        let names: Vec<&str> = d.fields.iter().map(|f| f.name.as_str()).collect();
        for expected in [
            "serve.p50_ms",
            "serve.cold_ms",
            "serve.warm_ms",
            "serve.throughput_rps",
        ] {
            assert!(names.contains(&expected), "{names:?}");
        }
        assert!(
            !names.iter().any(|n| n.contains("cache_hits")),
            "counters are not perf-compared: {names:?}"
        );
        // 20% slower p50 and 20% lower rps: inside the noisy-family defaults.
        let b = serve(12.0, 20.0);
        let d = diff_reports(&a, &b, Tolerances::default()).unwrap();
        assert!(!d.has_regression(), "{}", d.render_table());
        // A 4x latency blow-up regresses.
        let bad = serve(40.0, 25.0);
        let d = diff_reports(&a, &bad, Tolerances::default()).unwrap();
        assert!(d.has_regression());
        // A baseline without the section skips cleanly.
        let old = "{\"serial_seconds\": 0.3}";
        let d = diff_reports(old, &a, Tolerances::default()).unwrap();
        assert!(!d.has_regression());
        assert!(
            d.skipped.iter().any(|s| s == "serve.p50_ms"),
            "{:?}",
            d.skipped
        );
    }

    #[test]
    fn zero_baseline_handles_divide() {
        let a = "{\"serial_seconds\": 0}";
        let b = "{\"serial_seconds\": 0.1}";
        let d = diff_reports(a, b, Tolerances::default()).unwrap();
        assert_eq!(d.fields[0].change_pct, 100.0);
        assert!(d.fields[0].regressed);
        let d = diff_reports(a, a, Tolerances::default()).unwrap();
        assert!(!d.has_regression());
    }
}
