//! Regenerates the paper's Fig. 11.
use hymm_bench::{figures, runner, BenchArgs};
fn main() {
    let results = runner::run_suite(&BenchArgs::from_env());
    println!(
        "{}",
        figures::fig11(&results).unwrap_or_else(|e| hymm_bench::args::exit_fatal(&e))
    );
}
