//! Regenerates the paper's Table III (hardware parameters and area).
use hymm_core::config::AcceleratorConfig;
fn main() {
    println!(
        "{}",
        hymm_bench::figures::table3(&AcceleratorConfig::default())
    );
}
