//! Runs the complete experiment suite — every table and figure from one
//! shared simulation pass — and prints them in paper order.
use hymm_bench::{export, figures, runner, BenchArgs};
use hymm_core::config::AcceleratorConfig;

fn main() {
    // extra flag: --csv <dir> exports machine-readable per-figure data
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir = None;
    if let Some(i) = raw.iter().position(|a| a == "--csv") {
        raw.remove(i);
        csv_dir = Some(std::path::PathBuf::from(raw.remove(i)));
    }
    let args = match BenchArgs::parse(raw) {
        Ok(args) => args,
        Err(e) => hymm_bench::args::exit_usage(&e),
    };
    let results = runner::run_suite(&args);
    if let Some(dir) = &csv_dir {
        export::write_csvs(&results, dir)
            .unwrap_or_else(|e| hymm_bench::args::exit_fatal(&format!("csv export: {e}")));
        hymm_bench::progress!("[hymm-bench] wrote CSV files to {}", dir.display());
    }
    let fallible = |r: Result<String, runner::MissingRunError>| {
        r.unwrap_or_else(|e| hymm_bench::args::exit_fatal(&e))
    };
    let sections = [
        figures::table1(),
        figures::table2(&results),
        figures::table3(&AcceleratorConfig::default()),
        figures::fig2(&results),
        figures::fig6(&results),
        fallible(figures::fig7(&results)),
        fallible(figures::fig8(&results)),
        fallible(figures::fig9(&results)),
        fallible(figures::fig10(&results)),
        fallible(figures::fig11(&results)),
    ];
    for s in sections {
        println!("{s}");
    }
    if args.stalls {
        println!("{}", figures::stalls(&results));
    }
}
