//! Runs the complete experiment suite — every table and figure from one
//! shared simulation pass — and prints them in paper order.
use hymm_bench::{export, figures, runner, BenchArgs};
use hymm_core::config::AcceleratorConfig;

fn main() {
    // extra flag: --csv <dir> exports machine-readable per-figure data
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir = None;
    if let Some(i) = raw.iter().position(|a| a == "--csv") {
        raw.remove(i);
        csv_dir = Some(std::path::PathBuf::from(raw.remove(i)));
    }
    let args = match BenchArgs::parse(raw) {
        Ok(args) => args,
        Err(e) => hymm_bench::args::exit_usage(&e),
    };
    let results = runner::run_suite(&args);
    if let Some(dir) = &csv_dir {
        export::write_csvs(&results, dir).expect("csv export");
        eprintln!("[hymm-bench] wrote CSV files to {}", dir.display());
    }
    let sections = [
        figures::table1(),
        figures::table2(&results),
        figures::table3(&AcceleratorConfig::default()),
        figures::fig2(&results),
        figures::fig6(&results),
        figures::fig7(&results),
        figures::fig8(&results),
        figures::fig9(&results),
        figures::fig10(&results),
        figures::fig11(&results),
    ];
    for s in sections {
        println!("{s}");
    }
    if args.stalls {
        println!("{}", figures::stalls(&results));
    }
}
