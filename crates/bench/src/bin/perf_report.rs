//! Host-performance report: suite wall-clock at `--threads 1` versus the
//! requested worker count, written to `BENCH_host.json`.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin perf_report -- [--scale N] [--datasets CR,AP] [--threads N]
//! ```
//!
//! Both passes run [`REPS`] times and report the minimum — on a shared host
//! the minimum is the only statistic that converges to the true cost; means
//! and single shots absorb neighbour noise. Every repetition (and the
//! parallel pass) must produce identical simulation results; the report
//! records that check alongside the timings, so the JSON doubles as
//! evidence for the timing-invariance guarantee. Parallel speedup is
//! whatever the host actually delivers — on a single-core container it is
//! ~1.0 by physics, not by bug.
//!
//! Besides the wall-clock split per dataset, the report carries a
//! `sim_cycles_per_second` throughput metric (simulated cycles summed over
//! every run, divided by the serial wall-clock) so the perf trajectory
//! stays comparable across PRs even when the suite's composition changes.

use hymm_bench::{dse, pe_sweep, pool, run_dataset_with, run_suite, BenchArgs, DatasetResults};
use hymm_core::area::estimate_area;
use hymm_core::config::{AcceleratorConfig, Preset};
use hymm_core::stats::StallBreakdown;
use hymm_graph::datasets::Dataset;
use hymm_mem::PrefetchPolicy;
use std::io::Write;
use std::time::Instant;

/// Repetitions per pass; the minimum is reported.
const REPS: usize = 5;

/// Serial wall-clock of the reference configuration (`--scale 600`, all
/// seven datasets, `--threads 1`, minimum of 5) measured at the previous
/// commit on this host, kept as the "before" of the current optimisation
/// round. Re-baseline when regenerating `BENCH_host.json` after landing a
/// perf change.
const BASELINE_SERIAL_SECONDS: f64 = 0.296;

use hymm_bench::runner::results_match;

/// One serial pass over the datasets, timing each individually. Honours the
/// scheduler and prefetch options so serial and parallel passes simulate the
/// same configuration; audit stays off in both so the timings compare.
fn serial_pass(args: &BenchArgs) -> (Vec<DatasetResults>, Vec<f64>, f64) {
    let serial_args = BenchArgs {
        audit: false,
        ..args.clone()
    };
    let t0 = Instant::now();
    let mut per_dataset = Vec::with_capacity(args.datasets.len());
    let results = args
        .datasets
        .iter()
        .map(|&d| {
            let t = Instant::now();
            let r = run_dataset_with(d, &serial_args);
            per_dataset.push(t.elapsed().as_secs_f64());
            r
        })
        .collect();
    (results, per_dataset, t0.elapsed().as_secs_f64())
}

fn main() {
    let args = BenchArgs::from_env();
    let threads = args.worker_threads();

    hymm_bench::progress!("[perf_report] serial pass (--threads 1, best of {REPS}) ...");
    let (serial_results, mut per_dataset_s, mut serial_s) = serial_pass(&args);
    for _ in 1..REPS {
        let (results, per, total) = serial_pass(&args);
        assert!(
            results_match(&serial_results, &results),
            "repeated serial runs diverged — the simulator is not deterministic"
        );
        if total < serial_s {
            serial_s = total;
            per_dataset_s = per;
        }
    }

    hymm_bench::progress!("[perf_report] parallel pass (--threads {threads}, best of {REPS}) ...");
    // Both passes run un-audited so the two timings stay comparable.
    let parallel_args = BenchArgs {
        threads,
        audit: false,
        ..args.clone()
    };
    let mut parallel_s = f64::MAX;
    let mut parallel_results = Vec::new();
    for _ in 0..REPS {
        let t0 = Instant::now();
        let results = run_suite(&parallel_args);
        parallel_s = parallel_s.min(t0.elapsed().as_secs_f64());
        parallel_results = results;
    }

    let identical = results_match(&serial_results, &parallel_results);
    let parallel_speedup = serial_s / parallel_s.max(1e-9);

    let sim_cycles_total: u64 = serial_results
        .iter()
        .flat_map(|d| &d.runs)
        .map(|r| r.report.cycles)
        .sum();
    let sim_cycles_per_second = sim_cycles_total as f64 / serial_s.max(1e-9);

    // Event-core scheduling counters summed over the serial suite — all
    // zero under `--scheduler stepped`, where no span ever opens.
    let mut events = hymm_mem::EventStats::default();
    for run in serial_results.iter().flat_map(|d| &d.runs) {
        events.merge(&run.events);
    }

    // Stall-attribution totals per dataflow variant, summed over the suite's
    // datasets — tracks where the simulated machines spend their cycles so
    // perf work can target the dominant class.
    let stall_cycles: Vec<String> = ["OP", "RWP", "HyMM", "HyMM-noacc"]
        .iter()
        .map(|label| {
            let mut total = StallBreakdown::default();
            for d in &serial_results {
                let run = d
                    .run(label)
                    .unwrap_or_else(|e| hymm_bench::args::exit_fatal(&e));
                total.merge(&run.report.stalls);
            }
            let classes: Vec<String> = StallBreakdown::CLASSES
                .iter()
                .zip(total.as_array())
                .map(|(name, v)| format!("\"{name}\": {v}"))
                .collect();
            format!("\"{label}\": {{ {} }}", classes.join(", "))
        })
        .collect();

    // Prefetch before/after at a fixed reference point — OP on Cora at
    // --scale 300, data prefetcher off versus smq-stream — so the recorded
    // stall-share shift stays comparable across PRs regardless of the
    // requested suite configuration. Like the suite passes, each policy
    // runs [`REPS`] times with the minimum wall-clock reported (the cycle
    // counts and stall shares are deterministic and asserted so per rep).
    hymm_bench::progress!(
        "[perf_report] prefetch before/after (OP on CR --scale 300, best of {REPS}) ..."
    );
    let prefetch_impact: Vec<String> = [PrefetchPolicy::Off, PrefetchPolicy::SmqStream]
        .into_iter()
        .map(|policy| {
            let prefetch_args = BenchArgs {
                scale: Some(300),
                datasets: vec![Dataset::Cora],
                threads: 1,
                prefetch: Some(policy),
                ..BenchArgs::default()
            };
            let t0 = Instant::now();
            let mut results = run_suite(&prefetch_args);
            let mut seconds = t0.elapsed().as_secs_f64();
            for _ in 1..REPS {
                let t0 = Instant::now();
                let rerun = run_suite(&prefetch_args);
                seconds = seconds.min(t0.elapsed().as_secs_f64());
                assert!(
                    results_match(&results, &rerun),
                    "repeated prefetch-impact runs diverged — nondeterministic simulator"
                );
                results = rerun;
            }
            let report = &results[0]
                .run("OP")
                .unwrap_or_else(|e| hymm_bench::args::exit_fatal(&e))
                .report;
            let classes: Vec<String> = StallBreakdown::CLASSES
                .iter()
                .zip(report.stalls.as_array())
                .map(|(name, v)| format!("\"{name}\": {v}"))
                .collect();
            format!(
                "\"{}\": {{ \"cycles\": {}, \"seconds\": {seconds:.3}, \"dmb_miss_share\": {:.4}, \"stalls\": {{ {} }} }}",
                policy.label(),
                report.cycles,
                report.stalls.dmb_miss as f64 / report.cycles.max(1) as f64,
                classes.join(", ")
            )
        })
        .collect();
    let prefetch_impact = format!(
        "{{ \"dataset\": \"CR\", \"scale\": 300, \"dataflow\": \"OP\", {} }}",
        prefetch_impact.join(", ")
    );

    // Tuned-preset before/after at a fixed reference point — the paper's
    // three dataflows on CR+AP at --scale 300, Table III default versus
    // `--preset tuned` — recording the measured speedup the DSE's winning
    // configuration delivers, alongside its area cost. Cycle counts are
    // deterministic, so one pass per preset suffices.
    hymm_bench::progress!("[perf_report] tuned preset before/after (CR,AP --scale 300) ...");
    let mut preset_combined = Vec::new();
    let tuned_sections: Vec<String> = Preset::ALL
        .into_iter()
        .map(|preset| {
            let preset_args = BenchArgs {
                scale: Some(300),
                datasets: vec![Dataset::Cora, Dataset::AmazonPhoto],
                threads: 1,
                preset,
                ..BenchArgs::default()
            };
            let results = run_suite(&preset_args);
            let totals: Vec<(String, u64)> = ["OP", "RWP", "HyMM"]
                .iter()
                .map(|label| {
                    let cycles = results
                        .iter()
                        .map(|d| {
                            d.run(label)
                                .unwrap_or_else(|e| hymm_bench::args::exit_fatal(&e))
                                .report
                                .cycles
                        })
                        .sum();
                    (label.to_string(), cycles)
                })
                .collect();
            let (op_miss, op_cycles) = results.iter().fold((0u64, 0u64), |(m, c), d| {
                let r = &d
                    .run("OP")
                    .unwrap_or_else(|e| hymm_bench::args::exit_fatal(&e))
                    .report;
                (m + r.stalls.dmb_miss, c + r.cycles)
            });
            let combined: u64 = totals.iter().map(|(_, c)| c).sum();
            preset_combined.push(combined);
            let mut config = AcceleratorConfig::default();
            preset.apply(&mut config);
            let cycles_json: Vec<String> = totals
                .iter()
                .map(|(label, c)| format!("\"{label}\": {c}"))
                .collect();
            format!(
                "\"{}\": {{ \"cycles\": {{ {} }}, \"combined_cycles\": {combined}, \
                 \"op_dmb_miss_share\": {:.4}, \"area_7nm\": {:.4} }}",
                preset.label(),
                cycles_json.join(", "),
                op_miss as f64 / op_cycles.max(1) as f64,
                estimate_area(&config).total_7nm(),
            )
        })
        .collect();
    let tuned_impact = format!(
        "{{ \"datasets\": [\"CR\", \"AP\"], \"scale\": 300, {}, \"tuned_speedup\": {:.4} }}",
        tuned_sections.join(", "),
        preset_combined[0] as f64 / preset_combined[1].max(1) as f64,
    );

    // A small reference DSE run (tiny space) so the explorer's Pareto
    // fronts and pruning counters land in the committed report; the full
    // default-space search is a manual `dse` invocation.
    hymm_bench::progress!("[perf_report] dse reference run (tiny space, CR --scale 300) ...");
    let dse_json = dse::run(&dse::DseArgs {
        scale: 300,
        screen_scale: 100,
        datasets: vec![Dataset::Cora],
        threads: 1,
        space: dse::SpaceKind::Tiny,
        ..dse::DseArgs::default()
    })
    .to_json();

    // PE sweep over the same suite configuration, with lane gating on so
    // the recorded table shows where the flexible VRF moves the mac-bound
    // wall (the 16x1 row is bit-identical to the default PE at the suite's
    // uniform layer width of 16; `pe_sweep`'s own binary asserts that).
    hymm_bench::progress!("[perf_report] PE sweep (lanes x latency, gated) ...");
    let pe_args = BenchArgs {
        audit: false,
        lane_gating: true,
        mac_pipeline: false,
        ..args.clone()
    };
    let pe_rows = pe_sweep::sweep(&pe_args).unwrap_or_else(|e| hymm_bench::args::exit_fatal(&e));
    let pe_sweep_json = pe_sweep::to_json(&pe_rows);

    // The committed baseline was measured on the reference configuration;
    // a before/after comparison on any other scale or dataset subset would
    // be meaningless, so it is reported as null there.
    let reference_config = args.scale == Some(600) && args.datasets.len() == 7;
    let (baseline, vs_baseline) = if reference_config {
        (
            format!("{BASELINE_SERIAL_SECONDS:.3}"),
            format!("{:.3}", BASELINE_SERIAL_SECONDS / serial_s.max(1e-9)),
        )
    } else {
        ("null".to_string(), "null".to_string())
    };

    let datasets: Vec<String> = args
        .datasets
        .iter()
        .map(|d| format!("\"{}\"", d.abbrev()))
        .collect();
    let per_dataset: Vec<String> = args
        .datasets
        .iter()
        .zip(&per_dataset_s)
        .map(|(d, s)| format!("\"{}\": {s:.3}", d.abbrev()))
        .collect();

    let json = format!(
        "{{\n  \"suite\": \"hymm-bench run_suite\",\n  \"scale\": {},\n  \"datasets\": [{}],\n  \"host_parallelism\": {},\n  \"reps\": {REPS},\n  \"scheduler\": \"{}\",\n  \"serial_threads\": 1,\n  \"serial_seconds\": {serial_s:.3},\n  \"per_dataset_serial_seconds\": {{ {} }},\n  \"sim_cycles_total\": {sim_cycles_total},\n  \"sim_cycles_per_second\": {sim_cycles_per_second:.3e},\n  \"events_scheduled\": {},\n  \"events_coalesced\": {},\n  \"cycles_skipped\": {},\n  \"stall_cycles\": {{ {} }},\n  \"prefetch_impact\": {prefetch_impact},\n  \"tuned_preset\": {tuned_impact},\n  \"dse\": {dse_json},\n  \"pe_sweep\": {pe_sweep_json},\n  \"baseline_serial_seconds\": {baseline},\n  \"serial_speedup_vs_baseline\": {vs_baseline},\n  \"parallel_threads\": {threads},\n  \"parallel_seconds\": {parallel_s:.3},\n  \"parallel_speedup\": {parallel_speedup:.3},\n  \"identical_results\": {identical}\n}}\n",
        args.scale.map_or("null".to_string(), |n| n.to_string()),
        datasets.join(", "),
        pool::default_threads(),
        args.scheduler.label(),
        per_dataset.join(", "),
        events.events_scheduled,
        events.events_coalesced,
        events.cycles_skipped,
        stall_cycles.join(", "),
    );

    let path = "BENCH_host.json";
    // The `serve` section is produced by a separate tool (`loadgen
    // --bench-out`, which needs a live hymm-serve); regenerating the suite
    // numbers must not silently drop it, so an existing section is carried
    // over verbatim.
    let json = match std::fs::read_to_string(path)
        .ok()
        .and_then(|old| hymm_bench::json::parse_json(&old).ok())
        .and_then(|doc| doc.get("serve").map(hymm_bench::json::Json::render))
    {
        Some(serve) => json.replace(
            "  \"identical_results\":",
            &format!("  \"serve\": {serve},\n  \"identical_results\":"),
        ),
        None => json,
    };
    let mut f = std::fs::File::create(path).expect("create BENCH_host.json");
    f.write_all(json.as_bytes()).expect("write BENCH_host.json");
    println!("{json}");
    println!("wrote {path}");
    assert!(
        identical,
        "thread count changed simulation results — timing invariance violated"
    );
}
