//! Host-performance report: suite wall-clock at `--threads 1` versus the
//! requested worker count, written to `BENCH_host.json`.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin perf_report -- [--scale N] [--datasets CR,AP] [--threads N]
//! ```
//!
//! The two runs must produce identical simulation results (parallelism is
//! wall-clock-only by construction); the report records that check alongside
//! the timings, so the JSON doubles as evidence for the timing-invariance
//! guarantee. Speedup is whatever the host actually delivers — on a
//! single-core container it is ~1.0 by physics, not by bug.

use hymm_bench::{pool, run_suite, BenchArgs, DatasetResults};
use std::io::Write;
use std::time::Instant;

fn timed_suite(args: &BenchArgs) -> (Vec<DatasetResults>, f64) {
    let t0 = Instant::now();
    let results = run_suite(args);
    (results, t0.elapsed().as_secs_f64())
}

fn results_match(a: &[DatasetResults], b: &[DatasetResults]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.runs.len() == y.runs.len()
                && x.runs.iter().zip(&y.runs).all(|(rx, ry)| {
                    rx.label == ry.label
                        && rx.report.cycles == ry.report.cycles
                        && rx.report.dram == ry.report.dram
                })
        })
}

fn main() {
    let args = BenchArgs::from_env();
    let threads = args.worker_threads();

    eprintln!("[perf_report] serial pass (--threads 1) ...");
    let serial_args = BenchArgs {
        threads: 1,
        ..args.clone()
    };
    let (serial_results, serial_s) = timed_suite(&serial_args);

    eprintln!("[perf_report] parallel pass (--threads {threads}) ...");
    let parallel_args = BenchArgs {
        threads,
        ..args.clone()
    };
    let (parallel_results, parallel_s) = timed_suite(&parallel_args);

    let identical = results_match(&serial_results, &parallel_results);
    let speedup = serial_s / parallel_s.max(1e-9);
    let datasets: Vec<String> = args
        .datasets
        .iter()
        .map(|d| format!("\"{}\"", d.abbrev()))
        .collect();

    let json = format!(
        "{{\n  \"suite\": \"hymm-bench run_suite\",\n  \"scale\": {},\n  \"datasets\": [{}],\n  \"host_parallelism\": {},\n  \"serial_threads\": 1,\n  \"serial_seconds\": {serial_s:.3},\n  \"parallel_threads\": {threads},\n  \"parallel_seconds\": {parallel_s:.3},\n  \"speedup\": {speedup:.3},\n  \"identical_results\": {identical}\n}}\n",
        args.scale.map_or("null".to_string(), |n| n.to_string()),
        datasets.join(", "),
        pool::default_threads(),
    );

    let path = "BENCH_host.json";
    let mut f = std::fs::File::create(path).expect("create BENCH_host.json");
    f.write_all(json.as_bytes()).expect("write BENCH_host.json");
    println!("{json}");
    println!("wrote {path}");
    assert!(
        identical,
        "thread count changed simulation results — timing invariance violated"
    );
}
