//! `dse` — stall-guided design-space exploration over the accelerator's
//! configuration surface (see `hymm_bench::dse`).
//!
//! ```text
//! cargo run --release -p hymm-bench --bin dse -- \
//!     [--scale N] [--screen-scale N] [--datasets CR,AP] [--threads N] \
//!     [--audit] [--eta N] [--area-budget F] [--space tiny|default] \
//!     [--max-candidates N]
//! ```
//!
//! Prints the per-dataflow Pareto fronts over (suite cycles, area) with
//! energy alongside, the pruning/memo counters, and the winning
//! configuration — the one the bench binaries' `--preset tuned` applies.

use hymm_bench::dse::{run, DseArgs, DSE_USAGE};

fn main() {
    let args = match DseArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{DSE_USAGE}");
            std::process::exit(2);
        }
    };
    let outcome = run(&args);
    println!("{}", outcome.render());
}
