//! Ablation: the hybrid tiling threshold (paper §IV-E fixes 20%).
//!
//! ```text
//! cargo run --release -p hymm-bench --bin ablation_tiling -- [--scale N] [--datasets AC] [--threads N]
//! ```

use hymm_bench::pool;
use hymm_bench::table::{mb, TextTable};
use hymm_bench::BenchArgs;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_gcn::{run_inference, GcnModel};

fn main() {
    let mut args = BenchArgs::from_env();
    // Default (all seven datasets) means "no explicit choice": pick the
    // paper's peak-effect dataset. An explicit --datasets list is honoured
    // (first entry).
    if args.datasets.len() == hymm_graph::datasets::Dataset::ALL.len() {
        args.datasets = vec![hymm_graph::datasets::Dataset::AmazonComputers];
    }
    if args.datasets.len() > 1 {
        eprintln!(
            "[ablation] multiple datasets given; using the first ({})",
            args.datasets[0].abbrev()
        );
    }
    let dataset = args.datasets[0];
    let w = match args.scale {
        Some(n) => dataset.synthesize_scaled(n),
        None => dataset.synthesize(),
    };
    let model = GcnModel::two_layer(w.spec.feature_len, w.spec.layer_dim, w.spec.layer_dim, 42);
    println!("Tiling-threshold sweep on {} (HyMM)", dataset.name());

    let percents = [0u32, 5, 10, 15, 20, 30, 50, 75, 100];
    for percent in percents {
        hymm_bench::progress!("[ablation] fraction {percent}% ...");
    }
    let reports = pool::map_indexed(args.worker_threads(), &percents, |_, &percent| {
        let cfg = AcceleratorConfig {
            tiling_fraction: percent as f64 / 100.0,
            ..AcceleratorConfig::default()
        };
        run_inference(&cfg, Dataflow::Hybrid, &w.adjacency, &w.features, &model)
            .expect("shapes consistent")
            .report
    });

    let mut t = TextTable::new(vec!["fraction", "cycles", "ALU util", "DRAM (MB)"]);
    for (percent, r) in percents.iter().zip(&reports) {
        t.row(vec![
            format!("{percent}%"),
            r.cycles.to_string(),
            format!("{:.1}%", r.alu_utilization() * 100.0),
            mb(r.dram_bytes()),
        ]);
    }
    println!("{}", t.render());
    println!("(the paper selects 20%, clamped to what the DMB can hold)");
}
