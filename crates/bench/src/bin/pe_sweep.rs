//! Sweeps the PE subsystem (lanes × MAC latency) over the suite and
//! tabulates how the mac-bound wall moves.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin pe_sweep -- \
//!     [--scale N] [--datasets CR,AP] [--threads N] [--audit] \
//!     [--mac-pipeline] [--lane-gating]
//! ```
//!
//! Runs each dataset across `{8, 16, 32}` lanes × `{1, 4}` cycles of MAC
//! latency (the `--pe-lanes` / `--mac-latency` flags themselves are ignored
//! — the whole grid is swept; `--mac-pipeline` and `--lane-gating` apply to
//! every point) and prints, per grid point: suite-total cycles, `mac` stall
//! cycles and their delta against the 16-lane latency-1 baseline, and the
//! configuration's estimated area.
//!
//! The baseline grid point is asserted bit-identical to a plain default-PE
//! suite run before anything is printed: at 16 lanes every 16-wide layer row
//! fills the vector unit, so neither the sweep plumbing nor the flexible VRF
//! (when `--lane-gating` is passed) may perturb the Table III default.

use hymm_bench::args::exit_fatal;
use hymm_bench::runner::{results_match, run_suite};
use hymm_bench::{pe_sweep, BenchArgs};

fn main() {
    let base = BenchArgs::from_env();

    let rows = pe_sweep::sweep(&base).unwrap_or_else(|e| exit_fatal(&e));
    let base_idx = pe_sweep::baseline_index(&rows)
        .unwrap_or_else(|| exit_fatal(&"sweep grid is missing the 16x1 baseline point"));

    // Differential pin: the grid's 16x1 point must reproduce the default
    // PE bit-for-bit, even with gating or pipelining requested.
    hymm_bench::progress!("[pe_sweep] checking 16x1 grid point against the default PE ...");
    let reference = run_suite(&BenchArgs {
        pe_lanes: None,
        mac_latency: None,
        mac_pipeline: false,
        lane_gating: false,
        ..base.clone()
    });
    if !results_match(&rows[base_idx].results, &reference) {
        exit_fatal(&"16x1 grid point diverged from the default PE configuration");
    }
    hymm_bench::progress!("[pe_sweep] baseline identical to default: ok");

    println!("{}", pe_sweep::render(&rows));
}
