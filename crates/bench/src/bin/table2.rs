//! Regenerates the paper's Table II (dataset statistics + sorting cost).
use hymm_bench::{figures, runner, BenchArgs};
fn main() {
    let results = runner::run_suite(&BenchArgs::from_env());
    println!("{}", figures::table2(&results));
}
