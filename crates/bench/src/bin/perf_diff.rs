//! Compares two `BENCH_host.json` reports and fails on perf regressions.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin perf_diff -- \
//!     BASELINE.json CANDIDATE.json \
//!     [--tol-seconds PCT] [--tol-cycles PCT] [--tol-throughput PCT]
//! ```
//!
//! Prints a per-field table (see [`perf_diff::diff_reports`] for the field
//! families and their regression directions) and exits non-zero when any
//! field moves beyond its family tolerance in the regressing direction —
//! the CI perf gate runs this against the committed baseline report.
//!
//! Exit status: 0 clean, 1 regression detected, 2 usage/IO/parse error.

use hymm_bench::perf_diff::{self, Tolerances};
use std::process::exit;

const USAGE: &str = "usage: perf_diff BASELINE.json CANDIDATE.json [options]

Options:
  --tol-seconds PCT     allowed wall-clock increase, percent (default 50)
  --tol-cycles PCT      allowed simulated-cycle increase, percent (default 5)
  --tol-throughput PCT  allowed throughput decrease, percent (default 50)
  --help                show this help
";

fn main() {
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n\n{USAGE}");
        exit(2);
    };
    let mut paths: Vec<String> = Vec::new();
    let mut tol = Tolerances::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut pct = |name: &str| -> f64 {
            let v = args
                .next()
                .unwrap_or_else(|| fail(&format!("{name} needs a percentage")));
            v.parse()
                .unwrap_or_else(|_| fail(&format!("{name} needs a number, got {v:?}")))
        };
        match arg.as_str() {
            "--tol-seconds" => tol.seconds_pct = pct("--tol-seconds"),
            "--tol-cycles" => tol.cycles_pct = pct("--tol-cycles"),
            "--tol-throughput" => tol.throughput_pct = pct("--tol-throughput"),
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            other if other.starts_with("--") => fail(&format!("unknown argument {other:?}")),
            _ => paths.push(arg),
        }
    }
    if paths.len() != 2 {
        fail("expected exactly two report paths");
    }
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
    };
    let (base, new) = (read(&paths[0]), read(&paths[1]));

    match perf_diff::diff_reports(&base, &new, tol) {
        Ok(diff) => {
            print!("{}", diff.render_table());
            if diff.has_regression() {
                eprintln!("perf_diff: REGRESSION — candidate exceeds tolerance");
                exit(1);
            }
            println!("perf_diff: ok");
        }
        Err(e) => fail(&e),
    }
}
