//! Regenerates the paper's Table I (qualitative dataflow comparison).
fn main() {
    println!("{}", hymm_bench::figures::table1());
}
