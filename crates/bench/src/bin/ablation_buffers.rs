//! Ablation: DMB capacity, MSHR count, eviction policy and LSQ forwarding —
//! the design choices DESIGN.md calls out, swept one at a time around the
//! paper's Table III configuration.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin ablation_buffers -- [--scale N] [--datasets AP] [--threads N]
//! ```

use hymm_bench::pool;
use hymm_bench::table::{mb, TextTable};
use hymm_bench::BenchArgs;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_core::stats::SimReport;
use hymm_gcn::{run_inference, GcnModel};
use hymm_graph::datasets::Workload;

fn simulate(cfg: &AcceleratorConfig, w: &Workload) -> SimReport {
    let model = GcnModel::two_layer(w.spec.feature_len, w.spec.layer_dim, w.spec.layer_dim, 42);
    run_inference(cfg, Dataflow::Hybrid, &w.adjacency, &w.features, &model)
        .expect("shapes consistent")
        .report
}

fn main() {
    let mut args = BenchArgs::from_env();
    // Default (all seven datasets) means "no explicit choice": pick the
    // paper's peak-effect dataset. An explicit --datasets list is honoured
    // (first entry).
    if args.datasets.len() == hymm_graph::datasets::Dataset::ALL.len() {
        // default to AP only: the paper's peak-effect dataset
        args.datasets = vec![hymm_graph::datasets::Dataset::AmazonPhoto];
    }
    if args.datasets.len() > 1 {
        eprintln!(
            "[ablation] multiple datasets given; using the first ({})",
            args.datasets[0].abbrev()
        );
    }
    let dataset = args.datasets[0];
    let w = match args.scale {
        Some(n) => dataset.synthesize_scaled(n),
        None => dataset.synthesize(),
    };
    println!("Ablations on {} (HyMM dataflow)", dataset.name());

    // One job per swept setting, fanned out over the worker pool; rows are
    // rendered from the (input-ordered) results afterwards.
    let mut jobs: Vec<(&str, String, AcceleratorConfig)> = Vec::new();
    for kb in [64usize, 128, 256, 512] {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.dmb_bytes = kb * 1024;
        jobs.push(("DMB capacity", format!("{kb} KB"), cfg));
    }
    for mshr in [4usize, 16, 32, 64] {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.mshr_count = mshr;
        // Keep the (prefetch-off, timing-inert) cap under the swept pool so
        // the configuration validates at every grid point.
        cfg.mem.prefetch_mshr_cap = cfg.mem.prefetch_mshr_cap.min(mshr - 1);
        jobs.push(("MSHR count", mshr.to_string(), cfg));
    }
    for class in [true, false] {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.class_eviction = class;
        let label = if class {
            "class-ordered (paper)"
        } else {
            "plain LRU"
        };
        jobs.push(("eviction", label.to_string(), cfg));
    }
    for fwd in [true, false] {
        let cfg = AcceleratorConfig {
            lsq_forwarding: fwd,
            ..AcceleratorConfig::default()
        };
        jobs.push(("LSQ forwarding", fwd.to_string(), cfg));
    }

    for (knob, setting, _) in &jobs {
        hymm_bench::progress!("[ablation] {knob}: {setting} ...");
    }
    let reports = pool::map_indexed(args.worker_threads(), &jobs, |_, (_, _, cfg)| {
        simulate(cfg, &w)
    });

    let mut t = TextTable::new(vec!["knob", "setting", "cycles", "DMB hit", "DRAM (MB)"]);
    for ((knob, setting, _), r) in jobs.iter().zip(&reports) {
        t.row(vec![
            knob.to_string(),
            setting.clone(),
            r.cycles.to_string(),
            format!("{:.1}%", r.dmb_hit_rate() * 100.0),
            mb(r.dram_bytes()),
        ]);
    }
    println!("{}", t.render());
}
