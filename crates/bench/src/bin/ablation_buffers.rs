//! Ablation: DMB capacity, MSHR count, eviction policy and LSQ forwarding —
//! the design choices DESIGN.md calls out, swept one at a time around the
//! paper's Table III configuration.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin ablation_buffers -- [--scale N] [--datasets AP]
//! ```

use hymm_bench::table::{mb, TextTable};
use hymm_bench::BenchArgs;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_core::stats::SimReport;
use hymm_gcn::{run_inference, GcnModel};
use hymm_graph::datasets::Workload;

fn simulate(cfg: &AcceleratorConfig, w: &Workload) -> SimReport {
    let model = GcnModel::two_layer(w.spec.feature_len, w.spec.layer_dim, w.spec.layer_dim, 42);
    run_inference(cfg, Dataflow::Hybrid, &w.adjacency, &w.features, &model)
        .expect("shapes consistent")
        .report
}

fn main() {
    let mut args = BenchArgs::from_env();
    // Default (all seven datasets) means "no explicit choice": pick the
    // paper's peak-effect dataset. An explicit --datasets list is honoured
    // (first entry).
    if args.datasets.len() == hymm_graph::datasets::Dataset::ALL.len() {
        // default to AP only: the paper's peak-effect dataset
        args.datasets = vec![hymm_graph::datasets::Dataset::AmazonPhoto];
    }
    if args.datasets.len() > 1 {
        eprintln!(
            "[ablation] multiple datasets given; using the first ({})",
            args.datasets[0].abbrev()
        );
    }
    let dataset = args.datasets[0];
    let w = match args.scale {
        Some(n) => dataset.synthesize_scaled(n),
        None => dataset.synthesize(),
    };
    println!("Ablations on {} (HyMM dataflow)", dataset.name());

    let mut t = TextTable::new(vec!["knob", "setting", "cycles", "DMB hit", "DRAM (MB)"]);
    let mut record = |knob: &str, setting: String, r: &SimReport| {
        t.row(vec![
            knob.to_string(),
            setting,
            r.cycles.to_string(),
            format!("{:.1}%", r.dmb_hit_rate() * 100.0),
            mb(r.dram_bytes()),
        ]);
    };

    for kb in [64usize, 128, 256, 512] {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.dmb_bytes = kb * 1024;
        eprintln!("[ablation] DMB {kb} KB ...");
        record("DMB capacity", format!("{kb} KB"), &simulate(&cfg, &w));
    }
    for mshr in [4usize, 16, 32, 64] {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.mshr_count = mshr;
        eprintln!("[ablation] MSHR {mshr} ...");
        record("MSHR count", mshr.to_string(), &simulate(&cfg, &w));
    }
    for class in [true, false] {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.class_eviction = class;
        eprintln!("[ablation] class eviction {class} ...");
        let label = if class { "class-ordered (paper)" } else { "plain LRU" };
        record("eviction", label.to_string(), &simulate(&cfg, &w));
    }
    for fwd in [true, false] {
        let cfg = AcceleratorConfig { lsq_forwarding: fwd, ..AcceleratorConfig::default() };
        eprintln!("[ablation] forwarding {fwd} ...");
        record("LSQ forwarding", fwd.to_string(), &simulate(&cfg, &w));
    }
    println!("{}", t.render());
}
