//! Exports interval-sampled telemetry for a suite run: Prometheus text
//! exposition plus a JSON time-series sidecar.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin metrics_export -- \
//!     [--scale N] [--datasets CR,AP] [--metrics-interval CYCLES] \
//!     [--out BASENAME] [--check] [other hymm-bench options]
//! ```
//!
//! Runs the standard suite with metrics sampling forced on (default
//! interval when `--metrics-interval` is not given) and writes two files:
//!
//! - `<out>.prom` — end-of-run totals and per-interval DMB hit-rate
//!   histograms in Prometheus text exposition format 0.0.4, one labelled
//!   series per (dataset, dataflow) run — scrape-ready for `hymm-serve`;
//! - `<out>.json` — the full per-interval time series of every run
//!   (stall-class deltas, DMB/MSHR/LSQ occupancy, DRAM busy fractions,
//!   PE utilisation, prefetch counters).
//!
//! `--check` re-reads both files: the JSON through the dependency-free
//! validator ([`metrics_json::validate_metrics_json`]), the Prometheus text
//! for exposition-format `# TYPE` headers, and — when the ring never
//! overflowed — asserts each run's per-interval stall deltas sum exactly to
//! its end-of-run waterfall totals. The CI smoke step runs with it on.

use hymm_bench::{metrics_json, BenchArgs};
use hymm_core::metrics::{registry_from_report, MetricsData, MetricsRegistry};
use std::io::Write as _;
use std::process::exit;

fn main() {
    // Split off the bin-local options; everything else is standard
    // hymm-bench argument syntax handled by `BenchArgs::parse`.
    let mut out_base = "METRICS".to_string();
    let mut check = false;
    let mut rest: Vec<String> = Vec::new();
    let mut env = std::env::args().skip(1);
    while let Some(arg) = env.next() {
        match arg.as_str() {
            "--out" => match env.next() {
                Some(v) => out_base = v,
                None => {
                    eprintln!("error: --out needs a value");
                    exit(2);
                }
            },
            "--check" => check = true,
            _ => rest.push(arg),
        }
    }
    let mut args = match BenchArgs::parse(rest) {
        Ok(args) => args,
        Err(e) => hymm_bench::args::exit_usage(&e),
    };
    hymm_bench::log::set_level(args.log_level());
    // Telemetry is the whole point of this binary: force sampling on.
    args.metrics_interval
        .get_or_insert(hymm_mem::MetricsConfig::default().sample_every);

    let results = hymm_bench::run_suite(&args);

    let mut reg = MetricsRegistry::new();
    let mut series: Vec<(String, MetricsData)> = Vec::new();
    for d in &results {
        for run in &d.runs {
            let label = format!("{}/{}", d.spec.dataset.abbrev(), run.label);
            registry_from_report(&mut reg, &label, &run.report);
            let data = run
                .report
                .metrics
                .as_deref()
                .cloned()
                .expect("metrics sampling was forced on, so every report carries series");
            series.push((label, data));
        }
    }

    let prom = reg.render_prometheus();
    let prom_path = format!("{out_base}.prom");
    let mut f = std::fs::File::create(&prom_path).expect("create .prom output");
    f.write_all(prom.as_bytes()).expect("write .prom output");

    let borrowed: Vec<(String, &MetricsData)> =
        series.iter().map(|(l, d)| (l.clone(), d)).collect();
    let json = metrics_json::metrics_json(&borrowed);
    let json_path = format!("{out_base}.json");
    let mut f = std::fs::File::create(&json_path).expect("create .json output");
    f.write_all(json.as_bytes()).expect("write .json output");

    let samples: usize = series.iter().map(|(_, d)| d.samples.len()).sum();
    println!(
        "wrote {prom_path} ({} bytes) and {json_path} ({} bytes): {} runs, {samples} samples",
        prom.len(),
        json.len(),
        series.len()
    );

    if check {
        match metrics_json::validate_metrics_json(&json) {
            Ok(n) => println!("validated: {n} samples, all with ts + 8 stall classes"),
            Err(e) => {
                eprintln!("error: written metrics JSON failed validation: {e}");
                exit(1);
            }
        }
        if !prom.contains("# TYPE ") || !prom.contains("hymm_cycles_total") {
            eprintln!("error: written Prometheus text is missing TYPE headers");
            exit(1);
        }
        // Accounting: per-interval stall deltas must telescope back to the
        // end-of-run waterfall exactly (unless the ring overflowed, in
        // which case the series is declaredly inexact).
        let runs_flat: Vec<_> = results.iter().flat_map(|d| d.runs.iter()).collect();
        for (run, (label, data)) in runs_flat.iter().zip(&series) {
            if data.dropped > 0 {
                println!(
                    "note: {label} dropped {} samples; sums are inexact",
                    data.dropped
                );
                continue;
            }
            let sums = data.stall_sums();
            let want = run.report.stalls.as_array().map(|v| v as i64);
            if sums != want {
                eprintln!(
                    "error: {label}: per-interval stall deltas {sums:?} do not sum to \
                     the report waterfall {want:?}"
                );
                exit(1);
            }
        }
        println!("accounting: per-interval stall deltas sum to the report waterfalls");
    }
}
