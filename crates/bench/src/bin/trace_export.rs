//! Exports a cycle-level Chrome-trace/Perfetto JSON for one dataset.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin trace_export -- \
//!     [--dataset CR] [--scale N] [--dataflow op|rwp|cwp|hymm|all] \
//!     [--prefetch off|next-line|smq-stream] [--out TRACE.json] [--check]
//! ```
//!
//! Runs the two-layer GCN inference with tracing enabled and writes one
//! trace document (open it at <https://ui.perfetto.dev> or in
//! `chrome://tracing`): each requested dataflow becomes one process whose
//! threads are the simulator's clock domains (phases, DMB ports, DRAM
//! channels, LSQ, SMQ streams), with MSHR-occupancy / miss-latency /
//! LSQ-depth histograms embedded under the `hymmHistograms` key.
//!
//! `--check` re-reads the written file through the dependency-free JSON
//! validator ([`trace_json::validate_chrome_trace`]) — the CI smoke step
//! runs with it on.

use hymm_bench::trace_json;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_core::trace::TraceData;
use hymm_gcn::{run_inference, GcnModel};
use hymm_graph::datasets::Dataset;
use std::io::Write as _;
use std::process::exit;

const USAGE: &str = "usage: trace_export [options]

Options:
  --dataset ABBR   dataset to synthesise (CR, CS, PB, AC, AP, CF, ND; default CR)
  --scale N        cap the dataset at N nodes (default: paper-size)
  --dataflow MODE  op | rwp | cwp | hymm | all   (default all)
  --prefetch POL   off | next-line | smq-stream  (default off)
  --out PATH       output file (default TRACE.json)
  --check          validate the written JSON and fail on malformed output
  --help           show this help
";

struct Options {
    dataset: Dataset,
    scale: Option<usize>,
    dataflows: Vec<Dataflow>,
    prefetch: hymm_mem::PrefetchPolicy,
    out: String,
    check: bool,
}

fn parse_args() -> Options {
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n\n{USAGE}");
        exit(2);
    };
    let mut opts = Options {
        dataset: Dataset::Cora,
        scale: None,
        dataflows: Dataflow::EXTENDED.to_vec(),
        prefetch: hymm_mem::PrefetchPolicy::Off,
        out: "TRACE.json".to_string(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--dataset" => {
                let abbr = value("--dataset");
                opts.dataset = Dataset::ALL
                    .into_iter()
                    .find(|d| d.abbrev().eq_ignore_ascii_case(abbr.trim()))
                    .unwrap_or_else(|| fail(&format!("unknown dataset {abbr:?}")));
            }
            "--scale" => {
                let n = value("--scale");
                opts.scale = Some(
                    n.parse()
                        .unwrap_or_else(|_| fail(&format!("bad --scale value {n:?}"))),
                );
            }
            "--dataflow" => {
                opts.dataflows = match value("--dataflow").as_str() {
                    "op" | "outer" => vec![Dataflow::Outer],
                    "rwp" | "row" => vec![Dataflow::RowWise],
                    "cwp" | "column" => vec![Dataflow::ColumnWise],
                    "hymm" | "hybrid" => vec![Dataflow::Hybrid],
                    "all" => Dataflow::EXTENDED.to_vec(),
                    other => fail(&format!("unknown dataflow {other:?}")),
                };
            }
            "--prefetch" => {
                let v = value("--prefetch");
                opts.prefetch = hymm_mem::PrefetchPolicy::parse(&v)
                    .unwrap_or_else(|| fail(&format!("unknown prefetch policy {v:?}")));
            }
            "--out" => opts.out = value("--out"),
            "--check" => opts.check = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let spec = match opts.scale {
        Some(n) => opts.dataset.spec().scaled(n),
        None => opts.dataset.spec(),
    };
    hymm_bench::progress!(
        "[trace_export] synthesising {} ({} nodes) ...",
        spec.dataset.name(),
        spec.nodes
    );
    let workload = spec.synthesize();
    let model = GcnModel::two_layer(spec.feature_len, spec.layer_dim, spec.layer_dim, 42);

    let mut config = AcceleratorConfig::default();
    config.mem.trace = true;
    config.mem.prefetch = opts.prefetch;

    let mut runs: Vec<(String, TraceData)> = Vec::new();
    for df in &opts.dataflows {
        hymm_bench::progress!("[trace_export] simulating {} ...", df.label());
        let outcome = run_inference(
            &config,
            *df,
            &workload.adjacency,
            &workload.features,
            &model,
        )
        .expect("inference succeeds");
        let report = outcome.report;
        let trace = report
            .trace
            .as_deref()
            .cloned()
            .expect("tracing was enabled, so the report carries a trace");
        let top = hymm_core::StallBreakdown::CLASSES
            .iter()
            .zip(report.stalls.as_array())
            .max_by_key(|(_, v)| *v)
            .map(|(name, v)| {
                format!(
                    "{name} {:.1}%",
                    100.0 * v as f64 / report.cycles.max(1) as f64
                )
            })
            .unwrap_or_default();
        hymm_bench::progress!(
            "[trace_export]   {}: {} cycles, {} events ({} dropped), top stall class: {top}",
            df.label(),
            report.cycles,
            trace.events.len(),
            trace.dropped
        );
        runs.push((df.label().to_string(), trace));
    }

    let borrowed: Vec<(String, &TraceData)> = runs.iter().map(|(l, t)| (l.clone(), t)).collect();
    let json = trace_json::chrome_trace(&borrowed);
    let mut f = std::fs::File::create(&opts.out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write trace JSON");
    println!(
        "wrote {} ({} bytes, {} runs)",
        opts.out,
        json.len(),
        runs.len()
    );

    if opts.check {
        match trace_json::validate_chrome_trace(&json) {
            Ok(n) => println!("validated: {n} trace events, all with ph + ts"),
            Err(e) => {
                eprintln!("error: written trace failed validation: {e}");
                exit(1);
            }
        }
    }
}
