//! Extension study: all four dataflow families of the paper's Table I
//! (OP / CWP / RWP / HyMM) on one dataset, with the energy-model estimate.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin ablation_dataflows -- [--scale N] [--datasets CR,AP] [--threads N]
//! ```

use hymm_bench::pool;
use hymm_bench::table::{mb, TextTable};
use hymm_bench::BenchArgs;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_core::energy::EnergyModel;
use hymm_gcn::{run_inference, GcnModel};
use hymm_graph::datasets::Workload;

fn main() {
    let args = BenchArgs::from_env();
    let threads = args.worker_threads();
    let config = AcceleratorConfig::default();
    let energy = EnergyModel::default();

    for d in &args.datasets {
        eprintln!("[ablation] {} ...", d.name());
    }
    let workloads: Vec<Workload> =
        pool::map_indexed(threads, &args.datasets, |_, d| match args.scale {
            Some(n) => d.synthesize_scaled(n),
            None => d.synthesize(),
        });

    // One job per (dataset, dataflow); the flat result vector is
    // dataset-major, so rows come out in the serial order.
    let jobs: Vec<(usize, Dataflow)> = (0..workloads.len())
        .flat_map(|i| Dataflow::EXTENDED.into_iter().map(move |df| (i, df)))
        .collect();
    let reports = pool::map_indexed(threads, &jobs, |_, &(i, df)| {
        let w = &workloads[i];
        let model = GcnModel::two_layer(w.spec.feature_len, w.spec.layer_dim, w.spec.layer_dim, 42);
        run_inference(&config, df, &w.adjacency, &w.features, &model)
            .expect("shapes consistent")
            .report
    });

    let mut t = TextTable::new(vec![
        "Dataset",
        "Dataflow",
        "cycles",
        "ALU util",
        "DRAM (MB)",
        "energy (uJ)",
    ]);
    for (&(i, df), r) in jobs.iter().zip(&reports) {
        let e = energy.estimate(r);
        t.row(vec![
            args.datasets[i].abbrev().to_string(),
            df.label().to_string(),
            r.cycles.to_string(),
            format!("{:.1}%", r.alu_utilization() * 100.0),
            mb(r.dram_bytes()),
            format!("{:.1}", e.total_uj()),
        ]);
    }
    println!("Extension: all four Table I dataflow families + energy estimate");
    println!("{}", t.render());
}
