//! Extension study: all four dataflow families of the paper's Table I
//! (OP / CWP / RWP / HyMM) on one dataset, with the energy-model estimate.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin ablation_dataflows -- [--scale N] [--datasets CR,AP] [--threads N]
//! ```

use hymm_bench::pool;
use hymm_bench::table::{mb, TextTable};
use hymm_bench::BenchArgs;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_core::energy::EnergyModel;
use hymm_core::prepared::PreparedAdjacency;
use hymm_gcn::{prepare_adjacency, run_inference_prepared, GcnModel};
use hymm_graph::datasets::Workload;
use std::sync::Arc;

/// One synthesised dataset plus the preprocessing shared by its four
/// dataflow runs (normalised Â, CSR/CSC, degree sort, tiling).
struct PreparedWorkload {
    workload: Workload,
    model: GcnModel,
    prep: Arc<PreparedAdjacency>,
}

fn main() {
    let args = BenchArgs::from_env();
    let threads = args.worker_threads();
    let config = AcceleratorConfig::default();
    let energy = EnergyModel::default();

    for d in &args.datasets {
        hymm_bench::progress!("[ablation] {} ...", d.name());
    }
    // Synthesise and prepare each dataset once; the four dataflow jobs
    // share the preparation immutably instead of re-normalising per run.
    let prepared: Vec<PreparedWorkload> = pool::map_indexed(threads, &args.datasets, |_, d| {
        let workload = match args.scale {
            Some(n) => d.synthesize_scaled(n),
            None => d.synthesize(),
        };
        let model = GcnModel::two_layer(
            workload.spec.feature_len,
            workload.spec.layer_dim,
            workload.spec.layer_dim,
            42,
        );
        let prep = Arc::new(prepare_adjacency(&workload.adjacency).expect("adjacency is square"));
        PreparedWorkload {
            workload,
            model,
            prep,
        }
    });

    // One job per (dataset, dataflow); the flat result vector is
    // dataset-major, so rows come out in the serial order.
    let jobs: Vec<(usize, Dataflow)> = (0..prepared.len())
        .flat_map(|i| Dataflow::EXTENDED.into_iter().map(move |df| (i, df)))
        .collect();
    let reports = pool::map_indexed(threads, &jobs, |_, &(i, df)| {
        let p = &prepared[i];
        run_inference_prepared(&config, df, &p.prep, &p.workload.features, &p.model, None)
            .expect("shapes consistent")
            .report
    });

    let mut t = TextTable::new(vec![
        "Dataset",
        "Dataflow",
        "cycles",
        "ALU util",
        "DRAM (MB)",
        "energy (uJ)",
    ]);
    for (&(i, df), r) in jobs.iter().zip(&reports) {
        let e = energy.estimate(r);
        t.row(vec![
            args.datasets[i].abbrev().to_string(),
            df.label().to_string(),
            r.cycles.to_string(),
            format!("{:.1}%", r.alu_utilization() * 100.0),
            mb(r.dram_bytes()),
            format!("{:.1}", e.total_uj()),
        ]);
    }
    println!("Extension: all four Table I dataflow families + energy estimate");
    println!("{}", t.render());
}
