//! Extension study: all four dataflow families of the paper's Table I
//! (OP / CWP / RWP / HyMM) on one dataset, with the energy-model estimate.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin ablation_dataflows -- [--scale N] [--datasets CR,AP]
//! ```

use hymm_bench::table::{mb, TextTable};
use hymm_bench::BenchArgs;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_core::energy::EnergyModel;
use hymm_gcn::{run_inference, GcnModel};

fn main() {
    let args = BenchArgs::from_env();
    let config = AcceleratorConfig::default();
    let energy = EnergyModel::default();
    let mut t = TextTable::new(vec![
        "Dataset", "Dataflow", "cycles", "ALU util", "DRAM (MB)", "energy (uJ)",
    ]);
    for &dataset in &args.datasets {
        eprintln!("[ablation] {} ...", dataset.name());
        let w = match args.scale {
            Some(n) => dataset.synthesize_scaled(n),
            None => dataset.synthesize(),
        };
        let model =
            GcnModel::two_layer(w.spec.feature_len, w.spec.layer_dim, w.spec.layer_dim, 42);
        for df in Dataflow::EXTENDED {
            let r = run_inference(&config, df, &w.adjacency, &w.features, &model)
                .expect("shapes consistent")
                .report;
            let e = energy.estimate(&r);
            t.row(vec![
                dataset.abbrev().to_string(),
                df.label().to_string(),
                r.cycles.to_string(),
                format!("{:.1}%", r.alu_utilization() * 100.0),
                mb(r.dram_bytes()),
                format!("{:.1}", e.total_uj()),
            ]);
        }
    }
    println!("Extension: all four Table I dataflow families + energy estimate");
    println!("{}", t.render());
}
