//! Compares two `trace_export` JSON documents.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin trace_diff -- A.json B.json
//! ```
//!
//! Prints the per-phase duration deltas (total cycles per `run/phase` slice
//! on the `phases` track, B relative to A) and the `hymmHistograms` shifts
//! (sample counts and count-weighted bucket means) as aligned tables —
//! the quick answer to "what did this change do to the timeline?" without
//! opening a trace viewer. Typical use: export one trace per prefetch
//! policy, then diff them.

use hymm_bench::trace_json;
use std::process::exit;

const USAGE: &str = "usage: trace_diff A.json B.json

Compares two chrome-trace documents written by trace_export: per-phase
duration deltas and histogram shifts, B relative to A.
";

fn load(path: &str) -> trace_json::TraceSummary {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        exit(2);
    });
    trace_json::summarize_trace(&src).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid trace document: {e}");
        exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        exit(0);
    }
    let [a_path, b_path] = args.as_slice() else {
        eprintln!("error: expected exactly two trace files\n\n{USAGE}");
        exit(2);
    };
    let (a, b) = (load(a_path), load(b_path));
    println!("A = {a_path}");
    println!("B = {b_path}");
    println!();
    print!("{}", trace_json::diff_table(&a, &b));
}
