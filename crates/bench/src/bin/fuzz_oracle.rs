//! Bounded-iteration differential fuzzer for the dataflow engines.
//!
//! Each iteration synthesises a random degree-skewed graph with
//! small-integer adjacency, feature and weight values (every partial sum
//! stays below 2^24, so all four dataflows must produce *bit-identical*
//! outputs regardless of accumulation order), runs OP, CWP, RWP and Hybrid
//! with the invariant audit enabled, and checks the results against a dense
//! reference plus the cross-engine traffic relation. Exits non-zero on the
//! first divergence. CI runs a short smoke (`--iters 5`); longer local runs
//! just crank `--iters`.
//!
//! Usage: `fuzz_oracle [--iters N] [--seed S]`

use hymm_core::audit;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_core::sim::run_gcn_layer;
use hymm_graph::generator::{power_law_with_exponent, preferential_attachment};
use hymm_sparse::{Coo, Dense};

const FEATURE_DIM: usize = 32;
const OUT_DIM: usize = 16;

/// Minimal deterministic RNG (64-bit LCG, high-bits output) so this binary
/// needs no RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next_u32(&mut self) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound.max(1)
    }
}

fn integer_inputs(structure: &Coo, rng: &mut Lcg) -> (Coo, Coo, Dense) {
    let n = structure.rows();
    let mut adj = Coo::new(n, n).expect("generator output is non-empty");
    for (r, c, _) in structure.iter() {
        adj.push(r, c, (1 + rng.below(3)) as f32)
            .expect("in bounds");
    }
    let mut x = Coo::new(n, FEATURE_DIM).expect("non-empty");
    for r in 0..n {
        for c in 0..FEATURE_DIM {
            if rng.below(2) == 0 {
                x.push(r, c, (1 + rng.below(4)) as f32).expect("in bounds");
            }
        }
    }
    let vals: Vec<f32> = (0..FEATURE_DIM * OUT_DIM)
        .map(|_| rng.below(7) as f32 - 3.0)
        .collect();
    let w = Dense::from_fn(FEATURE_DIM, OUT_DIM, |r, c| vals[r * OUT_DIM + c]);
    (adj, x, w)
}

fn densify(m: &Coo) -> Dense {
    let mut vals = vec![0.0f32; m.rows() * m.cols()];
    for (r, c, v) in m.iter() {
        vals[r * m.cols() + c] += v;
    }
    Dense::from_fn(m.rows(), m.cols(), |r, c| vals[r * m.cols() + c])
}

fn run_iteration(iter: u64, seed: u64) -> Result<(), String> {
    let mut rng = Lcg(seed ^ 0x5EED_0FAC_1E55_C0DE);
    let n = 16 + (rng.below(113) as usize);
    let edges = 2 * n + rng.below(2 * n as u32) as usize;
    let structure = if iter.is_multiple_of(2) {
        power_law_with_exponent(n, edges, 2.0 + (iter % 3) as f64 * 0.4, seed)
    } else {
        preferential_attachment(n, edges, seed)
    };
    let (adj, x, w) = integer_inputs(&structure, &mut rng);
    let reference = densify(&adj)
        .matmul(&densify(&x).matmul(&w).expect("shapes agree"))
        .expect("shapes agree");

    let config = AcceleratorConfig {
        audit: true,
        ..AcceleratorConfig::default()
    };
    let mut hybrid_reads = 0u64;
    let mut worst_single = 0u64;
    for dataflow in Dataflow::EXTENDED {
        let outcome = run_gcn_layer(&config, dataflow, &adj, &x, &w)
            .map_err(|e| format!("iter {iter} ({dataflow:?}): layer failed: {e}"))?;
        if outcome.output.as_slice() != reference.as_slice() {
            return Err(format!(
                "iter {iter} (seed {seed}, n {n}, nnz {}): {dataflow:?} diverged \
                 from the dense reference",
                adj.nnz()
            ));
        }
        let violations = audit::check_report(&outcome.report);
        if !violations.is_empty() {
            return Err(format!(
                "iter {iter} (seed {seed}): {dataflow:?} audit violations: {violations:?}"
            ));
        }
        let reads = outcome.report.dram.total().read_bytes;
        if dataflow == Dataflow::Hybrid {
            hybrid_reads = reads;
        } else {
            worst_single = worst_single.max(reads);
        }
    }
    if hybrid_reads > worst_single {
        return Err(format!(
            "iter {iter} (seed {seed}): hybrid read {hybrid_reads} DRAM bytes, \
             worst single dataflow only {worst_single}"
        ));
    }
    Ok(())
}

fn main() {
    let mut iters = 25u64;
    let mut seed = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |flag: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("error: {flag} needs an integer");
                    eprintln!("usage: fuzz_oracle [--iters N] [--seed S]");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--iters" => iters = grab("--iters"),
            "--seed" => seed = grab("--seed"),
            other => {
                eprintln!("error: unknown argument {other:?}");
                eprintln!("usage: fuzz_oracle [--iters N] [--seed S]");
                std::process::exit(2);
            }
        }
    }
    for iter in 0..iters {
        if let Err(msg) = run_iteration(iter, seed.wrapping_add(iter)) {
            eprintln!("[fuzz_oracle] FAIL: {msg}");
            std::process::exit(1);
        }
    }
    println!(
        "[fuzz_oracle] {iters} iterations x 4 dataflows: all bit-identical, \
         zero audit violations (base seed {seed})"
    );
}
