//! Regenerates the paper's Fig. 7.
use hymm_bench::{figures, runner, BenchArgs};
fn main() {
    let args = BenchArgs::from_env();
    let results = runner::run_suite(&args);
    println!(
        "{}",
        figures::fig7(&results).unwrap_or_else(|e| hymm_bench::args::exit_fatal(&e))
    );
    if args.stalls {
        println!("{}", figures::stalls(&results));
    }
}
