//! Regenerates the paper's Fig. 10.
use hymm_bench::{figures, runner, BenchArgs};
fn main() {
    let results = runner::run_suite(&BenchArgs::from_env());
    println!(
        "{}",
        figures::fig10(&results).unwrap_or_else(|e| hymm_bench::args::exit_fatal(&e))
    );
}
