//! Sweeps every prefetch policy over the suite and tabulates the shift.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin prefetch_sweep -- \
//!     [--scale N] [--datasets CR,AP] [--threads N] [--audit] \
//!     [--prefetch-degree N] [--prefetch-mshr-cap K]
//! ```
//!
//! Runs each dataset under `off`, `next-line` and `smq-stream` (the
//! `--prefetch` flag itself is ignored — all policies are swept) and prints,
//! per (dataset, policy, dataflow): total cycles relative to `off`, the
//! `dmb-miss` and `prefetch-late` stall shares, and the prefetcher's own
//! accounting (issued / useful / accuracy / late / dropped). The table is
//! the quick answer to "which dataflows does prefetching help, and where do
//! the stalls move?".

use hymm_bench::{run_suite, BenchArgs};
use hymm_mem::PrefetchPolicy;

fn main() {
    let base = BenchArgs::from_env();

    // One suite per policy; identical preprocessing is re-done per pass,
    // which keeps the runner's timing-invariance path untouched.
    let sweeps: Vec<(PrefetchPolicy, _)> = PrefetchPolicy::ALL
        .into_iter()
        .map(|policy| {
            hymm_bench::progress!("[prefetch_sweep] policy {} ...", policy.label());
            let args = BenchArgs {
                prefetch: Some(policy),
                ..base.clone()
            };
            (policy, run_suite(&args))
        })
        .collect();

    let (_, baseline) = &sweeps[0];
    println!(
        "{:<6} {:<12} {:<12} {:>12} {:>8} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6} {:>9}",
        "data",
        "policy",
        "dataflow",
        "cycles",
        "vs-off",
        "dmb-miss%",
        "pf-late%",
        "issued",
        "useful",
        "acc%",
        "late",
        "dropped"
    );
    for (policy, results) in &sweeps {
        for (d, dataset) in results.iter().enumerate() {
            for run in &dataset.runs {
                let report = &run.report;
                let cycles = report.cycles.max(1) as f64;
                let share = |v: u64| 100.0 * v as f64 / cycles;
                let off_cycles = baseline[d]
                    .run(run.label)
                    .unwrap_or_else(|e| hymm_bench::args::exit_fatal(&e))
                    .report
                    .cycles
                    .max(1) as f64;
                let pf = &report.prefetch;
                println!(
                    "{:<6} {:<12} {:<12} {:>12} {:>7.3}x {:>8.1}% {:>8.1}% {:>9} {:>9} \
                     {:>5.0}% {:>6} {:>9}",
                    dataset.spec.dataset.abbrev(),
                    policy.label(),
                    run.label,
                    report.cycles,
                    report.cycles as f64 / off_cycles,
                    share(report.stalls.dmb_miss),
                    share(report.stalls.prefetch_late),
                    pf.issued,
                    pf.useful,
                    100.0 * pf.accuracy(),
                    pf.late,
                    pf.dropped()
                );
            }
        }
    }
}
