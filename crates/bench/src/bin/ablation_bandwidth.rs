//! Extension study: off-chip bandwidth sensitivity.
//!
//! The paper assumes a single 64 GB/s DRAM channel (§IV). This sweep varies
//! channel count and per-channel bandwidth to show where each dataflow's
//! bottleneck moves — the OP baseline is traffic-bound and scales with
//! bandwidth, HyMM is compute-bound much earlier.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin ablation_bandwidth -- [--scale N] [--datasets AP] [--threads N]
//! ```

use hymm_bench::pool;
use hymm_bench::table::TextTable;
use hymm_bench::BenchArgs;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_gcn::{run_inference, GcnModel};

fn main() {
    let mut args = BenchArgs::from_env();
    // Default (all seven datasets) means "no explicit choice": pick the
    // paper's peak-effect dataset. An explicit --datasets list is honoured
    // (first entry).
    if args.datasets.len() == hymm_graph::datasets::Dataset::ALL.len() {
        args.datasets = vec![hymm_graph::datasets::Dataset::AmazonPhoto];
    }
    if args.datasets.len() > 1 {
        eprintln!(
            "[ablation] multiple datasets given; using the first ({})",
            args.datasets[0].abbrev()
        );
    }
    let dataset = args.datasets[0];
    let w = match args.scale {
        Some(n) => dataset.synthesize_scaled(n),
        None => dataset.synthesize(),
    };
    let model = GcnModel::two_layer(w.spec.feature_len, w.spec.layer_dim, w.spec.layer_dim, 42);
    println!(
        "Bandwidth sweep on {} (1 GHz clock: 64 B/cycle = 64 GB/s)",
        dataset.name()
    );

    let settings = [(1usize, 32u64), (1, 64), (2, 64), (4, 64)];
    for (channels, bpc) in settings {
        hymm_bench::progress!("[ablation] {channels} x {bpc} B/cyc ...");
    }
    // One job per (bandwidth setting, dataflow); setting-major order lets
    // the rows below read each setting's three reports consecutively.
    let jobs: Vec<((usize, u64), Dataflow)> = settings
        .iter()
        .flat_map(|&s| Dataflow::ALL.into_iter().map(move |df| (s, df)))
        .collect();
    let reports = pool::map_indexed(args.worker_threads(), &jobs, |_, &((channels, bpc), df)| {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.dram_channels = channels;
        cfg.mem.dram_bytes_per_cycle = bpc;
        run_inference(&cfg, df, &w.adjacency, &w.features, &model)
            .expect("shapes consistent")
            .report
    });

    let mut t = TextTable::new(vec![
        "channels x B/cyc",
        "GB/s",
        "OP cycles",
        "RWP cycles",
        "HyMM cycles",
        "HyMM util",
    ]);
    for ((channels, bpc), group) in settings.iter().zip(reports.chunks(Dataflow::ALL.len())) {
        let hy_util = Dataflow::ALL
            .into_iter()
            .zip(group)
            .find(|(df, _)| *df == Dataflow::Hybrid)
            .map(|(_, r)| r.alu_utilization())
            .unwrap_or(0.0);
        t.row(vec![
            format!("{channels} x {bpc}"),
            (*channels as u64 * bpc).to_string(),
            group[0].cycles.to_string(),
            group[1].cycles.to_string(),
            group[2].cycles.to_string(),
            format!("{:.1}%", hy_util * 100.0),
        ]);
    }
    println!("{}", t.render());
}
