//! Extension study: off-chip bandwidth sensitivity.
//!
//! The paper assumes a single 64 GB/s DRAM channel (§IV). This sweep varies
//! channel count and per-channel bandwidth to show where each dataflow's
//! bottleneck moves — the OP baseline is traffic-bound and scales with
//! bandwidth, HyMM is compute-bound much earlier.
//!
//! ```text
//! cargo run --release -p hymm-bench --bin ablation_bandwidth -- [--scale N] [--datasets AP]
//! ```

use hymm_bench::table::TextTable;
use hymm_bench::BenchArgs;
use hymm_core::config::{AcceleratorConfig, Dataflow};
use hymm_gcn::{run_inference, GcnModel};

fn main() {
    let mut args = BenchArgs::from_env();
    // Default (all seven datasets) means "no explicit choice": pick the
    // paper's peak-effect dataset. An explicit --datasets list is honoured
    // (first entry).
    if args.datasets.len() == hymm_graph::datasets::Dataset::ALL.len() {
        args.datasets = vec![hymm_graph::datasets::Dataset::AmazonPhoto];
    }
    if args.datasets.len() > 1 {
        eprintln!(
            "[ablation] multiple datasets given; using the first ({})",
            args.datasets[0].abbrev()
        );
    }
    let dataset = args.datasets[0];
    let w = match args.scale {
        Some(n) => dataset.synthesize_scaled(n),
        None => dataset.synthesize(),
    };
    let model = GcnModel::two_layer(w.spec.feature_len, w.spec.layer_dim, w.spec.layer_dim, 42);
    println!("Bandwidth sweep on {} (1 GHz clock: 64 B/cycle = 64 GB/s)", dataset.name());
    let mut t = TextTable::new(vec![
        "channels x B/cyc", "GB/s", "OP cycles", "RWP cycles", "HyMM cycles", "HyMM util",
    ]);
    for (channels, bpc) in [(1usize, 32u64), (1, 64), (2, 64), (4, 64)] {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.dram_channels = channels;
        cfg.mem.dram_bytes_per_cycle = bpc;
        eprintln!("[ablation] {channels} x {bpc} B/cyc ...");
        let mut cycles = Vec::new();
        let mut hy_util = 0.0;
        for df in Dataflow::ALL {
            let r = run_inference(&cfg, df, &w.adjacency, &w.features, &model)
                .expect("shapes consistent")
                .report;
            if df == Dataflow::Hybrid {
                hy_util = r.alu_utilization();
            }
            cycles.push(r.cycles);
        }
        t.row(vec![
            format!("{channels} x {bpc}"),
            (channels as u64 * bpc).to_string(),
            cycles[0].to_string(),
            cycles[1].to_string(),
            cycles[2].to_string(),
            format!("{:.1}%", hy_util * 100.0),
        ]);
    }
    println!("{}", t.render());
}
