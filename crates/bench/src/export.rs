//! CSV export of the experiment results, for plotting the paper's figures
//! with external tools.
//!
//! `all_experiments --csv <dir>` writes one file per figure with one row per
//! (dataset, series) point, mirroring the text tables of [`crate::figures`].

use crate::runner::DatasetResults;
use hymm_mem::MatrixKind;
use std::fs;
use std::io::Write;
use std::path::Path;

fn write_file(dir: &Path, name: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
    let mut f = fs::File::create(dir.join(name))?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}

/// Writes `fig2.csv` … `fig11.csv` and `table2.csv` into `dir` (created if
/// missing).
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the files,
/// or a [`crate::runner::MissingRunError`] (wrapped as
/// [`std::io::ErrorKind::Other`]) if a required dataflow variant is absent.
pub fn write_csvs(results: &[DatasetResults], dir: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;

    let mut table2 = Vec::new();
    let mut fig2 = Vec::new();
    let mut fig6 = Vec::new();
    let mut fig7 = Vec::new();
    let mut fig8 = Vec::new();
    let mut fig9 = Vec::new();
    let mut fig10 = Vec::new();
    let mut fig11 = Vec::new();

    for r in results {
        let ds = r.spec.dataset.abbrev();
        table2.push(format!(
            "{ds},{},{},{:.4},{:.4},{},{},{:.3}",
            r.spec.nodes,
            r.spec.edges,
            r.spec.adjacency_sparsity,
            r.spec.feature_sparsity,
            r.spec.feature_len,
            r.spec.layer_dim,
            r.sort_cost_ms
        ));
        for (frac, share) in r.degrees.cumulative_curve(20) {
            fig2.push(format!("{ds},{frac:.2},{share:.6}"));
        }
        fig6.push(format!(
            "{ds},{},{},{:.6}",
            r.storage.plain_bytes,
            r.storage.tiled_bytes,
            r.storage.overhead()
        ));
        let op = r.run("OP").map_err(std::io::Error::other)?.report.cycles as f64;
        for label in ["OP", "RWP", "HyMM"] {
            let rep = &r.run(label).map_err(std::io::Error::other)?.report;
            fig7.push(format!(
                "{ds},{label},{},{:.4}",
                rep.cycles,
                op / rep.cycles as f64
            ));
            fig8.push(format!("{ds},{label},{:.6}", rep.alu_utilization()));
            fig9.push(format!("{ds},{label},{:.6}", rep.dmb_hit_rate()));
            let k = |kind: MatrixKind| rep.dram.kind(kind).total_bytes();
            fig11.push(format!(
                "{ds},{label},{},{},{},{},{},{}",
                k(MatrixKind::SparseA),
                k(MatrixKind::SparseX),
                k(MatrixKind::Weight),
                k(MatrixKind::Combination),
                k(MatrixKind::Output),
                rep.dram_bytes()
            ));
        }
        for label in ["OP", "HyMM-noacc", "HyMM"] {
            fig10.push(format!(
                "{ds},{label},{}",
                r.run(label)
                    .map_err(std::io::Error::other)?
                    .report
                    .partials
                    .peak_bytes
            ));
        }
    }

    write_file(
        dir,
        "table2.csv",
        "dataset,nodes,edges,adj_sparsity,feat_sparsity,feat_len,layer_dim,sort_cost_ms",
        &table2,
    )?;
    write_file(dir, "fig2.csv", "dataset,node_fraction,edge_share", &fig2)?;
    write_file(
        dir,
        "fig6.csv",
        "dataset,plain_bytes,tiled_bytes,overhead",
        &fig6,
    )?;
    write_file(
        dir,
        "fig7.csv",
        "dataset,dataflow,cycles,speedup_vs_op",
        &fig7,
    )?;
    write_file(dir, "fig8.csv", "dataset,dataflow,alu_utilization", &fig8)?;
    write_file(dir, "fig9.csv", "dataset,dataflow,dmb_hit_rate", &fig9)?;
    write_file(
        dir,
        "fig10.csv",
        "dataset,series,peak_partial_bytes",
        &fig10,
    )?;
    write_file(
        dir,
        "fig11.csv",
        "dataset,dataflow,a_bytes,x_bytes,w_bytes,xw_bytes,axw_bytes,total_bytes",
        &fig11,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_dataset;
    use hymm_graph::datasets::Dataset;

    #[test]
    fn writes_all_csv_files() {
        let results = vec![run_dataset(Dataset::Cora, Some(150))];
        let dir = std::env::temp_dir().join("hymm_csv_test");
        let _ = fs::remove_dir_all(&dir);
        write_csvs(&results, &dir).expect("csv export succeeds");
        for name in [
            "table2.csv",
            "fig2.csv",
            "fig6.csv",
            "fig7.csv",
            "fig8.csv",
            "fig9.csv",
            "fig10.csv",
            "fig11.csv",
        ] {
            let content = fs::read_to_string(dir.join(name)).expect("file exists");
            assert!(content.lines().count() >= 2, "{name} has no data rows");
            assert!(content.contains("CR"), "{name} missing dataset rows");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_count_does_not_change_exports() {
        use crate::args::BenchArgs;
        use crate::runner::run_suite;

        let mk = |threads| BenchArgs {
            scale: Some(150),
            datasets: vec![Dataset::Cora, Dataset::AmazonPhoto],
            threads,
            ..BenchArgs::default()
        };
        let serial_dir = std::env::temp_dir().join("hymm_csv_serial");
        let parallel_dir = std::env::temp_dir().join("hymm_csv_parallel");
        let _ = fs::remove_dir_all(&serial_dir);
        let _ = fs::remove_dir_all(&parallel_dir);
        write_csvs(&run_suite(&mk(1)), &serial_dir).expect("serial export succeeds");
        write_csvs(&run_suite(&mk(4)), &parallel_dir).expect("parallel export succeeds");

        // Every simulated quantity must be byte-identical at any thread
        // count. table2.csv is excluded: its sort_cost_ms column is host
        // wall-clock, nondeterministic even between two serial runs.
        for name in [
            "fig2.csv",
            "fig6.csv",
            "fig7.csv",
            "fig8.csv",
            "fig9.csv",
            "fig10.csv",
            "fig11.csv",
        ] {
            let serial = fs::read(serial_dir.join(name)).expect("serial file exists");
            let parallel = fs::read(parallel_dir.join(name)).expect("parallel file exists");
            assert_eq!(
                serial, parallel,
                "{name} differs between --threads 1 and --threads 4"
            );
        }
        let _ = fs::remove_dir_all(&serial_dir);
        let _ = fs::remove_dir_all(&parallel_dir);
    }
}
