//! The load/store queue (LSQ).
//!
//! The 128-entry LSQ (paper Table III) sits between the SMQ/PEs and the DMB.
//! Its two architectural jobs (paper §IV-B):
//!
//! 1. **Store-to-load forwarding** — combination-phase stores of `XW` rows
//!    are forwarded to aggregation-phase loads of the same rows without a
//!    round trip through the buffer or DRAM.
//! 2. **Latency hiding** — entries admit new operations while older missed
//!    loads are still outstanding; capacity is the memory-level-parallelism
//!    window of the engines.
//!
//! The paper notes the LSQ "does not need to track the order of store
//! instructions" because every output address is written exactly once per
//! phase, which is why this model keeps a simple FIFO.

use crate::address::LineAddr;
use crate::config::MemConfig;
use crate::trace::{LsqOpKind, TraceData, TraceEvent, TraceKind, TraceRing, Track};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct Entry {
    addr: LineAddr,
    /// Cycle at which the entry's data is available (loads) or drained
    /// (stores).
    ready: u64,
    is_store: bool,
}

#[derive(Debug, Clone, Copy)]
struct ForwardSlot {
    addr: LineAddr,
    /// Data-ready cycle of the youngest queued store to `addr` — the one
    /// forwarding semantics select.
    youngest_ready: u64,
    /// Queued stores to `addr`; the slot dies when the last one retires.
    stores: u32,
}

/// Open-addressed index from address to the youngest queued store, replacing
/// the O(queue) reverse scan on every load. Sized for the queue capacity up
/// front (a full queue has at most `capacity` distinct store addresses), so
/// it never allocates after construction; removal uses backward-shift
/// deletion to stay tombstone-free.
#[derive(Debug, Clone)]
struct ForwardIndex {
    slots: Vec<Option<ForwardSlot>>,
    mask: usize,
}

impl ForwardIndex {
    fn with_capacity(entries: usize) -> ForwardIndex {
        let len = (entries * 2).next_power_of_two().max(8);
        ForwardIndex {
            slots: vec![None; len],
            mask: len - 1,
        }
    }

    fn home(&self, addr: LineAddr) -> usize {
        let key = (addr.index << 3) ^ addr.kind.index() as u64;
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize) & self.mask
    }

    /// Slot holding `addr`, or the empty slot where it would be inserted.
    fn probe(&self, addr: LineAddr) -> usize {
        let mut b = self.home(addr);
        while let Some(s) = &self.slots[b] {
            if s.addr == addr {
                return b;
            }
            b = (b + 1) & self.mask;
        }
        b
    }

    fn youngest_store(&self, addr: LineAddr) -> Option<u64> {
        self.slots[self.probe(addr)].map(|s| s.youngest_ready)
    }

    fn push_store(&mut self, addr: LineAddr, ready: u64) {
        let b = self.probe(addr);
        match &mut self.slots[b] {
            Some(s) => {
                s.youngest_ready = ready;
                s.stores += 1;
            }
            slot @ None => {
                *slot = Some(ForwardSlot {
                    addr,
                    youngest_ready: ready,
                    stores: 1,
                })
            }
        }
    }

    /// Retires one queued store to `addr` (FIFO retirement pops the oldest,
    /// so a surviving slot still names the youngest store's ready cycle).
    fn retire_store(&mut self, addr: LineAddr) {
        let b = self.probe(addr);
        let Some(s) = &mut self.slots[b] else { return };
        s.stores -= 1;
        if s.stores > 0 {
            return;
        }
        // Backward-shift deletion keeps probe chains contiguous.
        let mask = self.mask;
        let mut hole = b;
        let mut j = b;
        loop {
            j = (j + 1) & mask;
            let Some(entry) = self.slots[j] else { break };
            let home = self.home(entry.addr);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = Some(entry);
                hole = j;
            }
        }
        self.slots[hole] = None;
    }

    fn clear(&mut self) {
        self.slots.fill(None);
    }
}

/// Outcome of admitting a load into the LSQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPath {
    /// The load's address matched a store entry; data is forwarded.
    Forwarded {
        /// Cycle at which the forwarded data is available.
        ready: u64,
    },
    /// The load must be issued to the DMB at the given cycle; the caller
    /// performs the access and then calls [`Lsq::complete_load`].
    Issue {
        /// Earliest cycle at which the buffer access may start (after any
        /// capacity stall).
        at: u64,
    },
}

/// Counters exported by the LSQ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsqStats {
    /// Loads admitted.
    pub loads: u64,
    /// Stores admitted.
    pub stores: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub forwards: u64,
    /// Admissions delayed by a full queue.
    pub capacity_stalls: u64,
    /// Total cycles admissions waited for a full queue to drain (the stall
    /// *depth* behind `capacity_stalls`).
    pub capacity_stall_cycles: u64,
}

impl LsqStats {
    /// Accumulates another counter set — the single place report merging
    /// sums LSQ fields, so a new counter cannot silently be dropped.
    pub fn merge(&mut self, other: &LsqStats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.forwards += other.forwards;
        self.capacity_stalls += other.capacity_stalls;
        self.capacity_stall_cycles += other.capacity_stall_cycles;
    }
}

/// The load/store queue.
///
/// # Example
///
/// ```
/// use hymm_mem::lsq::LoadPath;
/// use hymm_mem::{LineAddr, Lsq, MatrixKind, MemConfig};
///
/// let mut lsq = Lsq::new(&MemConfig::default());
/// let addr = LineAddr::new(MatrixKind::Combination, 3);
/// lsq.store(0, addr, 10); // XW[3] produced at cycle 10
/// match lsq.load(5, addr) {
///     LoadPath::Forwarded { ready } => assert_eq!(ready, 11),
///     LoadPath::Issue { .. } => unreachable!("store is still queued"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Lsq {
    capacity: usize,
    entries: VecDeque<Entry>,
    forwards: ForwardIndex,
    /// Queued (un-retired) stores per [`MatrixKind`], indexed by
    /// `kind.index()`. A load may skip the forward-index probe entirely when
    /// its kind's count is zero: forwarding matches the exact `LineAddr`
    /// (kind + index), so no queued store of another kind can ever forward
    /// to it.
    queued_stores: [u32; 5],
    stats: LsqStats,
    trace: Option<Box<TraceRing>>,
}

impl Lsq {
    /// Creates an empty LSQ from the memory configuration.
    pub fn new(config: &MemConfig) -> Lsq {
        let capacity = config.lsq_entries.max(1);
        Lsq {
            capacity,
            // Occupancy never exceeds capacity, so neither buffer ever grows.
            entries: VecDeque::with_capacity(capacity),
            forwards: ForwardIndex::with_capacity(capacity),
            queued_stores: [0; 5],
            stats: LsqStats::default(),
            trace: config.trace_ring(),
        }
    }

    /// Span entry hook of the event-driven core. Deliberately a no-op: the
    /// forward index is already O(1) per probe, and measurement showed that
    /// deferring its maintenance into the span (probing by reverse queue
    /// scan instead) loses badly in store-heavy phases — the OP materialize
    /// merge pass queues same-kind stores that never match, turning every
    /// load probe into a full-queue scan. Kept as an explicit hook so the
    /// machine's span protocol stays uniform across components.
    pub fn begin_span(&mut self) {}

    /// Span exit hook; no-op — see [`Lsq::begin_span`].
    pub fn end_span(&mut self) {}

    /// Makes room for a new entry; returns the (possibly stalled) admission
    /// cycle.
    fn admit(&mut self, now: u64) -> u64 {
        if self.entries.len() < self.capacity {
            return now;
        }
        self.stats.capacity_stalls += 1;
        // The oldest entry retires once its data is ready.
        let oldest = self.entries.pop_front().expect("queue is full");
        if oldest.is_store {
            self.forwards.retire_store(oldest.addr);
            self.queued_stores[oldest.addr.kind.index()] -= 1;
        }
        let at = now.max(oldest.ready);
        self.stats.capacity_stall_cycles += at - now;
        at
    }

    fn trace_op(&mut self, at: u64, op: LsqOpKind) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.push(TraceEvent {
                track: Track::Lsq,
                kind: TraceKind::LsqOp {
                    op,
                    occupancy: self.entries.len() as u32,
                },
                ts: at,
                dur: 0,
            });
        }
    }

    /// Admits a load of `addr` at cycle `now`.
    ///
    /// If a store to the same address is in flight, the data is forwarded in
    /// one cycle. Otherwise the caller must perform the DMB access starting
    /// at the returned cycle and report its completion via
    /// [`Lsq::complete_load`].
    pub fn load(&mut self, now: u64, addr: LineAddr) -> LoadPath {
        let at = self.admit(now);
        self.stats.loads += 1;
        if self.queued_stores[addr.kind.index()] == 0 {
            // No queued store of this kind exists, so no address can match.
            self.trace_op(at, LsqOpKind::Load);
            return LoadPath::Issue { at };
        }
        if let Some(store_ready) = self.forwards.youngest_store(addr) {
            self.stats.forwards += 1;
            let ready = at.max(store_ready) + 1;
            self.entries.push_back(Entry {
                addr,
                ready,
                is_store: false,
            });
            self.trace_op(at, LsqOpKind::LoadForwarded);
            LoadPath::Forwarded { ready }
        } else {
            self.trace_op(at, LsqOpKind::Load);
            LoadPath::Issue { at }
        }
    }

    /// Records the completion cycle of a load previously returned as
    /// [`LoadPath::Issue`].
    pub fn complete_load(&mut self, addr: LineAddr, ready: u64) {
        self.entries.push_back(Entry {
            addr,
            ready,
            is_store: false,
        });
    }

    /// Admits a store of `addr` whose data is available at `data_ready`;
    /// returns the cycle at which the store occupies its entry (the caller
    /// then drains it to the DMB).
    pub fn store(&mut self, now: u64, addr: LineAddr, data_ready: u64) -> u64 {
        let at = self.admit(now);
        self.stats.stores += 1;
        let ready = at.max(data_ready);
        self.entries.push_back(Entry {
            addr,
            ready,
            is_store: true,
        });
        self.forwards.push_store(addr, ready);
        self.queued_stores[addr.kind.index()] += 1;
        self.trace_op(at, LsqOpKind::Store);
        ready
    }

    /// Whether a queued (un-retired) store to `addr` exists — a load of the
    /// address would forward rather than reach the DMB. Read-only probe used
    /// by the prefetcher to skip addresses the LSQ already covers; it does
    /// not admit an entry or advance any clock.
    pub fn has_queued_store(&self, addr: LineAddr) -> bool {
        if self.queued_stores[addr.kind.index()] == 0 {
            return false;
        }
        self.forwards.youngest_store(addr).is_some()
    }

    /// Wake-time contract of the event-driven core: the earliest future
    /// cycle at which this component's state changes on its own — the ready
    /// cycle of the oldest entry (the next retirement a full queue would
    /// wait on), or `u64::MAX` when the queue is empty.
    pub fn next_event_cycle(&self) -> u64 {
        self.entries.front().map_or(u64::MAX, |e| e.ready)
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters.
    pub fn stats(&self) -> LsqStats {
        self.stats
    }

    /// Moves any buffered trace events into `into` (no-op when tracing is
    /// disabled).
    pub fn drain_trace(&mut self, into: &mut TraceData) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.drain_into(into);
        }
    }

    /// Drops all entries (between GCN layers, when address spaces are
    /// reused for new matrices).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.forwards.clear();
        self.queued_stores = [0; 5];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::MatrixKind;

    fn lsq(capacity: usize) -> Lsq {
        let cfg = MemConfig {
            lsq_entries: capacity,
            ..MemConfig::default()
        };
        Lsq::new(&cfg)
    }

    fn a(i: u64) -> LineAddr {
        LineAddr::new(MatrixKind::Combination, i)
    }

    #[test]
    fn load_with_no_store_issues() {
        let mut q = lsq(4);
        match q.load(5, a(0)) {
            LoadPath::Issue { at } => assert_eq!(at, 5),
            other => panic!("expected issue, got {other:?}"),
        }
    }

    #[test]
    fn store_to_load_forwarding() {
        let mut q = lsq(4);
        q.store(0, a(3), 10);
        match q.load(2, a(3)) {
            LoadPath::Forwarded { ready } => assert_eq!(ready, 11), // store data at 10, +1 forward
            other => panic!("expected forward, got {other:?}"),
        }
        assert_eq!(q.stats().forwards, 1);
    }

    #[test]
    fn forwarding_uses_youngest_store() {
        let mut q = lsq(8);
        q.store(0, a(3), 10);
        q.store(0, a(3), 20);
        match q.load(30, a(3)) {
            LoadPath::Forwarded { ready } => assert_eq!(ready, 31),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn no_forward_from_other_address() {
        let mut q = lsq(4);
        q.store(0, a(1), 10);
        assert!(matches!(q.load(2, a(2)), LoadPath::Issue { .. }));
    }

    #[test]
    fn capacity_stall_waits_for_oldest() {
        let mut q = lsq(2);
        q.store(0, a(0), 100);
        q.store(0, a(1), 50);
        // Queue full; oldest (ready at 100) must retire first.
        let at = match q.load(10, a(9)) {
            LoadPath::Issue { at } => at,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(at, 100);
        assert_eq!(q.stats().capacity_stalls, 1);
        assert_eq!(q.stats().capacity_stall_cycles, 90); // waited 10 → 100
    }

    #[test]
    fn stats_merge_sums_every_counter() {
        let a = LsqStats {
            loads: 1,
            stores: 2,
            forwards: 3,
            capacity_stalls: 4,
            capacity_stall_cycles: 5,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            LsqStats {
                loads: 2,
                stores: 4,
                forwards: 6,
                capacity_stalls: 8,
                capacity_stall_cycles: 10,
            }
        );
    }

    #[test]
    fn trace_records_ops_when_enabled() {
        use crate::trace::{LsqOpKind, TraceData, TraceKind};
        let cfg = MemConfig {
            lsq_entries: 4,
            trace: true,
            ..MemConfig::default()
        };
        let mut q = Lsq::new(&cfg);
        q.store(0, a(3), 10);
        let _ = q.load(2, a(3)); // forwarded
        let _ = q.load(2, a(7)); // issue
        let mut data = TraceData::new();
        q.drain_trace(&mut data);
        let ops: Vec<LsqOpKind> = data
            .events
            .iter()
            .map(|e| match e.kind {
                TraceKind::LsqOp { op, .. } => op,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            ops,
            [LsqOpKind::Store, LsqOpKind::LoadForwarded, LsqOpKind::Load]
        );
    }

    #[test]
    fn complete_load_records_entry() {
        let mut q = lsq(2);
        if let LoadPath::Issue { at } = q.load(0, a(0)) {
            q.complete_load(a(0), at + 100);
        }
        assert_eq!(q.occupancy(), 1);
    }

    #[test]
    fn retired_store_keeps_forwarding_from_younger_duplicate() {
        let mut q = lsq(2);
        q.store(0, a(0), 10);
        q.store(0, a(0), 20);
        // Queue full: the next load retires the older duplicate store; the
        // younger one must still forward.
        match q.load(0, a(0)) {
            LoadPath::Forwarded { ready } => assert_eq!(ready, 21),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn has_queued_store_is_read_only() {
        let mut q = lsq(4);
        assert!(!q.has_queued_store(a(3)));
        q.store(0, a(3), 10);
        assert!(q.has_queued_store(a(3)));
        assert!(!q.has_queued_store(a(4)));
        // The probe admits nothing: occupancy and stats are untouched.
        assert_eq!(q.occupancy(), 1);
        assert_eq!(q.stats().loads, 0);
    }

    /// The span hooks are documented no-ops: driving the same operation
    /// sequence with and without them must be bit-identical (this pins the
    /// contract the machine's span protocol relies on).
    #[test]
    fn span_hooks_do_not_change_behaviour() {
        let run = |span: bool| {
            let mut q = lsq(4);
            if span {
                q.begin_span();
            }
            let mut log = Vec::new();
            // Mixed stores/loads with duplicates and capacity pressure.
            for i in 0..12u64 {
                log.push(q.store(i, a(i % 3), i + 10));
            }
            for i in 0..12u64 {
                match q.load(20 + i, a(i % 5)) {
                    LoadPath::Forwarded { ready } => log.push(ready),
                    LoadPath::Issue { at } => {
                        q.complete_load(a(i % 5), at + 7);
                        log.push(at);
                    }
                }
            }
            log.push(q.has_queued_store(a(1)) as u64);
            if span {
                q.end_span();
            }
            match q.load(100, a(2)) {
                LoadPath::Forwarded { ready } => log.push(ready),
                LoadPath::Issue { at } => log.push(at),
            }
            (log, q.stats(), q.occupancy())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn next_event_cycle_tracks_oldest_entry() {
        let mut q = lsq(4);
        assert_eq!(q.next_event_cycle(), u64::MAX);
        q.store(0, a(0), 42);
        q.store(0, a(1), 17);
        assert_eq!(q.next_event_cycle(), 42);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = lsq(2);
        q.store(0, a(0), 1);
        q.clear();
        assert_eq!(q.occupancy(), 0);
        // forwarding no longer possible
        assert!(matches!(q.load(2, a(0)), LoadPath::Issue { .. }));
    }
}
