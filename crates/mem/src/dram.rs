//! Off-chip DRAM model: shared bandwidth, fixed access latency, and a
//! row-buffer penalty for random accesses.
//!
//! The paper assumes 64 GB/s of off-chip bandwidth (§IV). At the
//! accelerator's clock this becomes a per-cycle byte budget; requests are
//! served FIFO in arrival order, each occupying the channel for
//! `ceil(bytes / bytes_per_cycle)` cycles — plus a **random-access penalty**
//! for requests that do not stream (row-buffer misses: scattered 64-byte
//! reads/writes reach only a fraction of peak DRAM bandwidth). Reads
//! complete a fixed latency after their transfer finishes; writes are
//! posted. Every request carries a [`MatrixKind`] tag so the Fig. 11 access
//! breakdown is a free by-product.

use crate::address::MatrixKind;
use crate::config::MemConfig;
use crate::stats::TrafficStats;
use crate::trace::{TraceData, TraceEvent, TraceKind, TraceRing, Track};

/// Whether a DRAM request streams sequential addresses (row-buffer hits) or
/// scatters (row-buffer misses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Sequential/streaming: full bandwidth.
    Sequential,
    /// Scattered: pays the configured random-access penalty in channel
    /// occupancy.
    Random,
}

/// The off-chip memory: one or more independent channels sharing a request
/// stream; each request is placed on the earliest-free channel.
///
/// # Example
///
/// ```
/// use hymm_mem::dram::{AccessPattern, Dram};
/// use hymm_mem::{MatrixKind, MemConfig};
///
/// let config = MemConfig::default();
/// let mut dram = Dram::new(&config);
/// let ready = dram.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential);
/// assert_eq!(ready, 1 + config.dram_latency); // 1 transfer cycle + latency
/// assert_eq!(dram.stats().kind(MatrixKind::Weight).read_bytes, 64);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    bytes_per_cycle: u64,
    latency: u64,
    random_penalty: u64,
    channel_busy: Vec<u64>,
    busy_cycles: u64,
    /// Cumulative transfer cycles booked per channel — what the metrics
    /// sampler differences to compute per-channel busy fractions
    /// (`channel_busy` holds busy-*until* timestamps, not durations).
    channel_busy_cycles: Vec<u64>,
    stats: TrafficStats,
    trace: Option<Box<TraceRing>>,
}

impl Dram {
    /// Creates a DRAM channel from the memory configuration.
    pub fn new(config: &MemConfig) -> Dram {
        Dram {
            bytes_per_cycle: config.dram_bytes_per_cycle.max(1),
            latency: config.dram_latency,
            random_penalty: config.dram_random_penalty,
            channel_busy: vec![0; config.dram_channels.max(1)],
            busy_cycles: 0,
            channel_busy_cycles: vec![0; config.dram_channels.max(1)],
            stats: TrafficStats::new(),
            trace: config.trace_ring(),
        }
    }

    /// Issues a read of `bytes` tagged `kind` at cycle `now`; returns the
    /// completion cycle (data available).
    pub fn read(&mut self, now: u64, kind: MatrixKind, bytes: u64, pattern: AccessPattern) -> u64 {
        self.stats.record_read(kind, bytes);
        self.occupy(now, kind, bytes, pattern, false) + self.latency
    }

    /// Issues a write of `bytes` tagged `kind` at cycle `now`; returns the
    /// cycle at which the channel has accepted the data (writes are posted —
    /// the caller does not wait for the array update).
    pub fn write(&mut self, now: u64, kind: MatrixKind, bytes: u64, pattern: AccessPattern) -> u64 {
        self.stats.record_write(kind, bytes);
        self.occupy(now, kind, bytes, pattern, true)
    }

    fn occupy(
        &mut self,
        now: u64,
        kind: MatrixKind,
        bytes: u64,
        pattern: AccessPattern,
        is_write: bool,
    ) -> u64 {
        // Earliest-free channel (trivially channel 0 in the default
        // single-channel configuration — skip the scan there).
        let idx = if self.channel_busy.len() == 1 {
            0
        } else {
            self.channel_busy
                .iter()
                .enumerate()
                .min_by_key(|(_, &b)| b)
                .map(|(i, _)| i)
                .expect("at least one channel")
        };
        let start = now.max(self.channel_busy[idx]);
        let mut transfer = bytes.div_ceil(self.bytes_per_cycle);
        if pattern == AccessPattern::Random {
            transfer += self.random_penalty;
        }
        self.channel_busy[idx] = start + transfer;
        self.busy_cycles += transfer;
        self.channel_busy_cycles[idx] += transfer;
        if let Some(t) = self.trace.as_deref_mut() {
            t.push(TraceEvent {
                track: Track::DramChannel(idx as u16),
                kind: TraceKind::DramBusy {
                    kind,
                    bytes,
                    is_write,
                },
                ts: start,
                dur: transfer,
            });
        }
        self.channel_busy[idx]
    }

    /// Cycle up to which the busiest channel is occupied.
    pub fn busy_until(&self) -> u64 {
        self.channel_busy.iter().copied().max().unwrap_or(0)
    }

    /// Wake-time contract of the event-driven core: the earliest cycle at
    /// which a channel frees up (a queued request issued then starts with no
    /// channel wait). All channels idle yields 0 — "ready whenever".
    pub fn next_event_cycle(&self) -> u64 {
        self.channel_busy.iter().copied().min().unwrap_or(0)
    }

    /// Whether every channel is still busy at cycle `now` — a request issued
    /// now could not start immediately. The zero-slack special case of
    /// [`Dram::backlogged`].
    pub fn saturated(&self, now: u64) -> bool {
        self.backlogged(now, 0)
    }

    /// Whether every channel is still busy past `now + slack` — the request
    /// backlog is deep enough that a transfer issued now would wait more
    /// than `slack` cycles to even start. The prefetcher drops candidates
    /// in this state instead of queueing them behind demand traffic
    /// (ordinary pipelining behind one or two in-flight transfers is fine;
    /// a bandwidth-bound backlog is not).
    pub fn backlogged(&self, now: u64, slack: u64) -> bool {
        self.channel_busy.iter().all(|&b| b > now + slack)
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channel_busy.len()
    }

    /// Total channel-busy cycles accumulated across all channels (the
    /// bandwidth-bound component of the stall waterfall).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Cumulative transfer cycles per channel (indexes parallel to
    /// [`Self::channels`]). Sums to [`Self::busy_cycles`].
    pub fn channel_busy_cycles(&self) -> &[u64] {
        &self.channel_busy_cycles
    }

    /// Moves any buffered trace events into `into` (no-op when tracing is
    /// disabled).
    pub fn drain_trace(&mut self, into: &mut TraceData) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.drain_into(into);
        }
    }

    /// Accumulated traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Consumes the model, yielding its traffic counters without a copy.
    pub fn into_stats(self) -> TrafficStats {
        self.stats
    }

    /// Fixed access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(&MemConfig::default())
    }

    #[test]
    fn sequential_read_includes_latency_and_transfer() {
        let mut d = dram();
        // 64 bytes = 1 transfer cycle + 100 latency
        assert_eq!(
            d.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential),
            101
        );
    }

    #[test]
    fn random_read_pays_penalty() {
        let mut d = dram();
        // 1 transfer + 2 penalty + 100 latency
        assert_eq!(
            d.read(0, MatrixKind::Weight, 64, AccessPattern::Random),
            103
        );
    }

    #[test]
    fn bandwidth_serialises_requests() {
        let mut d = dram();
        let a = d.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential);
        let b = d.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential);
        assert_eq!(a, 101);
        assert_eq!(b, 102); // second transfer waits for the channel
    }

    #[test]
    fn random_requests_consume_more_channel_time() {
        let mut seq = dram();
        let mut rnd = dram();
        for _ in 0..10 {
            seq.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential);
            rnd.read(0, MatrixKind::Weight, 64, AccessPattern::Random);
        }
        assert_eq!(seq.busy_until(), 10);
        assert_eq!(rnd.busy_until(), 30);
    }

    #[test]
    fn idle_gap_is_not_accumulated() {
        let mut d = dram();
        let _ = d.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential);
        let late = d.read(1000, MatrixKind::Weight, 64, AccessPattern::Sequential);
        assert_eq!(late, 1101);
    }

    #[test]
    fn large_request_occupies_many_cycles() {
        let mut d = dram();
        // 640 bytes = 10 transfer cycles
        assert_eq!(
            d.read(0, MatrixKind::Combination, 640, AccessPattern::Sequential),
            110
        );
    }

    #[test]
    fn writes_are_posted() {
        let mut d = dram();
        let done = d.write(0, MatrixKind::Output, 64, AccessPattern::Sequential);
        assert_eq!(done, 1); // no latency on the requester side
        assert_eq!(d.stats().kind(MatrixKind::Output).write_bytes, 64);
    }

    #[test]
    fn two_channels_serve_in_parallel() {
        let cfg = MemConfig {
            dram_channels: 2,
            ..MemConfig::default()
        };
        let mut d = Dram::new(&cfg);
        let a = d.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential);
        let b = d.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential);
        assert_eq!(a, 101);
        assert_eq!(b, 101); // second request lands on the free channel
        let c = d.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential);
        assert_eq!(c, 102); // third queues behind one of them
        assert_eq!(d.channels(), 2);
    }

    #[test]
    fn saturated_tracks_channel_occupancy() {
        let mut d = dram();
        assert!(!d.saturated(0), "idle channel is not saturated");
        // 640 bytes occupy the single channel for cycles 0..10.
        d.read(0, MatrixKind::Weight, 640, AccessPattern::Sequential);
        assert!(d.saturated(0));
        assert!(d.saturated(9));
        assert!(!d.saturated(10), "free again once the transfer ends");

        let cfg = MemConfig {
            dram_channels: 2,
            ..MemConfig::default()
        };
        let mut d2 = Dram::new(&cfg);
        d2.read(0, MatrixKind::Weight, 640, AccessPattern::Sequential);
        assert!(!d2.saturated(0), "one free channel means not saturated");
        d2.read(0, MatrixKind::Weight, 640, AccessPattern::Sequential);
        assert!(d2.saturated(0));
    }

    #[test]
    fn backlogged_applies_slack_to_every_channel() {
        let mut d = dram();
        // Channel busy for cycles 0..10: a 5-cycle horizon sees a backlog,
        // a 20-cycle horizon does not.
        d.read(0, MatrixKind::Weight, 640, AccessPattern::Sequential);
        assert!(d.backlogged(0, 5));
        assert!(!d.backlogged(0, 20));
        assert!(!d.backlogged(9, 5));
    }

    #[test]
    fn busy_cycles_accumulate_transfer_time() {
        let mut d = dram();
        d.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential); // 1
        d.read(0, MatrixKind::Weight, 64, AccessPattern::Random); // 3
        d.write(0, MatrixKind::Output, 640, AccessPattern::Sequential); // 10
        assert_eq!(d.busy_cycles(), 14);
        assert_eq!(d.channel_busy_cycles(), &[14]);
    }

    #[test]
    fn per_channel_busy_cycles_sum_to_total() {
        let cfg = MemConfig {
            dram_channels: 2,
            ..MemConfig::default()
        };
        let mut d = Dram::new(&cfg);
        // First transfer lands on channel 0, second on the (now freer)
        // channel 1, third back on whichever frees first.
        d.read(0, MatrixKind::Weight, 640, AccessPattern::Sequential); // 10
        d.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential); // 1
        d.read(0, MatrixKind::Weight, 128, AccessPattern::Sequential); // 2
        let per = d.channel_busy_cycles();
        assert_eq!(per.len(), 2);
        assert_eq!(per.iter().sum::<u64>(), d.busy_cycles());
        assert_eq!(per, &[10, 3]);
    }

    #[test]
    fn trace_records_channel_intervals() {
        use crate::trace::{TraceData, TraceKind, Track};
        let cfg = MemConfig {
            trace: true,
            ..MemConfig::default()
        };
        let mut d = Dram::new(&cfg);
        d.read(0, MatrixKind::Weight, 64, AccessPattern::Sequential);
        d.write(5, MatrixKind::Output, 64, AccessPattern::Random);
        let mut data = TraceData::new();
        d.drain_trace(&mut data);
        assert_eq!(data.events.len(), 2);
        assert!(data.events.iter().all(|e| e.track == Track::DramChannel(0)));
        assert_eq!((data.events[0].ts, data.events[0].dur), (0, 1));
        assert_eq!((data.events[1].ts, data.events[1].dur), (5, 3));
        match data.events[1].kind {
            TraceKind::DramBusy {
                kind,
                bytes,
                is_write,
            } => {
                assert_eq!(kind, MatrixKind::Output);
                assert_eq!(bytes, 64);
                assert!(is_write);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn traffic_is_tagged_by_kind() {
        let mut d = dram();
        d.read(0, MatrixKind::SparseA, 64, AccessPattern::Sequential);
        d.read(0, MatrixKind::Combination, 128, AccessPattern::Random);
        d.write(0, MatrixKind::Output, 64, AccessPattern::Random);
        assert_eq!(d.stats().kind(MatrixKind::SparseA).read_bytes, 64);
        assert_eq!(d.stats().kind(MatrixKind::Combination).read_bytes, 128);
        assert_eq!(d.stats().kind(MatrixKind::Output).write_bytes, 64);
        assert_eq!(d.stats().kind(MatrixKind::Weight).total_bytes(), 0);
    }
}
