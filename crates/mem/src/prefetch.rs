//! Data-prefetch policies for the DMB miss path.
//!
//! The prefetcher sits between the engines' DMB accesses and the MSHR pool.
//! It is entirely speculative machinery: prefetches allocate through the
//! same MSHR pool as demand misses but under a configurable occupancy cap
//! ([`crate::MemConfig::prefetch_mshr_cap`]) so demand misses are never
//! starved, are **dropped, never queued** when the DRAM channels or the
//! MSHR pool are saturated, and on fill insert at the **LRU** end of their
//! class so a wrong prefetch cannot evict hot `AXW` partials.
//!
//! Not to be confused with [`crate::MemConfig::smq_lookahead_lines`], which
//! is the SMQ's *index-stream* lookahead (how far ahead of consumption the
//! sparse pointer/index/value stream is fetched). The policies here prefetch
//! the *dense data lines* (`X`/`XW`/`AXW`) that demand misses land on.

/// Which data-prefetch policy drives the DMB miss path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetchPolicy {
    /// No data prefetching (bit-identical to a build without the
    /// subsystem).
    #[default]
    Off,
    /// Degree-N sequential: a demand read miss on line `i` prefetches lines
    /// `i+1 ..= i+degree` of the same matrix.
    NextLine,
    /// SMQ-stream directed: the engines walk the already-fetched CSR/CSC
    /// pointer entries ahead of the compute cursor and hand the machine
    /// dense-line addresses for upcoming rows/columns; the machine drains
    /// up to `degree` of those hints per demand load.
    SmqStream,
}

impl PrefetchPolicy {
    /// Every policy, in CLI/documentation order.
    pub const ALL: [PrefetchPolicy; 3] = [
        PrefetchPolicy::Off,
        PrefetchPolicy::NextLine,
        PrefetchPolicy::SmqStream,
    ];

    /// Parses the CLI spelling (`off`, `next-line`, `smq-stream`).
    pub fn parse(s: &str) -> Option<PrefetchPolicy> {
        match s.trim() {
            "off" => Some(PrefetchPolicy::Off),
            "next-line" => Some(PrefetchPolicy::NextLine),
            "smq-stream" => Some(PrefetchPolicy::SmqStream),
            _ => None,
        }
    }

    /// CLI/report spelling.
    pub fn label(&self) -> &'static str {
        match self {
            PrefetchPolicy::Off => "off",
            PrefetchPolicy::NextLine => "next-line",
            PrefetchPolicy::SmqStream => "smq-stream",
        }
    }

    /// `true` when no prefetching is configured (the default).
    pub fn is_off(&self) -> bool {
        *self == PrefetchPolicy::Off
    }
}

/// Why a prefetch candidate was dropped instead of issued. Prefetches are
/// never queued: any resource conflict discards the candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchDrop {
    /// The line is already resident or already in flight in an MSHR.
    Redundant,
    /// The MSHR pool is full, or prefetches already hold their configured
    /// occupancy cap.
    MshrCap,
    /// Every DRAM channel is busy past the issue cycle.
    DramBusy,
    /// The buffer is at capacity and no line of the prefetch's class or
    /// below is evictable (prefetches never evict above their class).
    NoVictim,
}

impl PrefetchDrop {
    /// Stable label used in traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PrefetchDrop::Redundant => "redundant",
            PrefetchDrop::MshrCap => "mshr-cap",
            PrefetchDrop::DramBusy => "dram-busy",
            PrefetchDrop::NoVictim => "no-victim",
        }
    }
}

/// Accuracy / coverage / timeliness counters for the data prefetcher.
///
/// - **accuracy** — of the lines issued, how many were touched by a demand
///   access before eviction (`useful / issued`);
/// - **coverage** — how much demand miss latency the prefetcher absorbed
///   (visible in the report as the `dmb-miss` vs `prefetch-late` stall
///   split);
/// - **timeliness** — of the useful prefetches, how many arrived before the
///   demand access needed them (`1 - late / useful`), with `late_cycles`
///   the residual exposure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefetchStats {
    /// Prefetch requests issued to DRAM.
    pub issued: u64,
    /// Candidates dropped because the line was resident or in flight.
    pub dropped_redundant: u64,
    /// Candidates dropped at the MSHR occupancy cap (or a full pool).
    pub dropped_mshr_cap: u64,
    /// Candidates dropped because every DRAM channel was saturated.
    pub dropped_dram_busy: u64,
    /// Candidates dropped for lack of an evictable same-or-lower-class
    /// victim line.
    pub dropped_no_victim: u64,
    /// Prefetched lines touched by a demand access before eviction.
    pub useful: u64,
    /// Useful prefetches whose fill had not completed when the demand
    /// access arrived.
    pub late: u64,
    /// Cycles demand accesses spent waiting on in-flight prefetches (the
    /// `prefetch-late` stall class).
    pub late_cycles: u64,
    /// Prefetched lines evicted or flushed without ever being touched
    /// (inaccurate prefetches).
    pub evicted_unused: u64,
}

impl PrefetchStats {
    /// Total dropped candidates across all reasons.
    pub fn dropped(&self) -> u64 {
        self.dropped_redundant
            + self.dropped_mshr_cap
            + self.dropped_dram_busy
            + self.dropped_no_victim
    }

    /// Fraction of issued prefetches that were demand-touched.
    pub fn accuracy(&self) -> f64 {
        self.useful as f64 / self.issued.max(1) as f64
    }

    /// Fraction of useful prefetches that arrived on time.
    pub fn timeliness(&self) -> f64 {
        1.0 - self.late as f64 / self.useful.max(1) as f64
    }

    /// Bumps the drop counter matching `reason`.
    pub fn record_drop(&mut self, reason: PrefetchDrop) {
        match reason {
            PrefetchDrop::Redundant => self.dropped_redundant += 1,
            PrefetchDrop::MshrCap => self.dropped_mshr_cap += 1,
            PrefetchDrop::DramBusy => self.dropped_dram_busy += 1,
            PrefetchDrop::NoVictim => self.dropped_no_victim += 1,
        }
    }

    /// Accumulates `other` into `self` (layer-report merging).
    pub fn merge(&mut self, other: &PrefetchStats) {
        self.issued += other.issued;
        self.dropped_redundant += other.dropped_redundant;
        self.dropped_mshr_cap += other.dropped_mshr_cap;
        self.dropped_dram_busy += other.dropped_dram_busy;
        self.dropped_no_victim += other.dropped_no_victim;
        self.useful += other.useful;
        self.late += other.late;
        self.late_cycles += other.late_cycles;
        self.evicted_unused += other.evicted_unused;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parse_round_trips() {
        for p in PrefetchPolicy::ALL {
            assert_eq!(PrefetchPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(
            PrefetchPolicy::parse(" next-line "),
            Some(PrefetchPolicy::NextLine)
        );
        assert_eq!(PrefetchPolicy::parse("nextline"), None);
        assert_eq!(PrefetchPolicy::parse(""), None);
    }

    #[test]
    fn default_policy_is_off() {
        assert!(PrefetchPolicy::default().is_off());
        assert!(!PrefetchPolicy::SmqStream.is_off());
    }

    #[test]
    fn stats_merge_and_drop_accounting() {
        let mut a = PrefetchStats {
            issued: 10,
            useful: 6,
            late: 2,
            late_cycles: 40,
            ..PrefetchStats::default()
        };
        a.record_drop(PrefetchDrop::Redundant);
        a.record_drop(PrefetchDrop::MshrCap);
        a.record_drop(PrefetchDrop::DramBusy);
        a.record_drop(PrefetchDrop::NoVictim);
        a.record_drop(PrefetchDrop::NoVictim);
        assert_eq!(a.dropped(), 5);

        let mut b = PrefetchStats::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.issued, 20);
        assert_eq!(b.useful, 12);
        assert_eq!(b.dropped_no_victim, 4);
        assert_eq!(b.dropped(), 10);
        assert_eq!(b.late_cycles, 80);
    }

    #[test]
    fn accuracy_and_timeliness_are_guarded() {
        let zero = PrefetchStats::default();
        assert_eq!(zero.accuracy(), 0.0);
        assert_eq!(zero.timeliness(), 1.0);
        let s = PrefetchStats {
            issued: 8,
            useful: 6,
            late: 3,
            ..PrefetchStats::default()
        };
        assert!((s.accuracy() - 0.75).abs() < 1e-12);
        assert!((s.timeliness() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drop_labels_are_stable() {
        assert_eq!(PrefetchDrop::Redundant.label(), "redundant");
        assert_eq!(PrefetchDrop::MshrCap.label(), "mshr-cap");
        assert_eq!(PrefetchDrop::DramBusy.label(), "dram-busy");
        assert_eq!(PrefetchDrop::NoVictim.label(), "no-victim");
    }
}
