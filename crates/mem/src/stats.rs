//! Traffic and hit-rate counters.

use crate::address::MatrixKind;

/// Read/write byte and request counters for one matrix kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Number of read requests.
    pub reads: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

impl Traffic {
    /// Total bytes moved in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Total request count in both directions.
    pub fn total_requests(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Per-matrix-kind traffic table (the paper's Fig. 11 data).
///
/// The grand total is tracked in its own counter, updated alongside the
/// per-kind entries, rather than derived by summation on demand. That
/// redundancy is deliberate: the audit layer compares [`Self::total`]
/// against [`Self::per_kind_sum`], which catches kind-indexing bugs (a
/// request booked under the wrong kind still sums correctly, but a request
/// dropped from or double-counted in the table does not).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    per_kind: [Traffic; 5],
    total: Traffic,
}

impl TrafficStats {
    /// Creates an all-zero table.
    pub fn new() -> TrafficStats {
        TrafficStats::default()
    }

    /// Records a read of `bytes` for `kind`.
    pub fn record_read(&mut self, kind: MatrixKind, bytes: u64) {
        let t = &mut self.per_kind[kind.index()];
        t.reads += 1;
        t.read_bytes += bytes;
        self.total.reads += 1;
        self.total.read_bytes += bytes;
    }

    /// Records a write of `bytes` for `kind`.
    pub fn record_write(&mut self, kind: MatrixKind, bytes: u64) {
        let t = &mut self.per_kind[kind.index()];
        t.writes += 1;
        t.write_bytes += bytes;
        self.total.writes += 1;
        self.total.write_bytes += bytes;
    }

    /// Counters for one kind.
    pub fn kind(&self, kind: MatrixKind) -> Traffic {
        self.per_kind[kind.index()]
    }

    /// Grand total over all kinds, tracked independently of the per-kind
    /// table (see the type docs).
    pub fn total(&self) -> Traffic {
        self.total
    }

    /// Sum of the per-kind entries. Must equal [`Self::total`]; the audit
    /// layer checks exactly that.
    pub fn per_kind_sum(&self) -> Traffic {
        let mut acc = Traffic::default();
        for t in &self.per_kind {
            acc.reads += t.reads;
            acc.read_bytes += t.read_bytes;
            acc.writes += t.writes;
            acc.write_bytes += t.write_bytes;
        }
        acc
    }

    /// Accumulates another table into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for k in MatrixKind::ALL {
            let o = other.kind(k);
            let t = &mut self.per_kind[k.index()];
            t.reads += o.reads;
            t.read_bytes += o.read_bytes;
            t.writes += o.writes;
            t.write_bytes += o.write_bytes;
        }
        self.total.reads += other.total.reads;
        self.total.read_bytes += other.total.read_bytes;
        self.total.writes += other.total.writes;
        self.total.write_bytes += other.total.write_bytes;
    }
}

/// Hit/miss counters for a buffer, split by reads and writes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitStats {
    /// Read requests that hit.
    pub read_hits: u64,
    /// Read requests that missed.
    pub read_misses: u64,
    /// Write requests that found their line resident.
    pub write_hits: u64,
    /// Write requests that allocated or bypassed.
    pub write_misses: u64,
}

impl HitStats {
    /// Overall hit rate across reads and writes, in `[0, 1]`; `1.0` for an
    /// idle buffer.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.read_hits + self.write_hits;
        let total = hits + self.read_misses + self.write_misses;
        if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Read-only hit rate, in `[0, 1]`.
    pub fn read_hit_rate(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            1.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &HitStats) {
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accumulates() {
        let mut s = TrafficStats::new();
        s.record_read(MatrixKind::Weight, 64);
        s.record_read(MatrixKind::Weight, 64);
        s.record_write(MatrixKind::Output, 64);
        assert_eq!(s.kind(MatrixKind::Weight).reads, 2);
        assert_eq!(s.kind(MatrixKind::Weight).read_bytes, 128);
        assert_eq!(s.total().total_bytes(), 192);
        assert_eq!(s.total().total_requests(), 3);
    }

    #[test]
    fn merge_adds_tables() {
        let mut a = TrafficStats::new();
        a.record_read(MatrixKind::SparseA, 64);
        let mut b = TrafficStats::new();
        b.record_read(MatrixKind::SparseA, 64);
        b.record_write(MatrixKind::Combination, 128);
        a.merge(&b);
        assert_eq!(a.kind(MatrixKind::SparseA).reads, 2);
        assert_eq!(a.kind(MatrixKind::Combination).write_bytes, 128);
    }

    #[test]
    fn tracked_total_matches_per_kind_sum() {
        let mut s = TrafficStats::new();
        for (i, k) in MatrixKind::ALL.into_iter().enumerate() {
            s.record_read(k, 64 * (i as u64 + 1));
            s.record_write(k, 32);
        }
        let mut other = TrafficStats::new();
        other.record_read(MatrixKind::Output, 64);
        s.merge(&other);
        assert_eq!(s.total(), s.per_kind_sum());
        assert_eq!(s.total().reads, 6);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut h = HitStats::default();
        assert_eq!(h.hit_rate(), 1.0);
        h.read_hits = 3;
        h.read_misses = 1;
        assert!((h.hit_rate() - 0.75).abs() < 1e-12);
        assert!((h.read_hit_rate() - 0.75).abs() < 1e-12);
        h.write_misses = 4;
        assert!((h.hit_rate() - 3.0 / 8.0).abs() < 1e-12);
    }
}
