//! The sparse matrix queue (SMQ).
//!
//! The SMQ (paper §IV-A, Fig. 4) streams compressed sparse matrices — both
//! CSR and CSC, distinguished by a per-entry flag — from DRAM into the
//! engines. It holds a 4 KB pointer buffer and a 12 KB index buffer
//! (Table III). This model charges DRAM bandwidth for the pointer and
//! index/value streams at 64-byte granularity and prefetches a configurable
//! number of lines ahead, so sparse-metadata traffic shows up in the Fig. 11
//! breakdown and the stream can hide DRAM latency exactly as far as its
//! buffers allow.

use crate::address::MatrixKind;
use crate::config::MemConfig;
use crate::dram::{AccessPattern, Dram};
use crate::trace::{TraceData, TraceEvent, TraceKind, TraceRing, Track};
use std::collections::VecDeque;

/// Compressed format carried by a stream — the `flag` field of an SMQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseFormat {
    /// Compressed sparse row (RWP mode).
    Csr,
    /// Compressed sparse column (OP mode).
    Csc,
}

/// A streaming reader over one compressed sparse matrix.
///
/// `next_entry` returns the cycle at which the next (index, value) pair is
/// available to the engine, charging DRAM traffic as lines are fetched.
///
/// # Example
///
/// ```
/// use hymm_mem::smq::{SmqStream, SparseFormat};
/// use hymm_mem::{Dram, MatrixKind, MemConfig};
///
/// let config = MemConfig::default();
/// let mut dram = Dram::new(&config);
/// let mut stream =
///     SmqStream::new(&config, MatrixKind::SparseA, SparseFormat::Csr, 10, 4);
/// let first = stream.next_entry(0, &mut dram).expect("10 entries queued");
/// assert!(first > 0); // waits for the first line fetch
/// assert_eq!(stream.remaining(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct SmqStream {
    kind: MatrixKind,
    format: SparseFormat,
    entries_per_line: usize,
    ptrs_per_line: usize,
    prefetch_lines: usize,
    total_entries: usize,
    total_idx_lines: usize,
    total_ptr_lines: usize,
    next_entry: usize,
    /// Index lines fetched so far.
    fetched_idx_lines: usize,
    /// Pointer lines fetched so far.
    fetched_ptr_lines: usize,
    /// Ready cycles of fetched-but-unconsumed index lines.
    line_ready: VecDeque<u64>,
    /// Entries still to stream from the current (front) index line. When it
    /// hits zero, the next `next_entry` call crosses a line boundary: only
    /// then can `issue_fetches` have any effect (its target depends solely
    /// on `next_entry / entries_per_line`), so intra-line calls skip the
    /// prefetcher and reuse `line_ready_cached`.
    line_entries_left: usize,
    /// Ready cycle of the current (front) index line.
    line_ready_cached: u64,
    entries_streamed: u64,
    line_bytes: u64,
    /// Cycles the consumer waited for entries that were not yet fetched —
    /// the stream-starvation component of the stall waterfall.
    wait_cycles: u64,
    trace: Option<Box<TraceRing>>,
}

impl SmqStream {
    /// Creates a stream over a sparse matrix with `total_entries` non-zeros
    /// and `total_pointers` pointer records (rows + 1 for CSR, cols + 1 for
    /// CSC), tagged `kind` for traffic accounting.
    pub fn new(
        config: &MemConfig,
        kind: MatrixKind,
        format: SparseFormat,
        total_entries: usize,
        total_pointers: usize,
    ) -> SmqStream {
        // One entry = 4 B index + 4 B value (paper: 32-bit indices, f32).
        let entries_per_line = config.line_bytes / 8;
        let ptrs_per_line = config.line_bytes / 4;
        let total_idx_lines = total_entries.div_ceil(entries_per_line.max(1));
        let total_ptr_lines = total_pointers.div_ceil(ptrs_per_line.max(1));
        // Index-stream lookahead depth bounded by the index buffer capacity
        // (distinct from the data prefetcher, `MemConfig::prefetch`).
        let buffer_lines = (config.smq_idx_bytes / config.line_bytes).max(1);
        let prefetch_lines = config.smq_lookahead_lines.clamp(1, buffer_lines);
        SmqStream {
            kind,
            format,
            entries_per_line: entries_per_line.max(1),
            ptrs_per_line: ptrs_per_line.max(1),
            prefetch_lines,
            total_entries,
            total_idx_lines,
            total_ptr_lines,
            next_entry: 0,
            fetched_idx_lines: 0,
            fetched_ptr_lines: 0,
            // The window holds at most `prefetch_lines` in-flight lines, so
            // streaming never grows it.
            line_ready: VecDeque::with_capacity(prefetch_lines),
            line_entries_left: 0,
            line_ready_cached: 0,
            entries_streamed: 0,
            line_bytes: config.line_bytes as u64,
            wait_cycles: 0,
            trace: config.trace_ring(),
        }
    }

    /// The stream's compressed format flag.
    pub fn format(&self) -> SparseFormat {
        self.format
    }

    /// Non-zero entries remaining.
    pub fn remaining(&self) -> usize {
        self.total_entries - self.next_entry
    }

    /// Total entries streamed so far.
    pub fn entries_streamed(&self) -> u64 {
        self.entries_streamed
    }

    fn issue_fetches(&mut self, now: u64, dram: &mut Dram) {
        // Keep up to `prefetch_lines` index lines fetched ahead of the
        // consumption point, fetching the pointer stream proportionally so
        // its bandwidth is charged as the engine walks rows/columns.
        let consumed_lines = self.next_entry / self.entries_per_line;
        let target = (consumed_lines + self.prefetch_lines).min(self.total_idx_lines);
        while self.fetched_idx_lines < target {
            // Interleave pointer-line fetches evenly with index lines.
            let ptr_target = if self.total_idx_lines == 0 {
                self.total_ptr_lines
            } else {
                ((self.fetched_idx_lines + 1) * self.total_ptr_lines)
                    .div_ceil(self.total_idx_lines)
                    .min(self.total_ptr_lines)
            };
            while self.fetched_ptr_lines < ptr_target {
                let _ = dram.read(now, self.kind, self.line_bytes, AccessPattern::Sequential);
                self.fetched_ptr_lines += 1;
            }
            let ready = dram.read(now, self.kind, self.line_bytes, AccessPattern::Sequential);
            self.line_ready.push_back(ready);
            self.fetched_idx_lines += 1;
            if let Some(t) = self.trace.as_deref_mut() {
                t.push(TraceEvent {
                    // Renumbered to the machine-wide stream id on absorb.
                    track: Track::Smq(0),
                    kind: TraceKind::SmqFetch {
                        kind: self.kind,
                        ready,
                    },
                    ts: now,
                    dur: 0,
                });
            }
        }
    }

    /// Returns the cycle at which the next non-zero entry is available to
    /// the engine, or `None` if the stream is exhausted.
    pub fn next_entry(&mut self, now: u64, dram: &mut Dram) -> Option<u64> {
        if self.next_entry >= self.total_entries {
            return None;
        }
        if self.line_entries_left == 0 {
            // First entry of a new index line: top up the prefetch window
            // (this is the only call where its target can have moved) and
            // cache the front line's ready cycle for the whole line.
            self.issue_fetches(now, dram);
            self.line_ready_cached = *self
                .line_ready
                .front()
                .expect("prefetcher covers the consumption point");
            let line_start = self.next_entry - self.next_entry % self.entries_per_line;
            self.line_entries_left = self.entries_per_line.min(self.total_entries - line_start);
        }
        self.line_entries_left -= 1;
        self.next_entry += 1;
        self.entries_streamed += 1;
        // Drop the line from the window once fully consumed.
        if self.line_entries_left == 0 {
            self.line_ready.pop_front();
        }
        self.wait_cycles += self.line_ready_cached.saturating_sub(now);
        Some(self.line_ready_cached.max(now))
    }

    /// Cycles consumers spent waiting on not-yet-fetched entries.
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }

    /// Moves any buffered trace events into `into` (no-op when tracing is
    /// disabled). Events carry `Track::Smq(0)`; the absorbing machine
    /// renumbers them with its stream counter.
    pub fn drain_trace(&mut self, into: &mut TraceData) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.drain_into(into);
        }
    }

    /// Pointer records per 64-byte line (16 with 4-byte pointers).
    pub fn ptrs_per_line(&self) -> usize {
        self.ptrs_per_line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemConfig {
        MemConfig::default()
    }

    #[test]
    fn streams_all_entries() {
        let c = cfg();
        let mut dram = Dram::new(&c);
        let mut s = SmqStream::new(&c, MatrixKind::SparseA, SparseFormat::Csr, 20, 4);
        let mut count = 0;
        let mut now = 0;
        while let Some(ready) = s.next_entry(now, &mut dram) {
            now = ready;
            count += 1;
        }
        assert_eq!(count, 20);
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.entries_streamed(), 20);
    }

    #[test]
    fn traffic_covers_index_and_pointer_lines() {
        let c = cfg();
        let mut dram = Dram::new(&c);
        // 100 entries = 13 index lines; 40 pointers = 3 pointer lines
        let mut s = SmqStream::new(&c, MatrixKind::SparseA, SparseFormat::Csr, 100, 40);
        let mut now = 0;
        while let Some(r) = s.next_entry(now, &mut dram) {
            now = r;
        }
        let reads = dram.stats().kind(MatrixKind::SparseA).reads;
        assert_eq!(reads, 13 + 3, "index lines + pointer lines");
    }

    #[test]
    fn entries_in_same_line_share_fetch() {
        let c = cfg();
        let mut dram = Dram::new(&c);
        let mut s = SmqStream::new(&c, MatrixKind::SparseX, SparseFormat::Csc, 8, 2);
        let t0 = s.next_entry(0, &mut dram).unwrap();
        let t1 = s.next_entry(t0, &mut dram).unwrap();
        // same line: second entry does not wait for another DRAM access
        assert_eq!(t1, t0);
        assert_eq!(dram.stats().kind(MatrixKind::SparseX).reads, 2); // 1 idx + 1 ptr
    }

    #[test]
    fn empty_stream_returns_none() {
        let c = cfg();
        let mut dram = Dram::new(&c);
        let mut s = SmqStream::new(&c, MatrixKind::SparseA, SparseFormat::Csr, 0, 1);
        assert_eq!(s.next_entry(0, &mut dram), None);
    }

    #[test]
    fn prefetch_hides_latency_after_warmup() {
        let c = cfg();
        let mut dram = Dram::new(&c);
        let mut s = SmqStream::new(&c, MatrixKind::SparseA, SparseFormat::Csr, 64, 8);
        // Consume slowly: after warmup, entries should be ready at the
        // consumption cycle (prefetched).
        let mut now = s.next_entry(0, &mut dram).unwrap();
        for _ in 0..30 {
            now += 10; // engine consumes slower than the stream fetches
            let ready = s.next_entry(now, &mut dram).unwrap();
            assert!(ready <= now + 101, "stream fell unreasonably far behind");
            now = now.max(ready);
        }
    }

    #[test]
    fn wait_cycles_count_starvation_only() {
        let c = cfg();
        let mut dram = Dram::new(&c);
        let mut s = SmqStream::new(&c, MatrixKind::SparseA, SparseFormat::Csr, 8, 2);
        // First entry waits the full fetch latency.
        let t0 = s.next_entry(0, &mut dram).unwrap();
        assert_eq!(s.wait_cycles(), t0);
        // Consuming at (or after) the ready cycle adds no wait.
        let _ = s.next_entry(t0, &mut dram).unwrap();
        assert_eq!(s.wait_cycles(), t0);
    }

    #[test]
    fn trace_records_fetches_when_enabled() {
        use crate::trace::{TraceData, TraceKind};
        let c = MemConfig {
            trace: true,
            ..MemConfig::default()
        };
        let mut dram = Dram::new(&c);
        // 100 entries = 13 index lines (each traced once).
        let mut s = SmqStream::new(&c, MatrixKind::SparseA, SparseFormat::Csr, 100, 40);
        let mut now = 0;
        while let Some(r) = s.next_entry(now, &mut dram) {
            now = r;
        }
        let mut data = TraceData::new();
        s.drain_trace(&mut data);
        assert_eq!(data.events.len(), 13);
        assert!(data
            .events
            .iter()
            .all(|e| matches!(e.kind, TraceKind::SmqFetch { .. })));
        // Fetch issue cycles are monotone within one stream.
        assert!(data.events.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn format_flag_is_carried() {
        let c = cfg();
        let s = SmqStream::new(&c, MatrixKind::SparseA, SparseFormat::Csc, 1, 1);
        assert_eq!(s.format(), SparseFormat::Csc);
    }
}
