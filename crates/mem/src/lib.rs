//! Cycle-level memory subsystem of the HyMM accelerator.
//!
//! This crate models every storage component of the paper's Fig. 3 at the
//! granularity the engines need for cycle-accurate accounting:
//!
//! - [`dram`] — the 64 GB/s off-chip memory: FIFO bandwidth sharing plus a
//!   fixed access latency, with per-matrix traffic tags for the paper's
//!   Fig. 11 DRAM-access breakdown;
//! - [`dmb`] — the unified 256 KB **dense matrix buffer**: 64 B lines,
//!   class-priority LRU eviction (W first, then XW, partial outputs
//!   retained — paper §IV-D), MSHRs for outstanding misses, and a
//!   near-memory accumulator port for merging partial outputs;
//! - [`lsq`] — the 128-entry **load/store queue** with store-to-load
//!   forwarding between the combination and aggregation phases
//!   (paper §IV-B);
//! - [`prefetch`] — the configurable **data prefetcher** on the DMB miss
//!   path: policy/drop/stat types for speculative dense-line fills issued
//!   through the MSHR pool (off by default and bit-identical when off);
//! - [`smq`] — the **sparse matrix queue** that streams CSR/CSC
//!   pointer/index/value data from DRAM through its 4 KB pointer and 12 KB
//!   index buffers (paper §IV-A);
//! - [`address`] / [`stats`] — line addressing by matrix kind and the
//!   traffic/hit-rate counters every experiment reads.
//!
//! Timing convention: all components exchange **absolute cycle numbers**.
//! A call like `dmb.read(now, addr, &mut dram)` means "the engine presents
//! this request at cycle `now`" and the returned [`dmb::ReadOutcome::ready`]
//! is the cycle at which the data is available. Engines advance their own
//! cursors with `max()` chains, which yields the same cycle counts as a
//! lock-step loop for in-order engines while simulating millions of edges
//! per second.

pub mod address;
pub mod config;
pub mod dmb;
pub mod dram;
pub mod lsq;
pub mod metrics;
pub mod prefetch;
pub mod smq;
pub mod stats;
pub mod trace;

pub use address::{LineAddr, MatrixKind};
pub use config::MemConfig;
pub use dmb::{Dmb, EventStats, SpanRange};
pub use dram::Dram;
pub use lsq::Lsq;
pub use metrics::{MetricKind, MetricsConfig, MetricsData, MetricsRegistry, MetricsSample};
pub use prefetch::{PrefetchDrop, PrefetchPolicy, PrefetchStats};
pub use smq::SmqStream;
pub use stats::TrafficStats;
pub use trace::{TraceData, TraceEvent, TraceKind, TraceRing, Track};
