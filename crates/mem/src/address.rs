//! Line addressing by matrix kind.
//!
//! The accelerator works on five logical matrices per GCN layer. Every
//! memory request is tagged with its [`MatrixKind`] so that the DRAM traffic
//! breakdown of the paper's Fig. 11 and the class-priority eviction of the
//! DMB (§IV-D: "data is evicted to the off-chip memory in the order of W and
//! then XW, ensuring that partial outputs are retained") fall out of the
//! model naturally.

/// The logical matrix a memory line belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MatrixKind {
    /// The sparse adjacency matrix `A` (pointer/index/value streams).
    SparseA,
    /// The sparse feature matrix `X` (pointer/index/value streams).
    SparseX,
    /// The dense weight matrix `W`.
    Weight,
    /// The combination result `XW` — input to aggregation.
    Combination,
    /// The aggregation output `AXW` (including partial outputs).
    Output,
}

impl MatrixKind {
    /// All kinds, in a stable order used for stats tables.
    pub const ALL: [MatrixKind; 5] = [
        MatrixKind::SparseA,
        MatrixKind::SparseX,
        MatrixKind::Weight,
        MatrixKind::Combination,
        MatrixKind::Output,
    ];

    /// Dense index used by per-kind counter arrays.
    pub fn index(&self) -> usize {
        match self {
            MatrixKind::SparseA => 0,
            MatrixKind::SparseX => 1,
            MatrixKind::Weight => 2,
            MatrixKind::Combination => 3,
            MatrixKind::Output => 4,
        }
    }

    /// Eviction priority class in the unified buffer: lower values are
    /// evicted first. The paper's order is `W`, then `XW`, with `AXW`
    /// partial outputs retained as long as possible.
    pub fn evict_class(&self) -> u8 {
        match self {
            // Sparse streams are not cached in the DMB (they live in the
            // SMQ), but give them a defined class anyway.
            MatrixKind::SparseA | MatrixKind::SparseX => 0,
            MatrixKind::Weight => 0,
            MatrixKind::Combination => 1,
            MatrixKind::Output => 2,
        }
    }

    /// Short label used in printed experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            MatrixKind::SparseA => "A",
            MatrixKind::SparseX => "X",
            MatrixKind::Weight => "W",
            MatrixKind::Combination => "XW",
            MatrixKind::Output => "AXW",
        }
    }
}

/// A 64-byte line address: a matrix kind plus a line index within that
/// matrix. For the GCN layer dimension of 16 × f32 one dense matrix row is
/// exactly one line; wider rows span consecutive line indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineAddr {
    /// The matrix this line belongs to.
    pub kind: MatrixKind,
    /// Line index within the matrix.
    pub index: u64,
}

impl LineAddr {
    /// Convenience constructor.
    pub fn new(kind: MatrixKind, index: u64) -> LineAddr {
        LineAddr { kind, index }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for k in MatrixKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn eviction_order_matches_paper() {
        assert!(MatrixKind::Weight.evict_class() < MatrixKind::Combination.evict_class());
        assert!(MatrixKind::Combination.evict_class() < MatrixKind::Output.evict_class());
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = MatrixKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn line_addr_equality_and_hash() {
        use std::collections::HashSet;
        let a = LineAddr::new(MatrixKind::Weight, 3);
        let b = LineAddr::new(MatrixKind::Weight, 3);
        let c = LineAddr::new(MatrixKind::Output, 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: HashSet<LineAddr> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
