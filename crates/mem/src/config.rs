//! Memory-subsystem configuration.

use crate::prefetch::PrefetchPolicy;
use hymm_sparse::SparseError;

/// Configuration of the off-chip memory and all on-chip buffers, defaulting
/// to the paper's Table III parameters at a 1 GHz accelerator clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Off-chip bandwidth in bytes per cycle. The paper assumes 64 GB/s; at
    /// 1 GHz that is 64 B per cycle.
    pub dram_bytes_per_cycle: u64,
    /// Fixed off-chip access latency in cycles.
    pub dram_latency: u64,
    /// Extra channel-occupancy cycles charged per **random** (non-streaming)
    /// DRAM request, modelling row-buffer misses: scattered 64-byte accesses
    /// achieve only a fraction of the peak streaming bandwidth.
    pub dram_random_penalty: u64,
    /// Number of independent DRAM channels (extension; the paper assumes a
    /// single 64 GB/s channel). Each channel provides `dram_bytes_per_cycle`
    /// of bandwidth; requests are placed on the earliest-free channel.
    pub dram_channels: usize,
    /// Dense matrix buffer capacity in bytes (256 KB in Table III).
    pub dmb_bytes: usize,
    /// Line size in bytes (the 64-byte vector format of §IV).
    pub line_bytes: usize,
    /// Number of miss status holding registers in the DMB.
    pub mshr_count: usize,
    /// DMB hit latency in cycles.
    pub dmb_hit_latency: u64,
    /// Load/store queue entries (128 in Table III).
    pub lsq_entries: usize,
    /// SMQ pointer buffer capacity in bytes (4 KB in Table III).
    pub smq_ptr_bytes: usize,
    /// SMQ index buffer capacity in bytes (12 KB in Table III).
    pub smq_idx_bytes: usize,
    /// **Index-stream lookahead**: lines of the sparse pointer/index/value
    /// stream the SMQ fetches ahead of consumption (bounded by the index
    /// buffer; kept small so the stream does not monopolise DRAM
    /// bandwidth). This is *not* the data prefetcher — dense-line
    /// prefetching into the DMB is controlled by [`MemConfig::prefetch`].
    pub smq_lookahead_lines: usize,
    /// Data-prefetch policy on the DMB miss path (see
    /// [`crate::prefetch`]). `Off` by default; the disabled path is
    /// bit-identical to a build without the subsystem.
    pub prefetch: PrefetchPolicy,
    /// Prefetch degree: lines issued per demand-miss trigger (`next-line`)
    /// or SMQ hints drained per demand load (`smq-stream`).
    pub prefetch_degree: usize,
    /// Maximum MSHRs prefetches may hold concurrently. Kept below
    /// [`MemConfig::mshr_count`] so demand misses are never starved.
    pub prefetch_mshr_cap: usize,
    /// Use HyMM's class-ordered eviction (W first, then XW, retain AXW —
    /// paper §IV-D). When `false` the DMB falls back to plain global LRU,
    /// the ablation baseline.
    pub class_eviction: bool,
    /// Record structured trace events (see [`crate::trace`]). Off by
    /// default; the disabled path is cycle- and allocation-identical to a
    /// build without tracing.
    pub trace: bool,
    /// Per-component event-ring capacity when tracing is on. Oldest events
    /// are dropped (and counted) once a ring fills.
    pub trace_capacity: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            dram_bytes_per_cycle: 64,
            dram_latency: 100,
            dram_random_penalty: 2,
            dram_channels: 1,
            dmb_bytes: 256 * 1024,
            line_bytes: 64,
            mshr_count: 32,
            dmb_hit_latency: 2,
            lsq_entries: 128,
            smq_ptr_bytes: 4 * 1024,
            smq_idx_bytes: 12 * 1024,
            smq_lookahead_lines: 32,
            prefetch: PrefetchPolicy::Off,
            prefetch_degree: 2,
            prefetch_mshr_cap: 8,
            class_eviction: true,
            trace: false,
            trace_capacity: 1 << 20,
        }
    }
}

impl MemConfig {
    /// Validates the memory-side parameters, returning
    /// [`SparseError::InvalidConfig`] for values that would otherwise panic
    /// deep inside construction or silently corrupt the line math:
    ///
    /// - `line_bytes == 0` (every capacity below divides by it);
    /// - `dmb_bytes` zero or not a multiple of `line_bytes` (the line table
    ///   is sized in whole lines — a ragged buffer would silently truncate);
    /// - `mshr_count == 0` (the DMB cannot admit a single miss);
    /// - `lsq_entries == 0` (no load could ever be queued);
    /// - `prefetch_mshr_cap >= mshr_count` (the demand-priority contract
    ///   reserves at least one MSHR for demand misses; the DMB used to clamp
    ///   this silently, which configuration generators cannot observe).
    ///
    /// Config generators — the DSE in particular — rely on this instead of
    /// re-checking knob combinations themselves.
    pub fn validate(&self) -> Result<(), SparseError> {
        if self.line_bytes == 0 {
            return Err(SparseError::InvalidConfig(
                "line_bytes must be at least 1".to_string(),
            ));
        }
        if self.dmb_bytes == 0 || !self.dmb_bytes.is_multiple_of(self.line_bytes) {
            return Err(SparseError::InvalidConfig(format!(
                "dmb_bytes must be a positive multiple of line_bytes ({}), got {}",
                self.line_bytes, self.dmb_bytes
            )));
        }
        if self.mshr_count == 0 {
            return Err(SparseError::InvalidConfig(
                "mshr_count must be at least 1".to_string(),
            ));
        }
        if self.lsq_entries == 0 {
            return Err(SparseError::InvalidConfig(
                "lsq_entries must be at least 1".to_string(),
            ));
        }
        if self.prefetch_mshr_cap >= self.mshr_count {
            return Err(SparseError::InvalidConfig(format!(
                "prefetch_mshr_cap ({}) must leave at least one of the {} MSHRs for demand misses",
                self.prefetch_mshr_cap, self.mshr_count
            )));
        }
        Ok(())
    }

    /// Number of 64-byte lines the DMB can hold.
    pub fn dmb_lines(&self) -> usize {
        self.dmb_bytes / self.line_bytes
    }

    /// `f32` elements per line.
    pub fn elems_per_line(&self) -> usize {
        self.line_bytes / 4
    }

    /// Lines needed to hold one dense row of `dim` `f32` elements.
    pub fn lines_per_row(&self, dim: usize) -> usize {
        dim.div_ceil(self.elems_per_line())
    }

    /// A fresh event ring when tracing is enabled, `None` otherwise — the
    /// shape every component stores (`Option<Box<_>>` keeps the disabled
    /// path to a single pointer-null test).
    pub fn trace_ring(&self) -> Option<Box<crate::trace::TraceRing>> {
        self.trace
            .then(|| Box::new(crate::trace::TraceRing::new(self.trace_capacity)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_three() {
        let c = MemConfig::default();
        assert_eq!(c.dmb_bytes, 262_144);
        assert_eq!(c.dmb_lines(), 4096);
        assert_eq!(c.lsq_entries, 128);
        assert_eq!(c.smq_ptr_bytes + c.smq_idx_bytes, 16 * 1024);
        assert_eq!(c.dram_bytes_per_cycle, 64);
    }

    #[test]
    fn prefetch_defaults_off_and_capped() {
        let c = MemConfig::default();
        assert!(c.prefetch.is_off());
        assert!(c.prefetch_degree >= 1);
        assert!(
            c.prefetch_mshr_cap < c.mshr_count,
            "the prefetch cap must leave MSHRs for demand misses"
        );
    }

    #[test]
    fn default_config_validates() {
        assert!(MemConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_ragged_or_zero_dmb() {
        for (dmb, line) in [(0usize, 64usize), (100, 64), (256, 0)] {
            let c = MemConfig {
                dmb_bytes: dmb,
                line_bytes: line,
                ..MemConfig::default()
            };
            match c.validate() {
                Err(SparseError::InvalidConfig(msg)) => {
                    assert!(
                        msg.contains("dmb_bytes") || msg.contains("line_bytes"),
                        "msg: {msg}"
                    )
                }
                other => panic!("expected InvalidConfig for dmb={dmb} line={line}, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_zero_mshrs_and_lsq_entries() {
        for (mshr, lsq, want) in [(0usize, 128usize, "mshr_count"), (32, 0, "lsq_entries")] {
            let c = MemConfig {
                mshr_count: mshr,
                lsq_entries: lsq,
                ..MemConfig::default()
            };
            match c.validate() {
                Err(SparseError::InvalidConfig(msg)) => assert!(msg.contains(want), "msg: {msg}"),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_prefetch_cap_that_starves_demand() {
        // cap == mshr_count and cap > mshr_count both leave no demand MSHR.
        for cap in [4usize, 9] {
            let c = MemConfig {
                mshr_count: 4,
                prefetch_mshr_cap: cap,
                ..MemConfig::default()
            };
            match c.validate() {
                Err(SparseError::InvalidConfig(msg)) => {
                    assert!(msg.contains("prefetch_mshr_cap"), "msg: {msg}")
                }
                other => panic!("expected InvalidConfig for cap {cap}, got {other:?}"),
            }
        }
        // cap strictly below the MSHR count is fine, including zero (which
        // simply disables speculative occupancy).
        for cap in [0usize, 3] {
            let c = MemConfig {
                mshr_count: 4,
                prefetch_mshr_cap: cap,
                ..MemConfig::default()
            };
            assert!(c.validate().is_ok(), "cap {cap} should validate");
        }
    }

    #[test]
    fn lines_per_row_rounds_up() {
        let c = MemConfig::default();
        assert_eq!(c.elems_per_line(), 16);
        assert_eq!(c.lines_per_row(16), 1);
        assert_eq!(c.lines_per_row(17), 2);
        assert_eq!(c.lines_per_row(1), 1);
    }
}
