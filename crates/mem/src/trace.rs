//! Structured event tracing for the memory subsystem.
//!
//! Every component can carry an optional [`TraceRing`] — a bounded buffer of
//! [`TraceEvent`]s — enabled by [`MemConfig::trace`](crate::MemConfig). The
//! layer is strictly observation-only:
//!
//! - **Zero-cost when disabled.** Components hold an
//!   `Option<Box<TraceRing>>` that is `None` unless tracing was requested;
//!   the only overhead on the simulation path is one predictable branch per
//!   hook site, and no timing arithmetic depends on the trace state.
//! - **Cycle-identical when enabled.** Events record cycles that the
//!   simulation already computed; pushing them never changes a returned
//!   ready cycle.
//!
//! Events are grouped into [`Track`]s — one per hardware clock domain. Most
//! tracks emit events in non-decreasing timestamp order because they are
//! stamped with a monotone port or channel clock. The exceptions are
//! [`Track::MshrRetire`] and [`Track::Lsq`]: both are fed from the DMB's
//! *two* ports (read and write), whose clocks advance independently, so
//! their streams are completion-ordered rather than time-ordered.
//! Consumers that need global order must sort by `ts`.

use crate::address::{LineAddr, MatrixKind};
use crate::prefetch::PrefetchDrop;
use std::collections::VecDeque;

/// The clock domain (timeline) an event belongs to. Chrome-trace exports
/// map each track to one `tid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// Phase begin/end markers (engine-level clock).
    Phase,
    /// DMB read port (one access per cycle; stamped at port-grant time).
    DmbRead,
    /// DMB write port (one access per cycle; stamped at port-grant time).
    DmbWrite,
    /// MSHR retirement stream — **completion-ordered**, not time-ordered,
    /// because both DMB ports reap MSHRs on their own clocks.
    MshrRetire,
    /// One DRAM channel's busy intervals.
    DramChannel(u16),
    /// Load/store-queue operations — **completion-ordered** (fed from both
    /// DMB-port clock domains via the engines).
    Lsq,
    /// One SMQ stream's fetch batches, numbered in creation order by the
    /// machine that absorbs it.
    Smq(u16),
    /// Data-prefetcher activity (issue/fill/drop/late) — fed from both DMB
    /// ports and the MSHR reap clocks, so **completion-ordered**, not
    /// time-ordered.
    Prefetch,
}

/// Hit/miss classification of one DMB access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Read found the line resident.
    ReadHit,
    /// Read missed and allocated a line (fill from DRAM).
    ReadMissFill,
    /// Read missed but merged into an in-flight MSHR (secondary miss).
    ReadMissMerge,
    /// Write found the line resident.
    WriteHit,
    /// Write missed and allocated a line.
    WriteMissAlloc,
    /// Write missed and bypassed straight to DRAM (no-allocate policy).
    WriteMissBypass,
}

/// What the LSQ did with an admitted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsqOpKind {
    /// Load issued to the DMB.
    Load,
    /// Load satisfied by store-to-load forwarding.
    LoadForwarded,
    /// Store admitted.
    Store,
}

/// Payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// An execution phase starts.
    PhaseBegin {
        /// Phase name (interned literal).
        name: &'static str,
    },
    /// An execution phase ends.
    PhaseEnd {
        /// Phase name (interned literal).
        name: &'static str,
    },
    /// A DMB port served an access.
    DmbAccess {
        /// Line accessed.
        addr: LineAddr,
        /// Hit/miss class.
        class: AccessClass,
        /// Cycle at which the data is available to the requester.
        ready: u64,
    },
    /// The DMB evicted a line.
    DmbEvict {
        /// Line evicted.
        addr: LineAddr,
        /// Whether the eviction wrote dirty data back to DRAM.
        dirty: bool,
    },
    /// A miss allocated an MSHR.
    MshrAllocate {
        /// Line being filled.
        addr: LineAddr,
        /// MSHRs live after the allocation.
        occupancy: u32,
        /// Cycle at which the fill completes.
        ready: u64,
    },
    /// An MSHR retired (its fill completed and was reaped).
    MshrRetire {
        /// Line that was being filled.
        addr: LineAddr,
        /// MSHRs live after the retirement.
        occupancy: u32,
    },
    /// A miss found all MSHRs busy and waited.
    MshrStall {
        /// Cycles the access waited for a free MSHR.
        waited: u64,
    },
    /// A DRAM channel was busy transferring one request.
    DramBusy {
        /// Matrix the transfer belongs to.
        kind: MatrixKind,
        /// Bytes moved.
        bytes: u64,
        /// Write (posted) rather than read.
        is_write: bool,
    },
    /// The LSQ admitted an operation.
    LsqOp {
        /// What happened to it.
        op: LsqOpKind,
        /// Queue occupancy after admission.
        occupancy: u32,
    },
    /// The SMQ fetched one index line (plus its share of pointer lines).
    SmqFetch {
        /// Matrix being streamed.
        kind: MatrixKind,
        /// Cycle at which the fetched line's data is available.
        ready: u64,
    },
    /// The prefetcher issued a line fetch to DRAM.
    PrefetchIssue {
        /// Line being prefetched.
        addr: LineAddr,
        /// Cycle at which the fill completes.
        ready: u64,
    },
    /// A prefetched line's fill completed (its MSHR was reaped) without a
    /// demand access having claimed it yet.
    PrefetchFill {
        /// Line that finished filling.
        addr: LineAddr,
    },
    /// A prefetch candidate was dropped instead of issued.
    PrefetchDropped {
        /// Line that would have been prefetched.
        addr: LineAddr,
        /// Resource conflict that discarded it.
        reason: PrefetchDrop,
    },
    /// A demand access hit an in-flight prefetch and waited for it.
    PrefetchLate {
        /// Line the demand access wanted.
        addr: LineAddr,
        /// Cycles the demand access waited on the prefetch fill.
        waited: u64,
    },
}

/// One structured trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Clock domain the event belongs to.
    pub track: Track,
    /// Event payload.
    pub kind: TraceKind,
    /// Start cycle.
    pub ts: u64,
    /// Duration in cycles (zero for instantaneous events).
    pub dur: u64,
}

/// A bounded ring of trace events. When full, the **oldest** events are
/// dropped (the tail of a run is usually the interesting part) and the drop
/// count is reported so consumers know the stream is truncated.
#[derive(Debug, Clone)]
pub struct TraceRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, dropping the oldest one if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Moves all buffered events into `data`, leaving the ring empty (the
    /// drop count is accumulated and reset).
    pub fn drain_into(&mut self, data: &mut TraceData) {
        data.events.extend(self.events.drain(..));
        data.dropped += self.dropped;
        self.dropped = 0;
    }
}

/// A collected trace: events from every component ring, plus the total drop
/// count. Attached to `SimReport` when tracing is enabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// All collected events. Ordered per track as each track guarantees;
    /// tracks are concatenated in component order, so consumers needing a
    /// global order must sort by `ts`.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer overflow.
    pub dropped: u64,
}

impl TraceData {
    /// An empty trace.
    pub fn new() -> TraceData {
        TraceData::default()
    }

    /// Appends another trace with every timestamp shifted by `base` cycles —
    /// used when merging per-layer reports into a whole-inference report.
    pub fn extend_shifted(&mut self, other: &TraceData, base: u64) {
        self.events.extend(other.events.iter().map(|e| TraceEvent {
            ts: e.ts + base,
            ..*e
        }));
        self.dropped += other.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            track: Track::Phase,
            kind: TraceKind::PhaseBegin { name: "t" },
            ts,
            dur: 0,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = TraceRing::new(3);
        for t in 0..5 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let mut data = TraceData::new();
        r.drain_into(&mut data);
        let ts: Vec<u64> = data.events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, [2, 3, 4]);
        assert_eq!(data.dropped, 2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0, "drain resets the drop counter");
    }

    #[test]
    fn extend_shifted_offsets_timestamps() {
        let mut a = TraceData::new();
        a.events.push(ev(1));
        let mut b = TraceData::new();
        b.events.push(ev(2));
        b.dropped = 7;
        a.extend_shifted(&b, 100);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.events[1].ts, 102);
        assert_eq!(a.dropped, 7);
    }

    #[test]
    fn zero_capacity_ring_still_holds_one() {
        let mut r = TraceRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
