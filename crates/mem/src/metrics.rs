//! Interval-sampled time-series metrics and a small named-metrics registry.
//!
//! This module holds the **data side** of the telemetry subsystem: the
//! sample record, the bounded ring that stores one series, the mergeable
//! [`MetricsData`] that rides in simulation reports, and a
//! [`MetricsRegistry`] of named counters/gauges/histograms with Prometheus
//! text-exposition rendering. The **sampler** that knows how to attribute
//! stall cycles lives in `hymm-core::metrics` (it needs the core crate's
//! `StallBreakdown`); components here only expose cheap counter/gauge
//! accessors for it to read.
//!
//! Like tracing (see [`crate::trace`]), the whole subsystem is
//! observation-only: sampling is off by default and the disabled path is
//! bit-identical to a build without it.

use std::collections::VecDeque;

/// Number of stall classes in a sample. Mirrors
/// `hymm_core::stats::StallBreakdown::CLASSES` — the sampler asserts the
/// two agree at construction time.
pub const STALL_CLASSES: usize = 8;

/// Number of matrix kinds tracked per-class ([`crate::MatrixKind::ALL`]).
pub const KIND_CLASSES: usize = 5;

/// Per-channel DRAM busy fractions recorded per sample. Channels beyond
/// this many are folded into the last slot (the config default is a single
/// channel; the DSE grid tops out at 4).
pub const MAX_SAMPLED_CHANNELS: usize = 4;

/// Sampling knobs, carried as `AcceleratorConfig::metrics` (`None` = off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Interval between samples in cycles. The sampler emits one sample
    /// per elapsed interval; under the event scheduler several intervals
    /// may be emitted at once from counter deltas (back-filling).
    pub sample_every: u64,
    /// Ring capacity in samples. Oldest samples are dropped (and counted)
    /// once the ring fills.
    pub capacity: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            sample_every: 4096,
            capacity: 1 << 16,
        }
    }
}

/// One interval sample: per-class stall **deltas** over the interval plus
/// component gauges observed at the interval boundary.
///
/// Stall deltas are signed: the sampler estimates the in-progress phase's
/// waterfall from raw counters, and a later exact close-out may revise an
/// earlier over-estimate downward, so an individual delta can be negative.
/// The per-class sums over a whole series are exact (audit-enforced).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsSample {
    /// Cycle of the interval boundary this sample closes.
    pub ts: u64,
    /// Stall-class cycle deltas over the interval, in
    /// `StallBreakdown::CLASSES` order.
    pub stalls: [i64; STALL_CLASSES],
    /// DMB hit rate over the interval (reads + writes), `1.0` when idle.
    pub dmb_hit_rate: f32,
    /// DMB lines filled during the interval.
    pub dmb_fills: u64,
    /// Resident DMB lines at the boundary.
    pub dmb_occupancy: u32,
    /// Resident DMB lines per matrix kind at the boundary
    /// ([`crate::MatrixKind::ALL`] order).
    pub dmb_kind_occupancy: [u32; KIND_CLASSES],
    /// Live MSHRs at the boundary.
    pub mshr_occupancy: u32,
    /// Per-channel DRAM busy fraction over the interval (may transiently
    /// exceed 1.0 under lazy event-mode sampling — see DESIGN.md §14).
    pub dram_busy_frac: [f32; MAX_SAMPLED_CHANNELS],
    /// DRAM channels actually present (how many `dram_busy_frac` slots are
    /// meaningful).
    pub dram_channels: u8,
    /// DRAM bytes moved per cycle over the interval.
    pub dram_bytes_per_cycle: f32,
    /// LSQ occupancy at the boundary.
    pub lsq_depth: u32,
    /// PE issue slots consumed during the interval (MAC + merge).
    pub pe_issues: u64,
    /// Mean MAC-lane utilisation over the interval's issue slots, `[0,1]`.
    pub pe_lane_util: f32,
    /// Prefetch lines issued during the interval.
    pub prefetch_issued: u64,
    /// Prefetched lines demand-touched during the interval.
    pub prefetch_useful: u64,
    /// Useful-but-late prefetches during the interval.
    pub prefetch_late: u64,
}

/// Bounded drop-oldest buffer for one metrics series, mirroring
/// [`crate::trace::TraceRing`].
#[derive(Debug, Clone)]
pub struct MetricsRing {
    samples: VecDeque<MetricsSample>,
    capacity: usize,
    dropped: u64,
}

impl MetricsRing {
    /// Creates a ring holding at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> MetricsRing {
        let capacity = capacity.max(1);
        MetricsRing {
            samples: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a sample, dropping (and counting) the oldest when full.
    pub fn push(&mut self, sample: MetricsSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// Buffered sample count.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Mutable access to the newest sample (the sampler folds its exact
    /// close-out correction into a sample already emitted at the same
    /// timestamp instead of pushing a duplicate).
    pub fn last_mut(&mut self) -> Option<&mut MetricsSample> {
        self.samples.back_mut()
    }

    /// Moves the buffered samples into `into`, accumulating the drop count
    /// and leaving the ring empty.
    pub fn drain_into(&mut self, into: &mut MetricsData) {
        into.samples.extend(self.samples.drain(..));
        into.dropped += self.dropped;
        self.dropped = 0;
    }
}

/// A drained, mergeable metrics series — the form that rides in
/// `SimReport::metrics` and that exporters consume.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsData {
    /// Samples in timestamp order.
    pub samples: Vec<MetricsSample>,
    /// Samples dropped at the ring (capacity overflow). When non-zero the
    /// per-class stall sums are no longer exact and the audit layer skips
    /// its metrics-accounting check.
    pub dropped: u64,
    /// The interval the series was sampled at.
    pub sample_every: u64,
}

impl MetricsData {
    /// Creates an empty series tagged with its sampling interval.
    pub fn new(sample_every: u64) -> MetricsData {
        MetricsData {
            sample_every,
            ..MetricsData::default()
        }
    }

    /// Appends `other`'s samples with timestamps shifted by `base` —
    /// the report-merge convention shared with
    /// [`crate::trace::TraceData::extend_shifted`].
    pub fn extend_shifted(&mut self, other: &MetricsData, base: u64) {
        self.samples
            .extend(other.samples.iter().map(|s| MetricsSample {
                ts: s.ts + base,
                ..*s
            }));
        self.dropped += other.dropped;
        if self.sample_every == 0 {
            self.sample_every = other.sample_every;
        }
    }

    /// Per-class sums of the stall deltas over the whole series. Equal to
    /// the report's end-of-run waterfall exactly when `dropped == 0`.
    pub fn stall_sums(&self) -> [i64; STALL_CLASSES] {
        let mut out = [0i64; STALL_CLASSES];
        for s in &self.samples {
            for (acc, d) in out.iter_mut().zip(s.stalls) {
                *acc += d;
            }
        }
        out
    }
}

/// Metric families a [`MetricsRegistry`] can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing total.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Bucketed distribution of observations.
    Histogram,
}

impl MetricKind {
    fn prometheus_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One labelled scalar series inside a metric family.
#[derive(Debug, Clone)]
struct Scalar {
    /// Rendered label set, e.g. `dataflow="OP",class="mac"` (empty for an
    /// unlabelled metric).
    labels: String,
    value: f64,
}

/// One labelled histogram series: cumulative bucket counts plus sum/count.
#[derive(Debug, Clone)]
struct HistogramSeries {
    labels: String,
    /// Observation counts per bucket, parallel to the family's bounds;
    /// one extra trailing slot for `+Inf`.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

/// One named metric family.
#[derive(Debug, Clone)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    /// Upper bucket bounds for histograms (ascending), empty otherwise.
    bounds: Vec<f64>,
    scalars: Vec<Scalar>,
    histograms: Vec<HistogramSeries>,
}

/// A registry of named counters, gauges and histograms with Prometheus
/// text-exposition rendering — the substrate a future `hymm-serve` scrape
/// endpoint serves directly.
///
/// Families render in registration order and label sets in first-touch
/// order, so output is deterministic for a deterministic simulation.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: Vec<Family>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn family_mut(&mut self, name: &str) -> Option<&mut Family> {
        self.families.iter_mut().find(|f| f.name == name)
    }

    /// Registers a counter or gauge family. Idempotent by name; `kind`
    /// must not be [`MetricKind::Histogram`] (use
    /// [`Self::register_histogram`]).
    pub fn register(&mut self, name: &str, help: &str, kind: MetricKind) {
        assert!(
            kind != MetricKind::Histogram,
            "histograms need bucket bounds; use register_histogram"
        );
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        if self.family_mut(name).is_none() {
            self.families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                bounds: Vec::new(),
                scalars: Vec::new(),
                histograms: Vec::new(),
            });
        }
    }

    /// Registers a histogram family with ascending upper bucket `bounds`
    /// (an implicit `+Inf` bucket is always appended). Idempotent by name.
    pub fn register_histogram(&mut self, name: &str, help: &str, bounds: &[f64]) {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        if self.family_mut(name).is_none() {
            self.families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind: MetricKind::Histogram,
                bounds: bounds.to_vec(),
                scalars: Vec::new(),
                histograms: Vec::new(),
            });
        }
    }

    /// Sets the value of a counter/gauge series, creating the label set on
    /// first touch. `labels` is the rendered inner label list (may be
    /// empty). Panics if the family was never registered or is a
    /// histogram.
    pub fn set(&mut self, name: &str, labels: &str, value: f64) {
        let f = self
            .family_mut(name)
            .unwrap_or_else(|| panic!("metric {name:?} not registered"));
        assert!(
            f.kind != MetricKind::Histogram,
            "metric {name:?} is a histogram; use observe"
        );
        match f.scalars.iter_mut().find(|s| s.labels == labels) {
            Some(s) => s.value = value,
            None => f.scalars.push(Scalar {
                labels: labels.to_string(),
                value,
            }),
        }
    }

    /// Adds `delta` to a counter series (creating it at `delta`).
    pub fn add(&mut self, name: &str, labels: &str, delta: f64) {
        let f = self
            .family_mut(name)
            .unwrap_or_else(|| panic!("metric {name:?} not registered"));
        assert!(
            f.kind == MetricKind::Counter,
            "add is only meaningful for counters"
        );
        match f.scalars.iter_mut().find(|s| s.labels == labels) {
            Some(s) => s.value += delta,
            None => f.scalars.push(Scalar {
                labels: labels.to_string(),
                value: delta,
            }),
        }
    }

    /// Records one observation into a histogram series.
    pub fn observe(&mut self, name: &str, labels: &str, value: f64) {
        let f = self
            .family_mut(name)
            .unwrap_or_else(|| panic!("metric {name:?} not registered"));
        assert!(
            f.kind == MetricKind::Histogram,
            "metric {name:?} is not a histogram"
        );
        let slots = f.bounds.len() + 1;
        let series = match f.histograms.iter_mut().find(|h| h.labels == labels) {
            Some(h) => h,
            None => {
                f.histograms.push(HistogramSeries {
                    labels: labels.to_string(),
                    counts: vec![0; slots],
                    sum: 0.0,
                    count: 0,
                });
                f.histograms.last_mut().expect("just pushed")
            }
        };
        let idx = f
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(f.bounds.len());
        series.counts[idx] += 1;
        series.sum += value;
        series.count += 1;
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// `true` when no family is registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers followed by one line
    /// per series, histograms expanded into cumulative `_bucket` series
    /// plus `_sum` / `_count`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.prometheus_type());
            for s in &f.scalars {
                if s.labels.is_empty() {
                    let _ = writeln!(out, "{} {}", f.name, fmt_value(s.value));
                } else {
                    let _ = writeln!(out, "{}{{{}}} {}", f.name, s.labels, fmt_value(s.value));
                }
            }
            for h in &f.histograms {
                let sep = if h.labels.is_empty() { "" } else { "," };
                let mut cum = 0u64;
                for (i, c) in h.counts.iter().enumerate() {
                    cum += c;
                    let le = f
                        .bounds
                        .get(i)
                        .map(|b| fmt_value(*b))
                        .unwrap_or_else(|| "+Inf".to_string());
                    let _ = writeln!(
                        out,
                        "{}_bucket{{{}{}le=\"{}\"}} {}",
                        f.name, h.labels, sep, le, cum
                    );
                }
                let _ = writeln!(out, "{}_sum{{{}}} {}", f.name, h.labels, fmt_value(h.sum));
                let _ = writeln!(out, "{}_count{{{}}} {}", f.name, h.labels, h.count);
            }
        }
        out
    }
}

/// Prometheus metric-name grammar: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Renders an `f64` the way Prometheus expects: integral values without a
/// fractional part, everything else via shortest-round-trip `{}`.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Validates a Prometheus text-exposition (0.0.4) document of the dialect
/// [`MetricsRegistry::render_prometheus`] emits. Used by the CI smoke
/// checks and the `hymm-serve` load generator to verify `/metrics`
/// scrapes without a real Prometheus in the loop.
///
/// Checks: every `# TYPE` declares a known type with a well-formed name;
/// every sample line refers to a previously declared family (histograms
/// via their `_bucket`/`_sum`/`_count` expansions, which must carry the
/// right suffix for the declared type); label blocks are well-formed
/// `key="value"` lists; values are finite numbers. Returns the number of
/// declared families.
///
/// # Errors
///
/// Returns `"line N: <problem>"` for the first offending line.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut families: Vec<(String, &str)> = Vec::new();
    let fail = |ln: usize, msg: String| Err(format!("line {}: {msg}", ln + 1));
    for (ln, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let (keyword, name) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            match keyword {
                "HELP" => {
                    if !valid_metric_name(name) {
                        return fail(ln, format!("bad metric name {name:?} in HELP"));
                    }
                }
                "TYPE" => {
                    let kind = match parts.next() {
                        Some(k @ ("counter" | "gauge" | "histogram")) => k,
                        other => return fail(ln, format!("bad metric type {other:?}")),
                    };
                    if !valid_metric_name(name) {
                        return fail(ln, format!("bad metric name {name:?} in TYPE"));
                    }
                    if families.iter().any(|(n, _)| n == name) {
                        return fail(ln, format!("duplicate TYPE for {name}"));
                    }
                    families.push((name.to_string(), kind));
                }
                other => return fail(ln, format!("unknown comment keyword {other:?}")),
            }
            continue;
        }
        // Sample line: `name[{labels}] value`.
        let (series, value) = match line.rfind(' ') {
            Some(sp) => (&line[..sp], &line[sp + 1..]),
            None => return fail(ln, "sample line without a value".into()),
        };
        match value.parse::<f64>() {
            Ok(v) if v.is_finite() => {}
            _ => return fail(ln, format!("bad sample value {value:?}")),
        }
        let (name, labels) = match series.find('{') {
            Some(open) => {
                let Some(body) = series[open + 1..].strip_suffix('}') else {
                    return fail(ln, "unclosed label block".into());
                };
                (&series[..open], body)
            }
            None => (series, ""),
        };
        if !labels.is_empty() {
            validate_labels(labels).map_err(|e| format!("line {}: {e}", ln + 1))?;
        }
        let family = families.iter().find_map(|(n, kind)| {
            let suffix_ok = match *kind {
                "histogram" => name
                    .strip_prefix(n.as_str())
                    .is_some_and(|s| matches!(s, "_bucket" | "_sum" | "_count")),
                _ => name == n,
            };
            suffix_ok.then_some(*kind)
        });
        match family {
            None => return fail(ln, format!("sample {name:?} has no TYPE declaration")),
            Some("histogram") if name.ends_with("_bucket") && !labels.contains("le=") => {
                return fail(ln, format!("bucket sample {name:?} missing le label"));
            }
            Some(_) => {}
        }
    }
    Ok(families.len())
}

/// Validates a `key="value",...` label block (no escapes — the registry
/// writer never emits them).
fn validate_labels(mut body: &str) -> Result<(), String> {
    loop {
        let Some(eq) = body.find('=') else {
            return Err(format!("label without '=' in {body:?}"));
        };
        let key = &body[..eq];
        let key_ok = key
            .chars()
            .enumerate()
            .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()));
        if key.is_empty() || !key_ok {
            return Err(format!("bad label name {key:?}"));
        }
        let rest = body[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label {key} value not quoted"))?;
        let Some(close) = rest.find('"') else {
            return Err(format!("label {key} value unterminated"));
        };
        body = &rest[close + 1..];
        match body.strip_prefix(',') {
            Some(next) => body = next,
            None if body.is_empty() => return Ok(()),
            None => return Err(format!("junk after label {key}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ts: u64) -> MetricsSample {
        MetricsSample {
            ts,
            stalls: [1, 0, 2, 0, 0, 0, 0, 3],
            ..MetricsSample::default()
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = MetricsRing::new(2);
        r.push(sample(1));
        r.push(sample(2));
        r.push(sample(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let mut d = MetricsData::new(64);
        r.drain_into(&mut d);
        assert_eq!(d.samples.iter().map(|s| s.ts).collect::<Vec<_>>(), [2, 3]);
        assert_eq!(d.dropped, 1);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_ring_still_holds_one() {
        let mut r = MetricsRing::new(0);
        r.push(sample(7));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn extend_shifted_offsets_timestamps_and_adopts_interval() {
        let mut a = MetricsData::default();
        let mut b = MetricsData::new(128);
        b.samples.push(sample(10));
        b.dropped = 2;
        a.extend_shifted(&b, 1000);
        assert_eq!(a.samples[0].ts, 1010);
        assert_eq!(a.dropped, 2);
        assert_eq!(a.sample_every, 128);
        // An already-tagged series keeps its own interval.
        a.extend_shifted(&MetricsData::new(999), 0);
        assert_eq!(a.sample_every, 128);
    }

    #[test]
    fn stall_sums_accumulate_per_class() {
        let mut d = MetricsData::new(64);
        d.samples.push(sample(64));
        d.samples.push(MetricsSample {
            ts: 128,
            stalls: [-1, 4, 0, 0, 0, 0, 0, 1],
            ..MetricsSample::default()
        });
        assert_eq!(d.stall_sums(), [0, 4, 2, 0, 0, 0, 0, 4]);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let mut reg = MetricsRegistry::new();
        reg.register("hymm_cycles_total", "Simulated cycles", MetricKind::Counter);
        reg.register("hymm_dmb_hit_rate", "DMB hit rate", MetricKind::Gauge);
        reg.register_histogram(
            "hymm_interval_hit_rate",
            "Per-interval hit rate",
            &[0.5, 0.9],
        );
        reg.set("hymm_cycles_total", "dataflow=\"OP\"", 1234.0);
        reg.add("hymm_cycles_total", "dataflow=\"OP\"", 1.0);
        reg.set("hymm_dmb_hit_rate", "", 0.75);
        reg.observe("hymm_interval_hit_rate", "dataflow=\"OP\"", 0.4);
        reg.observe("hymm_interval_hit_rate", "dataflow=\"OP\"", 0.95);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE hymm_cycles_total counter"));
        assert!(text.contains("hymm_cycles_total{dataflow=\"OP\"} 1235\n"));
        assert!(text.contains("hymm_dmb_hit_rate 0.75\n"));
        assert!(text.contains("hymm_interval_hit_rate_bucket{dataflow=\"OP\",le=\"0.5\"} 1\n"));
        assert!(text.contains("hymm_interval_hit_rate_bucket{dataflow=\"OP\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("hymm_interval_hit_rate_count{dataflow=\"OP\"} 2\n"));
    }

    #[test]
    fn registry_registration_is_idempotent() {
        let mut reg = MetricsRegistry::new();
        reg.register("a_total", "a", MetricKind::Counter);
        reg.register("a_total", "a again", MetricKind::Counter);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn validate_prometheus_accepts_own_rendering() {
        let mut reg = MetricsRegistry::new();
        reg.register("hymm_cycles_total", "total cycles", MetricKind::Counter);
        reg.add("hymm_cycles_total", "run=\"CR/HyMM\"", 1234.0);
        reg.register("hymm_dmb_hit_rate", "hit rate", MetricKind::Gauge);
        reg.set("hymm_dmb_hit_rate", "", 0.75);
        reg.register_histogram("hymm_interval_hit_rate", "per-interval", &[0.5, 0.9]);
        reg.observe("hymm_interval_hit_rate", "run=\"CR/HyMM\"", 0.4);
        let families = validate_prometheus(&reg.render_prometheus()).unwrap();
        assert_eq!(families, 3);
    }

    #[test]
    fn validate_prometheus_rejects_malformed_documents() {
        for (doc, want) in [
            ("hymm_x 1\n", "no TYPE"),
            ("# TYPE hymm_x summary\nhymm_x 1\n", "bad metric type"),
            (
                "# TYPE hymm_x gauge\nhymm_x notanumber\n",
                "bad sample value",
            ),
            (
                "# TYPE hymm_x gauge\nhymm_x{run=\"a\" 1\n",
                "unclosed label",
            ),
            (
                "# TYPE hymm_x gauge\nhymm_x{9bad=\"a\"} 1\n",
                "bad label name",
            ),
            (
                "# TYPE hymm_x gauge\n# TYPE hymm_x gauge\n",
                "duplicate TYPE",
            ),
            (
                "# TYPE hymm_h histogram\nhymm_h_bucket{run=\"a\"} 1\n",
                "missing le",
            ),
            ("# TYPE hymm_h histogram\nhymm_h 1\n", "no TYPE"),
        ] {
            let err = validate_prometheus(doc).unwrap_err();
            assert!(err.contains(want), "doc {doc:?} gave {err:?}");
        }
    }

    #[test]
    fn metric_name_grammar() {
        assert!(valid_metric_name("hymm_cycles_total"));
        assert!(valid_metric_name(":ns:metric"));
        assert!(!valid_metric_name("9starts_with_digit"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name(""));
    }

    #[test]
    fn event_stats_merge_accumulates_every_field() {
        // Satellite coverage: EventStats::merge is exercised end-to-end by
        // the suite but had no direct unit pin.
        let mut a = crate::EventStats {
            events_scheduled: 3,
            events_coalesced: 1,
            cycles_skipped: 100,
        };
        let b = crate::EventStats {
            events_scheduled: 4,
            events_coalesced: 2,
            cycles_skipped: 50,
        };
        a.merge(&b);
        assert_eq!(a.events_scheduled, 7);
        assert_eq!(a.events_coalesced, 3);
        assert_eq!(a.cycles_skipped, 150);
        assert_eq!(a.events(), 10, "events() totals scheduled + coalesced");
        let mut zero = crate::EventStats::default();
        zero.merge(&crate::EventStats::default());
        assert_eq!(zero, crate::EventStats::default());
    }
}
