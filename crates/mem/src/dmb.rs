//! The unified dense matrix buffer (DMB).
//!
//! Unlike prior GCN accelerators with separate per-matrix buffers, HyMM's
//! DMB is a single 256 KB buffer shared by `W`, `XW` and `AXW` lines
//! (paper §III/§IV-D). Capacity is managed with an LRU policy that evicts in
//! **class order** — `W` first, then `XW`, retaining `AXW` partial outputs —
//! so whichever dataflow is running automatically gets the space split the
//! paper describes ("the unified buffer holds a substantial quantity of XW"
//! during RWP, more output space during OP).
//!
//! The buffer has one read and one write port (one request each per cycle),
//! a configurable number of MSHRs for outstanding read misses, and a
//! near-memory accumulator used by the engines to merge partial outputs on
//! write hits without occupying the PE adders.

use crate::address::{LineAddr, MatrixKind};
use crate::config::MemConfig;
use crate::dram::{AccessPattern, Dram};
use crate::stats::HitStats;
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Clone, Copy)]
struct Line {
    dirty: bool,
    /// Cycle at which the line's fill completes (0 for write-allocated).
    ready_at: u64,
    /// LRU timestamp; unique per touch.
    lru: u64,
}

/// Outcome of a [`Dmb::read`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Cycle at which the data is available to the requester.
    pub ready: u64,
    /// Whether the line was resident (including hit-under-fill).
    pub hit: bool,
}

/// Outcome of a [`Dmb::write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Cycle at which the write has been accepted by the buffer.
    pub ready: u64,
    /// Whether the target line was already resident — for partial-output
    /// writes this is the "can merge in place" signal.
    pub hit: bool,
}

/// The unified dense matrix buffer.
///
/// # Example
///
/// ```
/// use hymm_mem::dram::{AccessPattern, Dram};
/// use hymm_mem::{Dmb, LineAddr, MatrixKind, MemConfig};
///
/// let config = MemConfig::default();
/// let mut dram = Dram::new(&config);
/// let mut dmb = Dmb::new(&config);
/// let addr = LineAddr::new(MatrixKind::Combination, 7);
/// let miss = dmb.read(0, addr, &mut dram, AccessPattern::Random);
/// assert!(!miss.hit);
/// let hit = dmb.read(miss.ready, addr, &mut dram, AccessPattern::Random);
/// assert!(hit.hit); // second access finds the line resident
/// ```
#[derive(Debug, Clone)]
pub struct Dmb {
    capacity_lines: usize,
    line_bytes: u64,
    hit_latency: u64,
    mshr_count: usize,
    class_eviction: bool,
    lines: HashMap<LineAddr, Line>,
    /// Per-eviction-class LRU order: `lru tick -> addr`.
    class_order: [BTreeMap<u64, LineAddr>; 3],
    lru_tick: u64,
    /// Outstanding fills: `addr -> completion cycle`.
    mshrs: HashMap<LineAddr, u64>,
    read_port_free: u64,
    write_port_free: u64,
    hits: HitStats,
    evictions: u64,
    dirty_evictions: u64,
    mshr_merges: u64,
    mshr_stalls: u64,
    accumulator_merges: u64,
}

impl Dmb {
    /// Creates an empty buffer from the memory configuration.
    pub fn new(config: &MemConfig) -> Dmb {
        Dmb {
            capacity_lines: config.dmb_lines().max(1),
            line_bytes: config.line_bytes as u64,
            hit_latency: config.dmb_hit_latency,
            mshr_count: config.mshr_count.max(1),
            class_eviction: config.class_eviction,
            lines: HashMap::new(),
            class_order: [BTreeMap::new(), BTreeMap::new(), BTreeMap::new()],
            lru_tick: 0,
            mshrs: HashMap::new(),
            read_port_free: 0,
            write_port_free: 0,
            hits: HitStats::default(),
            evictions: 0,
            dirty_evictions: 0,
            mshr_merges: 0,
            mshr_stalls: 0,
            accumulator_merges: 0,
        }
    }

    fn touch(&mut self, addr: LineAddr) {
        self.lru_tick += 1;
        let tick = self.lru_tick;
        if let Some(line) = self.lines.get_mut(&addr) {
            let class = addr.kind.evict_class() as usize;
            self.class_order[class].remove(&line.lru);
            line.lru = tick;
            self.class_order[class].insert(tick, addr);
        }
    }

    fn insert_line(&mut self, addr: LineAddr, dirty: bool, ready_at: u64, now: u64, dram: &mut Dram) {
        while self.lines.len() >= self.capacity_lines {
            if !self.evict_one(now, dram) {
                break; // everything in flight; oversubscribe rather than deadlock
            }
        }
        self.lru_tick += 1;
        let tick = self.lru_tick;
        self.lines.insert(addr, Line { dirty, ready_at, lru: tick });
        self.class_order[addr.kind.evict_class() as usize].insert(tick, addr);
    }

    /// Evicts one line following class priority then LRU (or plain global
    /// LRU when class eviction is disabled); returns false if no evictable
    /// line exists (all in-flight).
    fn evict_one(&mut self, now: u64, dram: &mut Dram) -> bool {
        let victim_of = |order: &BTreeMap<u64, LineAddr>, mshrs: &HashMap<LineAddr, u64>| {
            order.iter().map(|(&tick, &addr)| (tick, addr)).find(|(_, a)| !mshrs.contains_key(a))
        };
        if !self.class_eviction {
            // Plain LRU: oldest tick across all classes.
            let victim = (0..3)
                .filter_map(|c| victim_of(&self.class_order[c], &self.mshrs))
                .min_by_key(|&(tick, _)| tick)
                .map(|(_, addr)| addr);
            if let Some(addr) = victim {
                let line = self.lines.remove(&addr).expect("victim is resident");
                self.class_order[addr.kind.evict_class() as usize].remove(&line.lru);
                self.evictions += 1;
                if line.dirty {
                    self.dirty_evictions += 1;
                    dram.write(now, addr.kind, self.line_bytes, AccessPattern::Random);
                }
                return true;
            }
            return false;
        }
        for class in 0..3 {
            // Find oldest line in this class that is not an outstanding fill.
            let victim = self.class_order[class]
                .iter()
                .map(|(_, &addr)| addr)
                .find(|addr| !self.mshrs.contains_key(addr));
            if let Some(addr) = victim {
                let line = self.lines.remove(&addr).expect("victim is resident");
                self.class_order[class].remove(&line.lru);
                self.evictions += 1;
                if line.dirty {
                    self.dirty_evictions += 1;
                    // Evicted victims scatter: charged as random traffic.
                    dram.write(now, addr.kind, self.line_bytes, AccessPattern::Random);
                }
                return true;
            }
        }
        false
    }

    fn reap_mshrs(&mut self, now: u64) {
        self.mshrs.retain(|_, &mut ready| ready > now);
    }

    /// Presents a read request at cycle `now`; `pattern` describes how a
    /// resulting DRAM fill would land on the channel (streaming engines pass
    /// [`AccessPattern::Sequential`], scattered ones [`AccessPattern::Random`]).
    pub fn read(
        &mut self,
        now: u64,
        addr: LineAddr,
        dram: &mut Dram,
        pattern: AccessPattern,
    ) -> ReadOutcome {
        let start = now.max(self.read_port_free);
        self.read_port_free = start + 1;
        self.reap_mshrs(start);

        if let Some(line) = self.lines.get(&addr) {
            let ready = (start + self.hit_latency).max(line.ready_at);
            self.hits.read_hits += 1;
            self.touch(addr);
            return ReadOutcome { ready, hit: true };
        }
        if let Some(&fill) = self.mshrs.get(&addr) {
            // Secondary miss merged into the outstanding fill.
            self.mshr_merges += 1;
            self.hits.read_misses += 1;
            return ReadOutcome { ready: fill.max(start + self.hit_latency), hit: false };
        }
        // Primary miss: allocate an MSHR, stalling if none is free.
        let mut issue = start;
        if self.mshrs.len() >= self.mshr_count {
            let earliest = self.mshrs.values().copied().min().unwrap_or(issue);
            self.mshr_stalls += 1;
            issue = issue.max(earliest);
            self.reap_mshrs(issue);
        }
        let ready = dram.read(issue, addr.kind, self.line_bytes, pattern);
        self.mshrs.insert(addr, ready);
        self.insert_line(addr, false, ready, issue, dram);
        self.hits.read_misses += 1;
        ReadOutcome { ready, hit: false }
    }

    /// Presents a write request at cycle `now`.
    ///
    /// With `allocate`, a missing line is write-allocated (full-line write —
    /// no fetch); otherwise the write bypasses the buffer straight to DRAM
    /// (used for streaming output rows the engine will never touch again).
    pub fn write(
        &mut self,
        now: u64,
        addr: LineAddr,
        dram: &mut Dram,
        allocate: bool,
        pattern: AccessPattern,
    ) -> WriteOutcome {
        let start = now.max(self.write_port_free);
        self.write_port_free = start + 1;
        self.reap_mshrs(start);

        if let Some(line) = self.lines.get_mut(&addr) {
            line.dirty = true;
            self.hits.write_hits += 1;
            self.touch(addr);
            return WriteOutcome { ready: start + self.hit_latency, hit: true };
        }
        self.hits.write_misses += 1;
        if allocate {
            self.insert_line(addr, true, start + self.hit_latency, start, dram);
            WriteOutcome { ready: start + self.hit_latency, hit: false }
        } else {
            dram.write(start, addr.kind, self.line_bytes, pattern);
            WriteOutcome { ready: start + 1, hit: false }
        }
    }

    /// Records a near-memory accumulator merge (engines call this when a
    /// partial-output write hit is merged in place).
    pub fn record_accumulator_merge(&mut self) {
        self.accumulator_merges += 1;
    }

    /// Writes back all dirty lines of `kind` and drops every line of that
    /// kind; returns the cycle at which the last writeback is accepted.
    pub fn flush_kind(&mut self, now: u64, kind: MatrixKind, dram: &mut Dram) -> u64 {
        let addrs: Vec<LineAddr> =
            self.lines.keys().filter(|a| a.kind == kind).copied().collect();
        let mut done = now;
        // Deterministic order: by line index.
        let mut sorted = addrs;
        sorted.sort_by_key(|a| a.index);
        for addr in sorted {
            let line = self.lines.remove(&addr).expect("listed line is resident");
            self.class_order[addr.kind.evict_class() as usize].remove(&line.lru);
            if line.dirty {
                // Flushes walk line indices in order: streaming writeback.
                done = done.max(dram.write(done, kind, self.line_bytes, AccessPattern::Sequential));
            }
        }
        done
    }

    /// Drops every line of `kind` without writeback (dead data).
    pub fn invalidate_kind(&mut self, kind: MatrixKind) {
        let addrs: Vec<LineAddr> =
            self.lines.keys().filter(|a| a.kind == kind).copied().collect();
        for addr in addrs {
            let line = self.lines.remove(&addr).expect("listed line is resident");
            self.class_order[addr.kind.evict_class() as usize].remove(&line.lru);
        }
    }

    /// Whether a line is currently resident.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.lines.contains_key(&addr)
    }

    /// Number of resident lines of `kind`.
    pub fn resident_lines(&self, kind: MatrixKind) -> usize {
        self.lines.keys().filter(|a| a.kind == kind).count()
    }

    /// Total resident lines.
    pub fn occupancy(&self) -> usize {
        self.lines.len()
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    /// Hit/miss counters.
    pub fn hit_stats(&self) -> HitStats {
        self.hits
    }

    /// Total evictions (dirty or clean).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Evictions that wrote data back to DRAM.
    pub fn dirty_evictions(&self) -> u64 {
        self.dirty_evictions
    }

    /// Secondary read misses merged into outstanding MSHRs.
    pub fn mshr_merges(&self) -> u64 {
        self.mshr_merges
    }

    /// Requests that stalled waiting for a free MSHR.
    pub fn mshr_stalls(&self) -> u64 {
        self.mshr_stalls
    }

    /// Near-memory accumulator merges recorded by the engines.
    pub fn accumulator_merges(&self) -> u64 {
        self.accumulator_merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(lines: usize) -> MemConfig {
        MemConfig { dmb_bytes: lines * 64, ..MemConfig::default() }
    }

    fn addr(kind: MatrixKind, i: u64) -> LineAddr {
        LineAddr::new(kind, i)
    }

    #[test]
    fn miss_then_hit() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        let miss = dmb.read(0, a, &mut dram, AccessPattern::Random);
        assert!(!miss.hit);
        assert!(miss.ready >= 101);
        let hit = dmb.read(miss.ready, a, &mut dram, AccessPattern::Random);
        assert!(hit.hit);
        assert_eq!(hit.ready, miss.ready + cfg.dmb_hit_latency);
    }

    #[test]
    fn hit_under_fill_waits_for_data() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        let miss = dmb.read(0, a, &mut dram, AccessPattern::Random);
        // Request again before the fill completes: counts as hit, but data
        // is not available earlier than the fill.
        let again = dmb.read(5, a, &mut dram, AccessPattern::Random);
        assert!(again.hit);
        assert!(again.ready >= miss.ready);
    }

    #[test]
    fn secondary_miss_merges_into_mshr() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        let _ = dmb.read(0, a, &mut dram, AccessPattern::Random);
        // Evict knowledge: the line is resident (in-flight), so a second read
        // is a hit-under-fill, not a merge. Exercise the merge path via a
        // different structure: invalidate the line but keep the MSHR.
        dmb.invalidate_kind(MatrixKind::Combination);
        let merged = dmb.read(1, a, &mut dram, AccessPattern::Random);
        assert!(!merged.hit);
        assert_eq!(dmb.mshr_merges(), 1);
        assert_eq!(dram.stats().kind(MatrixKind::Combination).reads, 1, "no second DRAM read");
        assert!(merged.ready >= 101);
    }

    #[test]
    fn write_allocate_and_dirty_eviction() {
        let cfg = small_config(2);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        for i in 0..3 {
            dmb.write(0, addr(MatrixKind::Output, i), &mut dram, true, AccessPattern::Random);
        }
        assert_eq!(dmb.occupancy(), 2);
        assert_eq!(dmb.evictions(), 1);
        assert_eq!(dmb.dirty_evictions(), 1);
        assert_eq!(dram.stats().kind(MatrixKind::Output).writes, 1);
    }

    #[test]
    fn write_through_bypasses_buffer() {
        let cfg = small_config(4);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let out = dmb.write(0, addr(MatrixKind::Output, 9), &mut dram, false, AccessPattern::Random);
        assert!(!out.hit);
        assert_eq!(dmb.occupancy(), 0);
        assert_eq!(dram.stats().kind(MatrixKind::Output).write_bytes, 64);
    }

    #[test]
    fn eviction_prefers_weight_class() {
        let cfg = small_config(3);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        // Fill with one line of each class; Output is the LRU-oldest.
        dmb.write(0, addr(MatrixKind::Output, 0), &mut dram, true, AccessPattern::Random);
        dmb.write(1, addr(MatrixKind::Combination, 0), &mut dram, true, AccessPattern::Random);
        dmb.write(2, addr(MatrixKind::Weight, 0), &mut dram, true, AccessPattern::Random);
        // Insert a fourth line: despite Output being oldest, W must go first.
        dmb.write(3, addr(MatrixKind::Output, 1), &mut dram, true, AccessPattern::Random);
        assert!(dmb.contains(addr(MatrixKind::Output, 0)));
        assert!(dmb.contains(addr(MatrixKind::Combination, 0)));
        assert!(!dmb.contains(addr(MatrixKind::Weight, 0)));
        // And the next one takes XW, still not the partial outputs.
        dmb.write(4, addr(MatrixKind::Output, 2), &mut dram, true, AccessPattern::Random);
        assert!(!dmb.contains(addr(MatrixKind::Combination, 0)));
        assert!(dmb.contains(addr(MatrixKind::Output, 0)));
    }

    #[test]
    fn lru_within_class() {
        let cfg = small_config(2);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        dmb.write(0, addr(MatrixKind::Combination, 0), &mut dram, true, AccessPattern::Random);
        dmb.write(1, addr(MatrixKind::Combination, 1), &mut dram, true, AccessPattern::Random);
        // Touch line 0 so line 1 becomes LRU.
        let _ = dmb.read(2, addr(MatrixKind::Combination, 0), &mut dram, AccessPattern::Random);
        dmb.write(3, addr(MatrixKind::Combination, 2), &mut dram, true, AccessPattern::Random);
        assert!(dmb.contains(addr(MatrixKind::Combination, 0)));
        assert!(!dmb.contains(addr(MatrixKind::Combination, 1)));
    }

    #[test]
    fn read_port_serialises() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        dmb.write(0, addr(MatrixKind::Combination, 0), &mut dram, true, AccessPattern::Random);
        dmb.write(0, addr(MatrixKind::Combination, 1), &mut dram, true, AccessPattern::Random);
        let a = dmb.read(10, addr(MatrixKind::Combination, 0), &mut dram, AccessPattern::Random);
        let b = dmb.read(10, addr(MatrixKind::Combination, 1), &mut dram, AccessPattern::Random);
        assert_eq!(a.ready + 1, b.ready); // one port, one cycle apart
    }

    #[test]
    fn mshr_limit_stalls() {
        let mut cfg = small_config(64);
        cfg.mshr_count = 2;
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let r0 = dmb.read(0, addr(MatrixKind::Combination, 0), &mut dram, AccessPattern::Random);
        let _r1 = dmb.read(0, addr(MatrixKind::Combination, 1), &mut dram, AccessPattern::Random);
        let r2 = dmb.read(0, addr(MatrixKind::Combination, 2), &mut dram, AccessPattern::Random);
        assert_eq!(dmb.mshr_stalls(), 1);
        assert!(r2.ready > r0.ready);
    }

    #[test]
    fn flush_writes_dirty_lines_only() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        dmb.write(0, addr(MatrixKind::Output, 0), &mut dram, true, AccessPattern::Random);
        dmb.write(0, addr(MatrixKind::Output, 1), &mut dram, true, AccessPattern::Random);
        let fill = dmb.read(0, addr(MatrixKind::Combination, 0), &mut dram, AccessPattern::Random); // clean
        let done = dmb.flush_kind(fill.ready, MatrixKind::Output, &mut dram);
        assert!(done >= fill.ready);
        assert_eq!(dram.stats().kind(MatrixKind::Output).writes, 2);
        assert_eq!(dmb.resident_lines(MatrixKind::Output), 0);
        assert_eq!(dmb.resident_lines(MatrixKind::Combination), 1);
        // flushing the clean combination line produces no DRAM writes
        dmb.flush_kind(done, MatrixKind::Combination, &mut dram);
        assert_eq!(dram.stats().kind(MatrixKind::Combination).writes, 0);
    }

    #[test]
    fn hit_stats_accumulate() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        let m = dmb.read(0, a, &mut dram, AccessPattern::Random);
        let _ = dmb.read(m.ready, a, &mut dram, AccessPattern::Random);
        dmb.write(m.ready, a, &mut dram, true, AccessPattern::Random);
        let h = dmb.hit_stats();
        assert_eq!(h.read_hits, 1);
        assert_eq!(h.read_misses, 1);
        assert_eq!(h.write_hits, 1);
        assert!((h.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod eviction_policy_tests {
    use super::*;
    use crate::dram::AccessPattern;

    fn addr(kind: MatrixKind, i: u64) -> LineAddr {
        LineAddr::new(kind, i)
    }

    #[test]
    fn plain_lru_evicts_oldest_regardless_of_class() {
        let cfg = MemConfig {
            dmb_bytes: 3 * 64,
            class_eviction: false,
            ..MemConfig::default()
        };
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        dmb.write(0, addr(MatrixKind::Output, 0), &mut dram, true, AccessPattern::Random);
        dmb.write(1, addr(MatrixKind::Combination, 0), &mut dram, true, AccessPattern::Random);
        dmb.write(2, addr(MatrixKind::Weight, 0), &mut dram, true, AccessPattern::Random);
        // plain LRU: the Output line (oldest) goes first, not the Weight line
        dmb.write(3, addr(MatrixKind::Output, 1), &mut dram, true, AccessPattern::Random);
        assert!(!dmb.contains(addr(MatrixKind::Output, 0)));
        assert!(dmb.contains(addr(MatrixKind::Weight, 0)));
    }

    #[test]
    fn class_eviction_still_default() {
        let cfg = MemConfig::default();
        assert!(cfg.class_eviction);
    }
}
