//! The unified dense matrix buffer (DMB).
//!
//! Unlike prior GCN accelerators with separate per-matrix buffers, HyMM's
//! DMB is a single 256 KB buffer shared by `W`, `XW` and `AXW` lines
//! (paper §III/§IV-D). Capacity is managed with an LRU policy that evicts in
//! **class order** — `W` first, then `XW`, retaining `AXW` partial outputs —
//! so whichever dataflow is running automatically gets the space split the
//! paper describes ("the unified buffer holds a substantial quantity of XW"
//! during RWP, more output space during OP).
//!
//! The buffer has one read and one write port (one request each per cycle),
//! a configurable number of MSHRs for outstanding read misses, and a
//! near-memory accumulator used by the engines to merge partial outputs on
//! write hits without occupying the PE adders.
//!
//! # Implementation
//!
//! `read`/`write` sit on the simulator's innermost loop (once per non-zero
//! per engine), so the line table is allocation-free in steady state: line
//! state lives in a pre-sized arena of [`LineSlot`]s, addressed through an
//! open-addressed bucket array (linear probing, backward-shift deletion),
//! and recency is tracked by intrusive doubly-linked LRU lists per eviction
//! class threaded through the arena. Touch, insert, evict and lookup are all
//! O(1); MSHRs are a fixed scan-array sized by `mshr_count`. The timing
//! behaviour is identical to the original map-based implementation — the
//! `timing_golden` integration tests pin it bit-for-bit.

use crate::address::{LineAddr, MatrixKind};
use crate::config::MemConfig;
use crate::dram::{AccessPattern, Dram};
use crate::prefetch::{PrefetchDrop, PrefetchStats};
use crate::stats::HitStats;
use crate::trace::{AccessClass, TraceData, TraceEvent, TraceKind, TraceRing, Track};

/// Niche marker for intrusive links and bucket entries.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct LineSlot {
    addr: LineAddr,
    dirty: bool,
    /// Speculatively filled by the prefetcher and not yet touched by a
    /// demand access. Cleared by the first demand hit (counted useful);
    /// still set at removal means the prefetch was wasted.
    prefetched: bool,
    /// Cycle at which the line's fill completes (0 for write-allocated).
    ready_at: u64,
    /// LRU timestamp; unique per touch. Orders victims across classes when
    /// class eviction is disabled.
    lru: u64,
    /// Intrusive per-class LRU list: towards the older neighbour.
    prev: u32,
    /// Intrusive per-class LRU list: towards the newer neighbour.
    next: u32,
    /// Bucket currently pointing at this slot, kept in step by insert,
    /// backward-shift deletion and growth. Lets eviction — which walks LRU
    /// lists and therefore knows the slot, not the bucket — remove without
    /// re-probing the hash table.
    bucket: u32,
}

/// Fixed-capacity open-addressed map from [`LineAddr`] to arena slots, with
/// intrusive per-class LRU lists (head = oldest, tail = newest).
///
/// Buckets hold arena indices, so backward-shift deletion moves only bucket
/// entries; arena indices stay stable and the intrusive links never need
/// fixing up. Growth happens only if the buffer oversubscribes far beyond
/// `capacity + mshr_count` (not reachable in practice) — steady state never
/// allocates.
#[derive(Debug, Clone)]
struct LineTable {
    /// Arena index per bucket, `NIL` when empty.
    buckets: Vec<u32>,
    mask: usize,
    slots: Vec<LineSlot>,
    free: Vec<u32>,
    len: usize,
    /// Oldest resident line per eviction class.
    heads: [u32; 3],
    /// Newest resident line per eviction class.
    tails: [u32; 3],
    /// MRU probe hint: arena slot of the most recently looked-up or
    /// inserted line, `NIL` when invalid. Engines touch the same line
    /// repeatedly (per-column dense rows, per-row output lines), so one
    /// address compare usually replaces the whole hash walk. The hint is
    /// cleared whenever its slot is removed, so a valid hint always names a
    /// live slot and the `slots[mru].addr == addr` check is sound even
    /// after arena slots are recycled.
    mru: u32,
}

fn hash_addr(addr: LineAddr) -> u64 {
    let key = (addr.index << 3) ^ addr.kind.index() as u64;
    // Fibonacci multiplicative hash; full-width mix is plenty for line
    // indices, which are near-sequential per kind.
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl LineTable {
    fn with_capacity(lines: usize) -> LineTable {
        let buckets = (lines * 2).next_power_of_two().max(8);
        LineTable {
            buckets: vec![NIL; buckets],
            mask: buckets - 1,
            slots: Vec::with_capacity(lines),
            free: Vec::with_capacity(lines),
            len: 0,
            heads: [NIL; 3],
            tails: [NIL; 3],
            mru: NIL,
        }
    }

    fn home_bucket(&self, addr: LineAddr) -> usize {
        (hash_addr(addr) as usize) & self.mask
    }

    /// Bucket currently holding `addr`, if resident.
    fn find_bucket(&self, addr: LineAddr) -> Option<usize> {
        let mut b = self.home_bucket(addr);
        loop {
            let r = self.buckets[b];
            if r == NIL {
                return None;
            }
            if self.slots[r as usize].addr == addr {
                return Some(b);
            }
            b = (b + 1) & self.mask;
        }
    }

    /// Arena slot currently holding `addr`, if resident. Probes the MRU
    /// hint first — one compare against a live slot — and falls back to the
    /// hash walk, refreshing the hint on success.
    fn find_slot(&mut self, addr: LineAddr) -> Option<u32> {
        if self.mru != NIL && self.slots[self.mru as usize].addr == addr {
            return Some(self.mru);
        }
        let idx = self.buckets[self.find_bucket(addr)?];
        self.mru = idx;
        Some(idx)
    }

    #[cfg(test)]
    fn get(&mut self, addr: LineAddr) -> Option<&LineSlot> {
        self.find_slot(addr).map(|idx| &self.slots[idx as usize])
    }

    fn unlink(&mut self, idx: u32) {
        let slot = self.slots[idx as usize];
        let class = slot.addr.kind.evict_class() as usize;
        match slot.prev {
            NIL => self.heads[class] = slot.next,
            p => self.slots[p as usize].next = slot.next,
        }
        match slot.next {
            NIL => self.tails[class] = slot.prev,
            n => self.slots[n as usize].prev = slot.prev,
        }
    }

    fn push_newest(&mut self, idx: u32, class: usize) {
        let tail = self.tails[class];
        self.slots[idx as usize].prev = tail;
        self.slots[idx as usize].next = NIL;
        match tail {
            NIL => self.heads[class] = idx,
            t => self.slots[t as usize].next = idx,
        }
        self.tails[class] = idx;
    }

    /// Prepends at the **oldest** end of the class list — prefetched lines
    /// land here so a wrong prefetch is the next victim of its class rather
    /// than displacing demand-touched lines.
    fn push_oldest(&mut self, idx: u32, class: usize) {
        let head = self.heads[class];
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = head;
        match head {
            NIL => self.tails[class] = idx,
            h => self.slots[h as usize].prev = idx,
        }
        self.heads[class] = idx;
    }

    /// Moves a resident line to the newest end of its class list with a
    /// fresh timestamp.
    #[cfg(test)]
    fn touch(&mut self, addr: LineAddr, tick: u64) {
        if let Some(idx) = self.find_slot(addr) {
            self.touch_slot(idx, tick);
        }
    }

    /// [`Self::touch`] for a slot already located by [`Self::find_slot`] —
    /// the hot read/write paths look the line up exactly once.
    fn touch_slot(&mut self, idx: u32, tick: u64) {
        let class = self.slots[idx as usize].addr.kind.evict_class() as usize;
        // Already the newest of its class: unlink + re-append would put it
        // right back, so only the timestamp needs refreshing. Engines hit
        // the same line repeatedly (dense-row chunks, output rows), making
        // this the common case.
        if self.tails[class] != idx {
            self.unlink(idx);
            self.push_newest(idx, class);
        }
        self.slots[idx as usize].lru = tick;
        self.check_after_mutation();
    }

    fn insert(&mut self, addr: LineAddr, dirty: bool, ready_at: u64, tick: u64) {
        self.insert_full(addr, dirty, false, ready_at, tick, false);
    }

    /// Inserts a speculative line at the **LRU** end of its class with the
    /// `prefetched` marker set; the MRU probe hint is left on the demand
    /// stream's last line.
    fn insert_prefetched(&mut self, addr: LineAddr, ready_at: u64, tick: u64) {
        self.insert_full(addr, false, true, ready_at, tick, true);
    }

    fn insert_full(
        &mut self,
        addr: LineAddr,
        dirty: bool,
        prefetched: bool,
        ready_at: u64,
        tick: u64,
        at_lru: bool,
    ) {
        if (self.len + 1) * 4 >= self.buckets.len() * 3 {
            self.grow();
        }
        let slot = LineSlot {
            addr,
            dirty,
            prefetched,
            ready_at,
            lru: tick,
            prev: NIL,
            next: NIL,
            bucket: NIL,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = slot;
                idx
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        let mut b = self.home_bucket(addr);
        while self.buckets[b] != NIL {
            b = (b + 1) & self.mask;
        }
        self.buckets[b] = idx;
        self.slots[idx as usize].bucket = b as u32;
        self.len += 1;
        let class = addr.kind.evict_class() as usize;
        if at_lru {
            self.push_oldest(idx, class);
        } else {
            self.push_newest(idx, class);
            self.mru = idx;
        }
        self.check_after_mutation();
    }

    /// Removes `addr` and returns its state; backward-shift deletion keeps
    /// every remaining probe chain intact without tombstones.
    fn remove(&mut self, addr: LineAddr) -> Option<LineSlot> {
        let bucket = self.find_bucket(addr)?;
        Some(self.remove_bucket(bucket))
    }

    /// [`Self::remove`] for a slot already located (eviction walks the LRU
    /// lists, so it has the slot and its back-referenced bucket — no probe).
    fn remove_slot(&mut self, idx: u32) -> LineSlot {
        self.remove_bucket(self.slots[idx as usize].bucket as usize)
    }

    fn remove_bucket(&mut self, bucket: usize) -> LineSlot {
        let idx = self.buckets[bucket];
        self.unlink(idx);
        self.free.push(idx);
        self.len -= 1;
        if self.mru == idx {
            self.mru = NIL;
        }
        let removed = self.slots[idx as usize];

        let mask = self.mask;
        let mut hole = bucket;
        let mut j = bucket;
        loop {
            j = (j + 1) & mask;
            let r = self.buckets[j];
            if r == NIL {
                break;
            }
            let home = self.home_bucket(self.slots[r as usize].addr);
            // The entry at `j` may fill the hole only if its home bucket is
            // cyclically at or before the hole (probe chains must stay
            // contiguous from each entry's home).
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.buckets[hole] = r;
                self.slots[r as usize].bucket = hole as u32;
                hole = j;
            }
        }
        self.buckets[hole] = NIL;
        self.check_after_mutation();
        removed
    }

    /// Span-materialisation insert: bucket + arena bookkeeping only, no
    /// recency linking (the caller rewrites every class list wholesale
    /// afterwards), no MRU refresh, no per-mutation check. Never grows:
    /// occupancy is bounded by `capacity + mshr_count`, which the
    /// constructor sizes the bucket array for with headroom.
    fn insert_unlinked(&mut self, addr: LineAddr, dirty: bool, ready_at: u64, lru: u64) -> u32 {
        debug_assert!(
            (self.len + 1) * 4 < self.buckets.len() * 3,
            "span rebuild exceeded the pre-sized bucket array"
        );
        let slot = LineSlot {
            addr,
            dirty,
            prefetched: false,
            ready_at,
            lru,
            prev: NIL,
            next: NIL,
            bucket: NIL,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = slot;
                idx
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        let mut b = self.home_bucket(addr);
        while self.buckets[b] != NIL {
            b = (b + 1) & self.mask;
        }
        self.buckets[b] = idx;
        self.slots[idx as usize].bucket = b as u32;
        self.len += 1;
        idx
    }

    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        self.buckets = vec![NIL; new_len];
        self.mask = new_len - 1;
        // Re-insert every live arena slot; arena indices are unchanged.
        for class in 0..3 {
            let mut idx = self.heads[class];
            while idx != NIL {
                let addr = self.slots[idx as usize].addr;
                let mut b = self.home_bucket(addr);
                while self.buckets[b] != NIL {
                    b = (b + 1) & self.mask;
                }
                self.buckets[b] = idx;
                self.slots[idx as usize].bucket = b as u32;
                idx = self.slots[idx as usize].next;
            }
        }
    }

    /// O(table) structural self-check, compiled in only with the `audit`
    /// feature (and in tests). Verifies the three redundant views of the
    /// table — bucket array, arena free list, intrusive LRU lists — agree:
    /// every probe chain is contiguous from its home bucket (the property
    /// backward-shift deletion must preserve), no address appears twice,
    /// occupancy accounting matches, and each class list is a well-formed
    /// doubly-linked chain covering exactly the resident lines of its class.
    #[cfg(any(test, feature = "audit"))]
    fn check(&self) {
        let mut seen = std::collections::HashSet::new();
        let mut live = 0usize;
        for (j, &r) in self.buckets.iter().enumerate() {
            if r == NIL {
                continue;
            }
            live += 1;
            let slot = &self.slots[r as usize];
            assert_eq!(
                slot.bucket as usize, j,
                "audit: bucket back-reference of {:?} is stale",
                slot.addr
            );
            assert!(
                seen.insert(slot.addr),
                "audit: duplicate resident address {:?}",
                slot.addr
            );
            let mut b = self.home_bucket(slot.addr);
            while b != j {
                assert_ne!(
                    self.buckets[b],
                    NIL,
                    "audit: probe chain for {:?} broken at bucket {b} (home \
                     {}, stored at {j})",
                    slot.addr,
                    self.home_bucket(slot.addr)
                );
                b = (b + 1) & self.mask;
            }
        }
        assert_eq!(live, self.len, "audit: occupied buckets vs len");
        assert_eq!(
            self.slots.len() - self.free.len(),
            self.len,
            "audit: arena minus free list vs len"
        );
        let mut listed = 0usize;
        for class in 0..3 {
            let mut idx = self.heads[class];
            let mut prev = NIL;
            while idx != NIL {
                let slot = &self.slots[idx as usize];
                assert_eq!(slot.prev, prev, "audit: prev link in class {class}");
                assert_eq!(
                    slot.addr.kind.evict_class() as usize,
                    class,
                    "audit: {:?} linked into wrong class list",
                    slot.addr
                );
                assert!(
                    seen.contains(&slot.addr),
                    "audit: listed line {:?} missing from buckets",
                    slot.addr
                );
                listed += 1;
                assert!(listed <= self.len, "audit: cycle in class {class} list");
                prev = idx;
                idx = slot.next;
            }
            assert_eq!(self.tails[class], prev, "audit: tail of class {class}");
        }
        assert_eq!(listed, self.len, "audit: class lists cover residents");
        if self.mru != NIL {
            let hinted = self.slots[self.mru as usize].addr;
            let via_walk = self
                .find_bucket(hinted)
                .map(|b| self.buckets[b])
                .expect("audit: MRU hint names a non-resident address");
            assert_eq!(via_walk, self.mru, "audit: MRU hint points at a stale slot");
        }
    }

    /// Mutation epilogue: a no-op unless the `audit` feature is on.
    #[inline]
    fn check_after_mutation(&self) {
        #[cfg(feature = "audit")]
        self.check();
    }
}

/// One outstanding fill. A fixed array of these replaces the old
/// `HashMap<LineAddr, u64>`: `mshr_count` is small (32 by default), so a
/// linear scan beats hashing and never allocates.
#[derive(Debug, Clone, Copy)]
struct MshrSlot {
    addr: LineAddr,
    ready: u64,
    valid: bool,
    /// Allocated by the prefetcher rather than a demand miss; counts
    /// against [`MemConfig::prefetch_mshr_cap`] until reaped.
    prefetch: bool,
    /// `sig_bit(addr)`, computed once at insertion so signature rebuilds in
    /// [`Dmb::reap_mshrs`] OR cached bits instead of re-hashing every
    /// surviving address.
    sig: u64,
}

/// Counters of the event-driven core's span execution, reported per layer
/// (they are host-scheduling observability, not architectural state, so they
/// live outside [`crate::stats::HitStats`]-style report fields).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Component wake events processed at a cycle no other event had
    /// reached yet (the request had to wait for a port grant or resource).
    pub events_scheduled: u64,
    /// Wake events serviced at exactly the requested cycle — they rode a
    /// wake that was already due, so no new calendar entry was needed.
    pub events_coalesced: u64,
    /// Cycles inside span windows that no port ever simulated: the port
    /// clocks advanced past them between grants. This is the work the
    /// cycle-stepped core would have burned stepping provably-inert cycles.
    pub cycles_skipped: u64,
}

impl EventStats {
    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &EventStats) {
        self.events_scheduled += other.events_scheduled;
        self.events_coalesced += other.events_coalesced;
        self.cycles_skipped += other.cycles_skipped;
    }

    /// Total wake events processed.
    pub fn events(&self) -> u64 {
        self.events_scheduled + self.events_coalesced
    }
}

/// One operand's line-index window, declared by an engine when opening a
/// phase span on the event core: every DMB access inside the span whose
/// address falls in a declared range takes the range-indexed fast path; any
/// other address closes the span (exactly materialising buffer state) and
/// falls back to the generic path, so undeclared traffic can never be
/// mis-modelled.
#[derive(Debug, Clone, Copy)]
pub struct SpanRange {
    /// Matrix kind of the operand.
    pub kind: MatrixKind,
    /// First line index of the window.
    pub base: u64,
    /// Window length in lines (an upper bound is fine for append-only logs).
    pub len: u64,
}

/// Marker for ring entries that reference the untracked-lines list rather
/// than a declared range.
const UNTRACKED: u32 = u32::MAX;

/// Per-line state inside a span range. `tick == 0` means not resident; live
/// ticks continue the real `lru_tick` sequence, so they are unique and
/// nonzero.
#[derive(Debug, Clone, Copy)]
struct SpanLine {
    tick: u64,
    ready_at: u64,
    dirty: bool,
    /// Arena slot the line occupied at span entry (`NIL` for lines first
    /// inserted during the span). Kept across mid-span evict/re-insert: the
    /// slot a line occupies is unobservable, so the survivor may simply keep
    /// its old one at materialisation.
    slot: u32,
}

const SPAN_LINE_EMPTY: SpanLine = SpanLine {
    tick: 0,
    ready_at: 0,
    dirty: false,
    slot: NIL,
};

#[derive(Debug, Clone)]
struct SpanRangeState {
    kind: MatrixKind,
    base: u64,
    len: u64,
    /// Line state, grown on demand (append-only logs touch lines serially,
    /// so growth is amortised push).
    lines: Vec<SpanLine>,
}

impl SpanRangeState {
    fn line_mut(&mut self, li: usize) -> &mut SpanLine {
        if li >= self.lines.len() {
            self.lines.resize(li + 1, SPAN_LINE_EMPTY);
        }
        &mut self.lines[li]
    }

    fn tick_of(&self, li: usize) -> u64 {
        self.lines.get(li).map_or(0, |l| l.tick)
    }
}

/// One recency event in a span class ring. An entry is *live* while its tick
/// still matches its line's current tick; otherwise the line was touched
/// again (a newer entry exists further down the ring), evicted, or dropped,
/// and the entry is skipped as stale. This lazy representation makes a
/// touch O(1) instead of a linked-list splice.
#[derive(Debug, Clone, Copy)]
struct SpanRingEntry {
    /// Declared-range index, or [`UNTRACKED`].
    range: u32,
    /// Line offset within the range, or index into the untracked list.
    line: u32,
    tick: u64,
}

/// A line resident at span entry that no declared range covers. Engines
/// never address these inside the span, so they sit as eviction victims (or
/// flush/invalidate targets) with frozen state.
#[derive(Debug, Clone, Copy)]
struct SpanUntracked {
    addr: LineAddr,
    dirty: bool,
    ready_at: u64,
    lru: u64,
    slot: u32,
    removed: bool,
}

/// Lazy model of one eviction-class LRU list during a span.
///
/// While the span is *unarmed* (no capacity pressure yet), `ring` holds mere
/// presence markers — one per resident line at snapshot plus one per insert,
/// possibly stale or duplicated — and recency lives only in the line ticks.
/// [`SpanState::arm`] converts the markers into true recency order the first
/// time a victim is needed.
///
/// Once armed, victim search scans `carryover` first, then `ring` from the
/// front: carryover holds candidates that were older than the current ring
/// front but pinned by an outstanding fill when last examined. Moving a
/// pinned candidate to the carryover preserves relative order (all carryover
/// entries predate every surviving ring entry), and rescanning the
/// carryover on each eviction reproduces the real walk, which restarts from
/// the class head and re-checks previously pinned lines every time.
#[derive(Debug, Clone, Default)]
struct SpanClass {
    ring: std::collections::VecDeque<SpanRingEntry>,
    carryover: Vec<SpanRingEntry>,
}

/// Live state of an open span. The real [`LineTable`] is stale while this
/// exists; [`Dmb::end_span`] materialises it back, bit-exactly.
#[derive(Debug, Clone)]
struct SpanState {
    ranges: Vec<SpanRangeState>,
    untracked: Vec<SpanUntracked>,
    classes: [SpanClass; 3],
    /// Live resident lines (the real `lines.len` is stale during the span).
    len: usize,
    /// Tracked lines that were resident at span entry (`(range, line)`),
    /// so materialisation can find dead pre-existing slots without scanning
    /// whole ranges.
    snapshot_tracked: Vec<(u32, u32)>,
    /// Whether eviction pressure has been seen. Unarmed spans elide all
    /// per-touch ring maintenance (the dominant cost of hit-heavy phases);
    /// recency is recovered from the ticks when first needed.
    armed: bool,
    // Event accounting for the span window.
    scheduled: u64,
    coalesced: u64,
    entry_read_port: u64,
    entry_write_port: u64,
    grants: u64,
}

impl SpanState {
    /// Declared range containing `addr`, with the line offset.
    fn locate(&self, addr: LineAddr) -> Option<(usize, usize)> {
        self.ranges.iter().enumerate().find_map(|(ri, r)| {
            if r.kind == addr.kind && addr.index >= r.base && addr.index < r.base + r.len {
                Some((ri, (addr.index - r.base) as usize))
            } else {
                None
            }
        })
    }

    /// Whether a ring entry still describes its line's current state.
    fn entry_live(&self, e: &SpanRingEntry) -> bool {
        if e.range == UNTRACKED {
            !self.untracked[e.line as usize].removed
        } else {
            self.ranges[e.range as usize].tick_of(e.line as usize) == e.tick
        }
    }

    fn entry_addr(&self, e: &SpanRingEntry) -> LineAddr {
        if e.range == UNTRACKED {
            self.untracked[e.line as usize].addr
        } else {
            let r = &self.ranges[e.range as usize];
            LineAddr::new(r.kind, r.base + e.line as u64)
        }
    }

    /// Converts unarmed presence markers into true recency rings. Live lines
    /// carry unique, monotone ticks (the real `lru_tick` sequence), so
    /// sorting live markers by current tick reproduces exactly the class-list
    /// order the generic path would hold; duplicate markers (a line dropped
    /// and re-inserted keeps both) collapse onto the same refreshed tick and
    /// are removed adjacent after the sort.
    fn arm(&mut self) {
        debug_assert!(!self.armed);
        self.armed = true;
        let SpanState {
            ranges,
            untracked,
            classes,
            ..
        } = self;
        for c in classes.iter_mut() {
            debug_assert!(c.carryover.is_empty());
            let mut live: Vec<SpanRingEntry> = c
                .ring
                .drain(..)
                .filter_map(|mut e| {
                    let tick = if e.range == UNTRACKED {
                        let u = &untracked[e.line as usize];
                        if u.removed {
                            return None;
                        }
                        u.lru
                    } else {
                        match ranges[e.range as usize].tick_of(e.line as usize) {
                            0 => return None,
                            t => t,
                        }
                    };
                    e.tick = tick;
                    Some(e)
                })
                .collect();
            live.sort_unstable_by_key(|e| e.tick);
            live.dedup_by_key(|e| e.tick);
            c.ring = live.into();
        }
    }

    /// Records a port grant for the event accounting: a request serviced at
    /// exactly its arrival cycle coalesces onto an already-due wake; one
    /// granted later needed its own calendar entry.
    fn record_grant(&mut self, now: u64, start: u64) {
        self.grants += 1;
        if start == now {
            self.coalesced += 1;
        } else {
            self.scheduled += 1;
        }
    }
}

/// Outcome of a [`Dmb::read`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Cycle at which the data is available to the requester.
    pub ready: u64,
    /// Whether the line was resident (including hit-under-fill).
    pub hit: bool,
}

/// Outcome of a [`Dmb::write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Cycle at which the write has been accepted by the buffer.
    pub ready: u64,
    /// Whether the target line was already resident — for partial-output
    /// writes this is the "can merge in place" signal.
    pub hit: bool,
}

/// The unified dense matrix buffer.
///
/// # Example
///
/// ```
/// use hymm_mem::dram::{AccessPattern, Dram};
/// use hymm_mem::{Dmb, LineAddr, MatrixKind, MemConfig};
///
/// let config = MemConfig::default();
/// let mut dram = Dram::new(&config);
/// let mut dmb = Dmb::new(&config);
/// let addr = LineAddr::new(MatrixKind::Combination, 7);
/// let miss = dmb.read(0, addr, &mut dram, AccessPattern::Random);
/// assert!(!miss.hit);
/// let hit = dmb.read(miss.ready, addr, &mut dram, AccessPattern::Random);
/// assert!(hit.hit); // second access finds the line resident
/// ```
#[derive(Debug, Clone)]
pub struct Dmb {
    capacity_lines: usize,
    line_bytes: u64,
    hit_latency: u64,
    mshr_count: usize,
    class_eviction: bool,
    lines: LineTable,
    lru_tick: u64,
    mshrs: Vec<MshrSlot>,
    /// Number of valid MSHR slots, so the hot paths never scan the array to
    /// count.
    mshr_live: usize,
    /// Valid MSHR slots holding prefetch fills (`<= prefetch_mshr_cap`).
    mshr_prefetch_live: usize,
    /// Cap on `mshr_prefetch_live`, clamped below the pool size so demand
    /// misses always find a slot eventually.
    prefetch_mshr_cap: usize,
    /// Invalid MSHR slot indices, so allocation pops instead of scanning.
    /// Which slot an outstanding fill occupies is unobservable (lookups are
    /// by address), so the pop order is free.
    mshr_free: Vec<u32>,
    /// Bitmask of valid slots among the first 64 MSHRs (bit `i` set ⇔
    /// `mshrs[i].valid`). [`Self::reap_mshrs`] iterates set bits instead of
    /// walking the whole array; slots past the mask width (oversized pools)
    /// fall back to the plain walk.
    mshr_valid_mask: u64,
    /// OR-signature of the live MSHR addresses (one hash-selected bit each).
    /// A clear bit proves absence, so the miss-heavy paths skip the slot
    /// scan for addresses with no outstanding fill; a set bit only means
    /// "maybe" and falls through to the exact scan. Rebuilt by
    /// [`Self::reap_mshrs`], the sole place fills are invalidated.
    mshr_sig: u64,
    /// Earliest `ready` cycle among valid MSHRs (`u64::MAX` when none):
    /// [`Self::reap_mshrs`] is a single compare until a fill actually
    /// completes.
    mshr_min_ready: u64,
    read_port_free: u64,
    write_port_free: u64,
    /// Reused by `flush_kind`/`invalidate_kind` so drains don't allocate.
    drain_scratch: Vec<LineAddr>,
    hits: HitStats,
    /// Lines ever inserted (fills + write allocations). Together with
    /// `line_drops` this closes the occupancy conservation law the audit
    /// layer checks: `line_fills == evictions + line_drops + occupancy`.
    line_fills: u64,
    /// Lines removed by `flush_kind`/`invalidate_kind` (not evictions).
    line_drops: u64,
    evictions: u64,
    dirty_evictions: u64,
    mshr_merges: u64,
    mshr_stalls: u64,
    /// Total cycles primary misses waited for a free MSHR (the depth behind
    /// `mshr_stalls`).
    mshr_stall_cycles: u64,
    /// Total cycles between presentation and data-ready across read misses
    /// (primary and secondary) — the miss-latency component of the stall
    /// waterfall.
    miss_latency_cycles: u64,
    accumulator_merges: u64,
    /// Data-prefetcher accuracy/coverage/timeliness counters.
    prefetch_stats: PrefetchStats,
    trace: Option<Box<TraceRing>>,
    /// Port-grant cycle of the access currently being served; events emitted
    /// by shared helpers (eviction, MSHR allocation) are stamped with it so
    /// each port's track stays in non-decreasing timestamp order.
    port_ts: u64,
    /// Track of the port currently being served (read or write).
    port_track: Track,
    /// Open phase span of the event-driven core, `None` on the generic
    /// (stepped) path.
    span: Option<Box<SpanState>>,
    /// Parked state of the last closed span, reused by the next
    /// [`Dmb::begin_span`] so the per-phase span allocations (recency rings,
    /// untracked and snapshot scratch) amortise across a run instead of
    /// being paid per phase (DESIGN §11.4's span-mode overhead).
    span_spare: Option<Box<SpanState>>,
    /// Retired per-range line tables, capacity preserved for reuse.
    span_line_pool: Vec<Vec<SpanLine>>,
    /// Event counters drained from closed spans, collected by the machine.
    events: EventStats,
}

impl Dmb {
    /// Creates an empty buffer from the memory configuration.
    pub fn new(config: &MemConfig) -> Dmb {
        let capacity_lines = config.dmb_lines().max(1);
        let mshr_count = config.mshr_count.max(1);
        Dmb {
            capacity_lines,
            line_bytes: config.line_bytes as u64,
            hit_latency: config.dmb_hit_latency,
            mshr_count,
            class_eviction: config.class_eviction,
            // Outstanding fills keep victims pinned, so occupancy can
            // transiently exceed the nominal capacity by the MSHR count.
            lines: LineTable::with_capacity(capacity_lines + mshr_count),
            lru_tick: 0,
            mshrs: vec![
                MshrSlot {
                    addr: LineAddr::new(MatrixKind::Weight, 0),
                    ready: 0,
                    valid: false,
                    prefetch: false,
                    sig: 0
                };
                mshr_count
            ],
            mshr_live: 0,
            mshr_prefetch_live: 0,
            prefetch_mshr_cap: config.prefetch_mshr_cap.min(mshr_count.saturating_sub(1)),
            mshr_free: (0..mshr_count as u32).collect(),
            mshr_valid_mask: 0,
            mshr_sig: 0,
            mshr_min_ready: u64::MAX,
            read_port_free: 0,
            write_port_free: 0,
            drain_scratch: Vec::new(),
            hits: HitStats::default(),
            line_fills: 0,
            line_drops: 0,
            evictions: 0,
            dirty_evictions: 0,
            mshr_merges: 0,
            mshr_stalls: 0,
            mshr_stall_cycles: 0,
            miss_latency_cycles: 0,
            accumulator_merges: 0,
            prefetch_stats: PrefetchStats::default(),
            trace: config.trace_ring(),
            port_ts: 0,
            port_track: Track::DmbRead,
            span: None,
            span_spare: None,
            span_line_pool: Vec::new(),
            events: EventStats::default(),
        }
    }

    fn touch_slot(&mut self, idx: u32) {
        self.lru_tick += 1;
        let tick = self.lru_tick;
        self.lines.touch_slot(idx, tick);
    }

    /// Emits an event on the track of the port currently being served,
    /// stamped at that port's grant cycle.
    fn trace_port_event(&mut self, kind: TraceKind) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.push(TraceEvent {
                track: self.port_track,
                kind,
                ts: self.port_ts,
                dur: 0,
            });
        }
    }

    /// Signature bit of one address (the filter's hash-selected position).
    fn sig_bit(addr: LineAddr) -> u64 {
        1u64 << (hash_addr(addr) >> 58)
    }

    /// Audit: the cached MSHR aggregates (live count, earliest completion,
    /// membership signature) must agree with the slot array. The signature
    /// may be a superset of the live bits (bits of reaped fills persist
    /// until the next rebuild) — it must never miss a live address.
    #[cfg(any(test, feature = "audit"))]
    fn check_mshr_tracking(&self) {
        let live = self.mshrs.iter().filter(|m| m.valid).count();
        assert_eq!(live, self.mshr_live, "audit: mshr_live vs slot array");
        assert_eq!(
            live + self.mshr_free.len(),
            self.mshrs.len(),
            "audit: free list plus live slots vs MSHR array"
        );
        for &i in &self.mshr_free {
            assert!(
                !self.mshrs[i as usize].valid,
                "audit: free list names a live MSHR slot"
            );
        }
        for (i, m) in self.mshrs.iter().take(64).enumerate() {
            assert_eq!(
                self.mshr_valid_mask & (1u64 << i) != 0,
                m.valid,
                "audit: valid mask disagrees with slot {i}"
            );
        }
        let min = self
            .mshrs
            .iter()
            .filter(|m| m.valid)
            .map(|m| m.ready)
            .min()
            .unwrap_or(u64::MAX);
        assert!(
            self.mshr_min_ready <= min,
            "audit: mshr_min_ready {} above true minimum {}",
            self.mshr_min_ready,
            min
        );
        for m in self.mshrs.iter().filter(|m| m.valid) {
            assert_eq!(
                m.sig,
                Self::sig_bit(m.addr),
                "audit: cached signature bit of {:?} is stale",
                m.addr
            );
            assert!(
                self.mshr_sig & m.sig != 0,
                "audit: live MSHR {:?} missing from signature",
                m.addr
            );
        }
        let prefetch_live = self.mshrs.iter().filter(|m| m.valid && m.prefetch).count();
        assert_eq!(
            prefetch_live, self.mshr_prefetch_live,
            "audit: mshr_prefetch_live vs slot array"
        );
        assert!(
            prefetch_live <= self.prefetch_mshr_cap,
            "audit: prefetches exceed their MSHR cap"
        );
    }

    /// MSHR mutation epilogue: a no-op unless the `audit` feature is on.
    #[inline]
    fn check_mshr_after_mutation(&self) {
        #[cfg(feature = "audit")]
        self.check_mshr_tracking();
    }

    /// Whether `addr` can possibly be a live MSHR (clear bit = proven
    /// absent; set bit = must scan).
    fn mshr_may_contain(&self, addr: LineAddr) -> bool {
        self.mshr_sig & Self::sig_bit(addr) != 0
    }

    fn mshr_lookup(&self, addr: LineAddr) -> Option<u64> {
        if self.mshr_live == 0 || !self.mshr_may_contain(addr) {
            return None;
        }
        self.mshrs
            .iter()
            .find(|m| m.valid && m.addr == addr)
            .map(|m| m.ready)
    }

    fn mshr_insert(&mut self, addr: LineAddr, ready: u64, prefetch: bool) {
        let sig = Self::sig_bit(addr);
        self.mshr_live += 1;
        if prefetch {
            self.mshr_prefetch_live += 1;
        }
        self.mshr_sig |= sig;
        self.mshr_min_ready = self.mshr_min_ready.min(ready);
        if self.trace.is_some() {
            self.trace_port_event(TraceKind::MshrAllocate {
                addr,
                occupancy: self.mshr_live as u32,
                ready,
            });
        }
        let slot = MshrSlot {
            addr,
            ready,
            valid: true,
            prefetch,
            sig,
        };
        let i = match self.mshr_free.pop() {
            Some(i) => {
                self.mshrs[i as usize] = slot;
                i as usize
            }
            // Unreachable: the stall path always frees a slot first. Grow
            // rather than corrupt state if that invariant ever breaks.
            None => {
                self.mshrs.push(slot);
                self.mshrs.len() - 1
            }
        };
        if i < 64 {
            self.mshr_valid_mask |= 1u64 << i;
        }
        self.check_mshr_after_mutation();
    }

    fn insert_line(
        &mut self,
        addr: LineAddr,
        dirty: bool,
        ready_at: u64,
        now: u64,
        dram: &mut Dram,
    ) {
        while self.lines.len >= self.capacity_lines {
            if !self.evict_one(now, dram) {
                break; // everything in flight; oversubscribe rather than deadlock
            }
        }
        self.lru_tick += 1;
        let tick = self.lru_tick;
        self.lines.insert(addr, dirty, ready_at, tick);
        self.line_fills += 1;
    }

    /// Evicts one line following class priority then LRU (or plain global
    /// LRU when class eviction is disabled); returns false if no evictable
    /// line exists (all in-flight).
    fn evict_one(&mut self, now: u64, dram: &mut Dram) -> bool {
        // Oldest line in `class` that is not an outstanding fill. Walks from
        // the LRU end; the walk is bounded by the number of in-flight lines
        // (at most `mshr_count`), keeping eviction O(1) in buffer size. With
        // no fill outstanding (the common case for write-allocate streams)
        // the class head is the victim with no MSHR scan at all.
        let no_inflight = self.mshr_live == 0;
        let sig = self.mshr_sig;
        let victim_of = |lines: &LineTable, mshrs: &[MshrSlot], class: usize| {
            let mut idx = lines.heads[class];
            while idx != NIL {
                let slot = &lines.slots[idx as usize];
                // The signature filter proves most candidates unpinned
                // without touching the MSHR array.
                if no_inflight
                    || sig & Self::sig_bit(slot.addr) == 0
                    || !mshrs.iter().any(|m| m.valid && m.addr == slot.addr)
                {
                    return Some((slot.lru, idx));
                }
                idx = slot.next;
            }
            None
        };
        let victim = if self.class_eviction {
            (0..3).find_map(|c| victim_of(&self.lines, &self.mshrs, c))
        } else {
            // Plain LRU: oldest tick across all classes.
            (0..3)
                .filter_map(|c| victim_of(&self.lines, &self.mshrs, c))
                .min_by_key(|&(tick, _)| tick)
        };
        if let Some((_, idx)) = victim {
            let line = self.lines.remove_slot(idx);
            self.evictions += 1;
            if line.prefetched {
                self.prefetch_stats.evicted_unused += 1;
            }
            if line.dirty {
                self.dirty_evictions += 1;
                // Evicted victims scatter: charged as random traffic.
                dram.write(now, line.addr.kind, self.line_bytes, AccessPattern::Random);
            }
            if self.trace.is_some() {
                self.trace_port_event(TraceKind::DmbEvict {
                    addr: line.addr,
                    dirty: line.dirty,
                });
            }
            return true;
        }
        false
    }

    fn reap_mshrs(&mut self, now: u64) {
        // No valid slot has `ready <= now`: the scan would be a no-op.
        if now < self.mshr_min_ready {
            return;
        }
        let mut min = u64::MAX;
        let mut sig = 0u64;
        // Iterating set bits ascending reproduces the plain array walk's
        // retirement order exactly (free-list pushes, trace events) while
        // touching only live slots.
        let mut pending = self.mshr_valid_mask;
        while pending != 0 {
            let i = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            let m = &self.mshrs[i];
            if m.ready <= now {
                self.mshr_valid_mask &= !(1u64 << i);
                self.retire_mshr_slot(i, now);
            } else {
                min = min.min(m.ready);
                sig |= m.sig;
            }
        }
        // Oversized pools (beyond the mask width) keep the plain walk.
        for i in 64..self.mshrs.len() {
            let m = &self.mshrs[i];
            if m.valid {
                if m.ready <= now {
                    self.retire_mshr_slot(i, now);
                } else {
                    min = min.min(m.ready);
                    sig |= m.sig;
                }
            }
        }
        self.mshr_min_ready = min;
        self.mshr_sig = sig;
        self.check_mshr_after_mutation();
    }

    /// Retires one completed fill: slot bookkeeping, free-list return, and
    /// trace emission. Callers clear the valid-mask bit themselves.
    fn retire_mshr_slot(&mut self, i: usize, now: u64) {
        let m = &mut self.mshrs[i];
        m.valid = false;
        let addr = m.addr;
        let was_prefetch = m.prefetch;
        self.mshr_live -= 1;
        if was_prefetch {
            self.mshr_prefetch_live -= 1;
        }
        self.mshr_free.push(i as u32);
        if let Some(t) = self.trace.as_deref_mut() {
            // Completion-ordered stream: both ports reap on their own
            // clocks, so this track is not monotone.
            t.push(TraceEvent {
                track: Track::MshrRetire,
                kind: TraceKind::MshrRetire {
                    addr,
                    occupancy: self.mshr_live as u32,
                },
                ts: now,
                dur: 0,
            });
            if was_prefetch {
                t.push(TraceEvent {
                    track: Track::Prefetch,
                    kind: TraceKind::PrefetchFill { addr },
                    ts: now,
                    dur: 0,
                });
            }
        }
    }

    /// First demand touch of a prefetched line: clears the marker, counts
    /// the prefetch useful, and attributes `waited` residual fill cycles to
    /// the `prefetch-late` class (the hit path's `max(ready_at)` already
    /// models the wait; this only labels it).
    fn demand_claims_prefetch(&mut self, idx: u32, start: u64, waited: u64) {
        let slot = &mut self.lines.slots[idx as usize];
        slot.prefetched = false;
        let addr = slot.addr;
        self.prefetch_stats.useful += 1;
        if waited > 0 {
            self.prefetch_stats.late += 1;
            self.prefetch_stats.late_cycles += waited;
            if let Some(t) = self.trace.as_deref_mut() {
                t.push(TraceEvent {
                    track: Track::Prefetch,
                    kind: TraceKind::PrefetchLate { addr, waited },
                    ts: start,
                    dur: 0,
                });
            }
        }
    }

    /// Records one dropped prefetch candidate.
    fn drop_prefetch(&mut self, now: u64, addr: LineAddr, reason: PrefetchDrop) -> PrefetchDrop {
        self.prefetch_stats.record_drop(reason);
        if let Some(t) = self.trace.as_deref_mut() {
            t.push(TraceEvent {
                track: Track::Prefetch,
                kind: TraceKind::PrefetchDropped { addr, reason },
                ts: now,
                dur: 0,
            });
        }
        reason
    }

    /// Evicts lines until the buffer has room, considering only classes
    /// `0..=max_class` — a prefetch never displaces a line of a hotter
    /// class than its own. Returns `false` (leaving any legal evictions it
    /// already made in place) when no such victim exists.
    fn make_room_up_to_class(&mut self, now: u64, max_class: usize, dram: &mut Dram) -> bool {
        while self.lines.len >= self.capacity_lines {
            let no_inflight = self.mshr_live == 0;
            let sig = self.mshr_sig;
            let victim_of = |lines: &LineTable, mshrs: &[MshrSlot], class: usize| {
                let mut idx = lines.heads[class];
                while idx != NIL {
                    let slot = &lines.slots[idx as usize];
                    if no_inflight
                        || sig & Self::sig_bit(slot.addr) == 0
                        || !mshrs.iter().any(|m| m.valid && m.addr == slot.addr)
                    {
                        return Some((slot.lru, idx));
                    }
                    idx = slot.next;
                }
                None
            };
            let victim = if self.class_eviction {
                (0..=max_class).find_map(|c| victim_of(&self.lines, &self.mshrs, c))
            } else {
                (0..=max_class)
                    .filter_map(|c| victim_of(&self.lines, &self.mshrs, c))
                    .min_by_key(|&(tick, _)| tick)
            };
            let Some((_, idx)) = victim else {
                return false;
            };
            let line = self.lines.remove_slot(idx);
            self.evictions += 1;
            if line.prefetched {
                self.prefetch_stats.evicted_unused += 1;
            }
            if line.dirty {
                self.dirty_evictions += 1;
                dram.write(now, line.addr.kind, self.line_bytes, AccessPattern::Random);
            }
            if self.trace.is_some() {
                self.trace_port_event(TraceKind::DmbEvict {
                    addr: line.addr,
                    dirty: line.dirty,
                });
            }
        }
        true
    }

    /// Presents a speculative fill of `addr` at cycle `now`, issued by the
    /// machine's prefetcher. Consumes **no port time** (the prefetcher has
    /// its own request path into the MSHR pool) and never stalls: any
    /// resource conflict drops the candidate and reports why.
    ///
    /// Returns `None` when the prefetch was issued, `Some(reason)` when it
    /// was dropped.
    pub fn prefetch(
        &mut self,
        now: u64,
        addr: LineAddr,
        dram: &mut Dram,
        pattern: AccessPattern,
    ) -> Option<PrefetchDrop> {
        // Spans require the prefetcher off; close one defensively rather
        // than let the generic machinery mutate stale structures.
        if self.span.is_some() {
            self.end_span();
        }
        self.reap_mshrs(now);
        if self.contains(addr) || self.mshr_lookup(addr).is_some() {
            return Some(self.drop_prefetch(now, addr, PrefetchDrop::Redundant));
        }
        if self.mshr_live >= self.mshr_count || self.mshr_prefetch_live >= self.prefetch_mshr_cap {
            return Some(self.drop_prefetch(now, addr, PrefetchDrop::MshrCap));
        }
        // One access latency of backlog is the horizon: if no channel frees
        // within it, the system is bandwidth-bound and speculative traffic
        // would only push demand transfers further out.
        if dram.backlogged(now, dram.latency()) {
            return Some(self.drop_prefetch(now, addr, PrefetchDrop::DramBusy));
        }
        // Shared-helper events (eviction, MSHR allocate) issued from here
        // belong to the prefetch clock domain.
        self.port_ts = now;
        self.port_track = Track::Prefetch;
        let class = addr.kind.evict_class() as usize;
        if !self.make_room_up_to_class(now, class, dram) {
            return Some(self.drop_prefetch(now, addr, PrefetchDrop::NoVictim));
        }
        let ready = dram.read(now, addr.kind, self.line_bytes, pattern);
        self.mshr_insert(addr, ready, true);
        self.lru_tick += 1;
        let tick = self.lru_tick;
        self.lines.insert_prefetched(addr, ready, tick);
        self.line_fills += 1;
        self.prefetch_stats.issued += 1;
        if let Some(t) = self.trace.as_deref_mut() {
            t.push(TraceEvent {
                track: Track::Prefetch,
                kind: TraceKind::PrefetchIssue { addr, ready },
                ts: now,
                dur: 0,
            });
        }
        None
    }

    /// Presents a read request at cycle `now`; `pattern` describes how a
    /// resulting DRAM fill would land on the channel (streaming engines pass
    /// [`AccessPattern::Sequential`], scattered ones [`AccessPattern::Random`]).
    pub fn read(
        &mut self,
        now: u64,
        addr: LineAddr,
        dram: &mut Dram,
        pattern: AccessPattern,
    ) -> ReadOutcome {
        if self.span.is_some() {
            return self.span_read(now, addr, dram, pattern);
        }
        let start = now.max(self.read_port_free);
        self.read_port_free = start + 1;
        self.port_ts = start;
        self.port_track = Track::DmbRead;
        self.reap_mshrs(start);

        if let Some(idx) = self.lines.find_slot(addr) {
            let ready = (start + self.hit_latency).max(self.lines.slots[idx as usize].ready_at);
            self.hits.read_hits += 1;
            if self.lines.slots[idx as usize].prefetched {
                self.demand_claims_prefetch(idx, start, ready - (start + self.hit_latency));
            }
            self.touch_slot(idx);
            if self.trace.is_some() {
                self.trace_port_event(TraceKind::DmbAccess {
                    addr,
                    class: AccessClass::ReadHit,
                    ready,
                });
            }
            return ReadOutcome { ready, hit: true };
        }
        if let Some(fill) = self.mshr_lookup(addr) {
            // Secondary miss merged into the outstanding fill.
            self.mshr_merges += 1;
            self.hits.read_misses += 1;
            let ready = fill.max(start + self.hit_latency);
            self.miss_latency_cycles += ready - start;
            if self.trace.is_some() {
                self.trace_port_event(TraceKind::DmbAccess {
                    addr,
                    class: AccessClass::ReadMissMerge,
                    ready,
                });
            }
            return ReadOutcome { ready, hit: false };
        }
        // Primary miss: allocate an MSHR, stalling if none is free.
        let mut issue = start;
        if self.mshr_live >= self.mshr_count {
            // All slots are valid, so the tracked minimum IS the earliest
            // completion — no scan needed to find it.
            self.mshr_stalls += 1;
            issue = issue.max(self.mshr_min_ready);
            self.mshr_stall_cycles += issue - start;
            if self.trace.is_some() {
                self.trace_port_event(TraceKind::MshrStall {
                    waited: issue - start,
                });
            }
            self.reap_mshrs(issue);
        }
        let ready = dram.read(issue, addr.kind, self.line_bytes, pattern);
        self.mshr_insert(addr, ready, false);
        self.insert_line(addr, false, ready, issue, dram);
        self.hits.read_misses += 1;
        self.miss_latency_cycles += ready - start;
        if self.trace.is_some() {
            self.trace_port_event(TraceKind::DmbAccess {
                addr,
                class: AccessClass::ReadMissFill,
                ready,
            });
        }
        ReadOutcome { ready, hit: false }
    }

    /// Presents a write request at cycle `now`.
    ///
    /// With `allocate`, a missing line is write-allocated (full-line write —
    /// no fetch); otherwise the write bypasses the buffer straight to DRAM
    /// (used for streaming output rows the engine will never touch again).
    pub fn write(
        &mut self,
        now: u64,
        addr: LineAddr,
        dram: &mut Dram,
        allocate: bool,
        pattern: AccessPattern,
    ) -> WriteOutcome {
        if self.span.is_some() {
            return self.span_write(now, addr, dram, allocate, pattern);
        }
        let start = now.max(self.write_port_free);
        self.write_port_free = start + 1;
        self.port_ts = start;
        self.port_track = Track::DmbWrite;
        self.reap_mshrs(start);

        if let Some(idx) = self.lines.find_slot(addr) {
            self.lines.slots[idx as usize].dirty = true;
            self.hits.write_hits += 1;
            if self.lines.slots[idx as usize].prefetched {
                // Write hits never wait on an in-flight fill (full-line
                // overwrite), so no lateness is charged.
                self.demand_claims_prefetch(idx, start, 0);
            }
            self.touch_slot(idx);
            if self.trace.is_some() {
                self.trace_port_event(TraceKind::DmbAccess {
                    addr,
                    class: AccessClass::WriteHit,
                    ready: start + self.hit_latency,
                });
            }
            return WriteOutcome {
                ready: start + self.hit_latency,
                hit: true,
            };
        }
        self.hits.write_misses += 1;
        if allocate {
            self.insert_line(addr, true, start + self.hit_latency, start, dram);
            if self.trace.is_some() {
                self.trace_port_event(TraceKind::DmbAccess {
                    addr,
                    class: AccessClass::WriteMissAlloc,
                    ready: start + self.hit_latency,
                });
            }
            WriteOutcome {
                ready: start + self.hit_latency,
                hit: false,
            }
        } else {
            dram.write(start, addr.kind, self.line_bytes, pattern);
            if self.trace.is_some() {
                self.trace_port_event(TraceKind::DmbAccess {
                    addr,
                    class: AccessClass::WriteMissBypass,
                    ready: start + 1,
                });
            }
            WriteOutcome {
                ready: start + 1,
                hit: false,
            }
        }
    }

    /// Records a near-memory accumulator merge (engines call this when a
    /// partial-output write hit is merged in place).
    pub fn record_accumulator_merge(&mut self) {
        self.accumulator_merges += 1;
    }

    /// Collects every resident address of `kind` into the reusable drain
    /// scratch (all lines of one kind share an eviction class, so only that
    /// class list is walked).
    fn collect_kind(&mut self, kind: MatrixKind) {
        self.drain_scratch.clear();
        let class = kind.evict_class() as usize;
        let mut idx = self.lines.heads[class];
        while idx != NIL {
            let slot = &self.lines.slots[idx as usize];
            if slot.addr.kind == kind {
                self.drain_scratch.push(slot.addr);
            }
            idx = slot.next;
        }
    }

    /// Writes back all dirty lines of `kind` and drops every line of that
    /// kind; returns the cycle at which the last writeback is accepted.
    pub fn flush_kind(&mut self, now: u64, kind: MatrixKind, dram: &mut Dram) -> u64 {
        if self.span.is_some() {
            return self.span_flush_kind(now, kind, dram);
        }
        self.collect_kind(kind);
        // Deterministic order: by line index.
        let mut sorted = std::mem::take(&mut self.drain_scratch);
        sorted.sort_unstable_by_key(|a| a.index);
        let mut done = now;
        for &addr in &sorted {
            let line = self.lines.remove(addr).expect("listed line is resident");
            self.line_drops += 1;
            if line.prefetched {
                self.prefetch_stats.evicted_unused += 1;
            }
            if line.dirty {
                // Flushes walk line indices in order: streaming writeback.
                done = done.max(dram.write(done, kind, self.line_bytes, AccessPattern::Sequential));
            }
        }
        self.drain_scratch = sorted;
        done
    }

    /// Drops every line of `kind` without writeback (dead data).
    pub fn invalidate_kind(&mut self, kind: MatrixKind) {
        if self.span.is_some() {
            self.span_invalidate_kind(kind);
            return;
        }
        self.collect_kind(kind);
        let addrs = std::mem::take(&mut self.drain_scratch);
        for &addr in &addrs {
            let line = self.lines.remove(addr).expect("listed line is resident");
            self.line_drops += 1;
            if line.prefetched {
                self.prefetch_stats.evicted_unused += 1;
            }
        }
        self.drain_scratch = addrs;
    }

    /// Whether a line is currently resident.
    pub fn contains(&self, addr: LineAddr) -> bool {
        if let Some(span) = &self.span {
            if let Some((ri, li)) = span.locate(addr) {
                return span.ranges[ri].tick_of(li) != 0;
            }
            return span.untracked.iter().any(|u| !u.removed && u.addr == addr);
        }
        // Read-only MRU probe (a valid hint always names a live slot), then
        // the hash walk; residency queries must not disturb LRU state, so
        // the hint is not refreshed here.
        (self.lines.mru != NIL && self.lines.slots[self.lines.mru as usize].addr == addr)
            || self.lines.find_bucket(addr).is_some()
    }

    /// Number of resident lines of `kind`.
    pub fn resident_lines(&self, kind: MatrixKind) -> usize {
        let class = kind.evict_class() as usize;
        if let Some(span) = &self.span {
            let c = &span.classes[class];
            if span.armed {
                return c
                    .carryover
                    .iter()
                    .chain(c.ring.iter())
                    .filter(|e| span.entry_live(e) && span.entry_addr(e).kind == kind)
                    .count();
            }
            // Unarmed markers can be stale (touches bump only the line tick)
            // or duplicated (a dropped-then-re-inserted line keeps both), so
            // count distinct *current* ticks of live lines of the kind —
            // ticks are unique per live line.
            let mut ticks: Vec<u64> = c
                .ring
                .iter()
                .filter_map(|e| {
                    if e.range == UNTRACKED {
                        let u = &span.untracked[e.line as usize];
                        (!u.removed && u.addr.kind == kind).then_some(u.lru)
                    } else {
                        let r = &span.ranges[e.range as usize];
                        (r.kind == kind)
                            .then(|| r.tick_of(e.line as usize))
                            .filter(|&t| t != 0)
                    }
                })
                .collect();
            ticks.sort_unstable();
            ticks.dedup();
            return ticks.len();
        }
        let mut count = 0;
        let mut idx = self.lines.heads[class];
        while idx != NIL {
            let slot = &self.lines.slots[idx as usize];
            if slot.addr.kind == kind {
                count += 1;
            }
            idx = slot.next;
        }
        count
    }

    /// Total resident lines.
    pub fn occupancy(&self) -> usize {
        self.span.as_ref().map_or(self.lines.len, |s| s.len)
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    /// Hit/miss counters.
    pub fn hit_stats(&self) -> HitStats {
        self.hits
    }

    /// Lines ever inserted into the buffer (read fills + write allocations).
    pub fn line_fills(&self) -> u64 {
        self.line_fills
    }

    /// Lines removed by [`Self::flush_kind`]/[`Self::invalidate_kind`]
    /// rather than evicted. `line_fills() == evictions() + line_drops() +
    /// occupancy()` at all times; the audit layer enforces it.
    pub fn line_drops(&self) -> u64 {
        self.line_drops
    }

    /// Total evictions (dirty or clean).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Evictions that wrote data back to DRAM.
    pub fn dirty_evictions(&self) -> u64 {
        self.dirty_evictions
    }

    /// Secondary read misses merged into outstanding MSHRs.
    pub fn mshr_merges(&self) -> u64 {
        self.mshr_merges
    }

    /// MSHRs currently holding an outstanding miss (demand or prefetch) —
    /// the point-in-time gauge the metrics sampler records; the
    /// trace-event `occupancy` field carries the same value per
    /// transition.
    pub fn mshr_occupancy(&self) -> usize {
        self.mshr_live
    }

    /// Requests that stalled waiting for a free MSHR.
    pub fn mshr_stalls(&self) -> u64 {
        self.mshr_stalls
    }

    /// Total cycles primary misses spent waiting for a free MSHR.
    pub fn mshr_stall_cycles(&self) -> u64 {
        self.mshr_stall_cycles
    }

    /// Total cycles between presentation and data-ready across read misses.
    pub fn miss_latency_cycles(&self) -> u64 {
        self.miss_latency_cycles
    }

    /// Data-prefetcher counters (all zero unless [`Dmb::prefetch`] was
    /// driven).
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetch_stats
    }

    /// Moves any buffered trace events into `into` (no-op when tracing is
    /// disabled).
    pub fn drain_trace(&mut self, into: &mut TraceData) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.drain_into(into);
        }
    }

    /// Near-memory accumulator merges recorded by the engines.
    pub fn accumulator_merges(&self) -> u64 {
        self.accumulator_merges
    }

    // ------------------------------------------------------------------
    // Event-driven core: phase spans.
    //
    // A span freezes the line table and forward-indexes the phase's working
    // set into range-indexed arrays plus lazy per-class recency rings, so
    // the per-access cost drops from hash probes and list splices to a few
    // array operations. Every counter, port clock, MSHR operation and DRAM
    // call runs the *same* live code as the generic path, and `end_span`
    // materialises the table back bit-exactly — the `scheduler_equivalence`
    // differential test and the timing goldens pin this.
    // ------------------------------------------------------------------

    /// Opens a phase span over the declared operand ranges. Returns `false`
    /// — leaving the buffer on the generic path — when span preconditions
    /// do not hold: tracing on (every cycle becomes observable, so skipping
    /// is illegal), class eviction off (victim choice would observe global
    /// LRU ticks), prefetched lines present or speculative fills in flight
    /// (spans require the prefetcher off), a span already open, or
    /// overlapping/degenerate ranges.
    pub fn begin_span(&mut self, ranges: &[SpanRange]) -> bool {
        if self.span.is_some()
            || self.trace.is_some()
            || !self.class_eviction
            || self.mshr_prefetch_live > 0
        {
            return false;
        }
        for (i, a) in ranges.iter().enumerate() {
            if a.len == 0 || a.len >= u32::MAX as u64 {
                return false;
            }
            for b in &ranges[i + 1..] {
                if a.kind == b.kind && a.base < b.base + b.len && b.base < a.base + a.len {
                    return false;
                }
            }
        }
        // Reuse the last closed span's containers (recycled empty, capacity
        // preserved) rather than reallocating the whole working set per
        // phase.
        let mut span = self.span_spare.take().unwrap_or_else(|| {
            Box::new(SpanState {
                ranges: Vec::new(),
                untracked: Vec::new(),
                classes: Default::default(),
                len: 0,
                snapshot_tracked: Vec::new(),
                armed: false,
                scheduled: 0,
                coalesced: 0,
                entry_read_port: 0,
                entry_write_port: 0,
                grants: 0,
            })
        });
        debug_assert!(
            span.ranges.is_empty()
                && span.untracked.is_empty()
                && span.snapshot_tracked.is_empty()
                && span
                    .classes
                    .iter()
                    .all(|c| c.ring.is_empty() && c.carryover.is_empty()),
            "recycled span scratch must be empty"
        );
        for r in ranges {
            let lines = self.span_line_pool.pop().unwrap_or_default();
            debug_assert!(lines.is_empty(), "pooled line table must be empty");
            span.ranges.push(SpanRangeState {
                kind: r.kind,
                base: r.base,
                len: r.len,
                lines,
            });
        }
        span.len = self.lines.len;
        span.armed = false;
        span.scheduled = 0;
        span.coalesced = 0;
        span.entry_read_port = self.read_port_free;
        span.entry_write_port = self.write_port_free;
        span.grants = 0;
        // Snapshot: walk each class list oldest to newest, so ring order
        // equals real recency order.
        for class in 0..3 {
            let mut idx = self.lines.heads[class];
            while idx != NIL {
                let slot = &self.lines.slots[idx as usize];
                if slot.prefetched {
                    self.recycle_span(span);
                    return false;
                }
                let entry = match span.locate(slot.addr) {
                    Some((ri, li)) => {
                        *span.ranges[ri].line_mut(li) = SpanLine {
                            tick: slot.lru,
                            ready_at: slot.ready_at,
                            dirty: slot.dirty,
                            slot: idx,
                        };
                        span.snapshot_tracked.push((ri as u32, li as u32));
                        SpanRingEntry {
                            range: ri as u32,
                            line: li as u32,
                            tick: slot.lru,
                        }
                    }
                    None => {
                        span.untracked.push(SpanUntracked {
                            addr: slot.addr,
                            dirty: slot.dirty,
                            ready_at: slot.ready_at,
                            lru: slot.lru,
                            slot: idx,
                            removed: false,
                        });
                        SpanRingEntry {
                            range: UNTRACKED,
                            line: (span.untracked.len() - 1) as u32,
                            tick: slot.lru,
                        }
                    }
                };
                span.classes[class].ring.push_back(entry);
                idx = slot.next;
            }
        }
        self.span = Some(span);
        true
    }

    /// Clears a span's containers (keeping their capacity) and parks the
    /// whole state for the next [`Dmb::begin_span`].
    fn recycle_span(&mut self, mut span: Box<SpanState>) {
        for r in span.ranges.iter_mut() {
            let mut lines = std::mem::take(&mut r.lines);
            lines.clear();
            self.span_line_pool.push(lines);
        }
        span.ranges.clear();
        span.untracked.clear();
        span.snapshot_tracked.clear();
        for c in span.classes.iter_mut() {
            c.ring.clear();
            c.carryover.clear();
        }
        self.span_spare = Some(span);
    }

    /// Closes the open span (no-op without one), materialising the exact
    /// line-table state the generic path would have reached: dead
    /// pre-existing slots are removed, net-new lines hash-inserted,
    /// surviving slots updated in place, and every class list relinked in
    /// final recency order. Event counters accumulate for
    /// [`Dmb::take_events`].
    pub fn end_span(&mut self) {
        let Some(mut span) = self.span.take() else {
            return;
        };
        // Arming is exactly the marker → recency-order conversion the
        // materialisation walk below needs; a never-pressured span pays it
        // once, here.
        if !span.armed {
            span.arm();
        }
        for u in &span.untracked {
            if u.removed {
                let _ = self.lines.remove_slot(u.slot);
            }
        }
        for &(ri, li) in &span.snapshot_tracked {
            let line = &span.ranges[ri as usize].lines[li as usize];
            if line.tick == 0 {
                let _ = self.lines.remove_slot(line.slot);
            }
        }
        for (class, c) in span.classes.iter().enumerate() {
            let mut prev = NIL;
            let mut head = NIL;
            for e in c.carryover.iter().chain(c.ring.iter()) {
                if !span.entry_live(e) {
                    continue;
                }
                let (addr, dirty, ready_at, lru, slot) = if e.range == UNTRACKED {
                    let u = &span.untracked[e.line as usize];
                    (u.addr, u.dirty, u.ready_at, u.lru, u.slot)
                } else {
                    let r = &span.ranges[e.range as usize];
                    let l = &r.lines[e.line as usize];
                    (
                        LineAddr::new(r.kind, r.base + e.line as u64),
                        l.dirty,
                        l.ready_at,
                        l.tick,
                        l.slot,
                    )
                };
                let idx = if slot != NIL {
                    let s = &mut self.lines.slots[slot as usize];
                    s.dirty = dirty;
                    s.ready_at = ready_at;
                    s.lru = lru;
                    slot
                } else {
                    self.lines.insert_unlinked(addr, dirty, ready_at, lru)
                };
                self.lines.slots[idx as usize].prev = prev;
                self.lines.slots[idx as usize].next = NIL;
                match prev {
                    NIL => head = idx,
                    p => self.lines.slots[p as usize].next = idx,
                }
                prev = idx;
            }
            self.lines.heads[class] = head;
            self.lines.tails[class] = prev;
        }
        // The probe hint only short-circuits lookups; clearing it is not
        // observable in any outcome.
        self.lines.mru = NIL;
        debug_assert_eq!(self.lines.len, span.len, "span occupancy accounting");
        self.events.events_scheduled += span.scheduled;
        self.events.events_coalesced += span.coalesced;
        let port_advance = (self.read_port_free - span.entry_read_port)
            + (self.write_port_free - span.entry_write_port);
        self.events.cycles_skipped += port_advance.saturating_sub(span.grants);
        #[cfg(any(test, feature = "audit"))]
        {
            // Event-accounting invariant: every port grant inside the span
            // was classified exactly once, as either a newly scheduled wake
            // or a coalesced same-cycle grant.
            assert_eq!(
                span.scheduled + span.coalesced,
                span.grants,
                "span event accounting must cover every port grant"
            );
            self.lines.check();
            self.check_mshr_tracking();
        }
        self.recycle_span(span);
    }

    /// Drains the event counters accumulated by closed spans.
    pub fn take_events(&mut self) -> EventStats {
        std::mem::take(&mut self.events)
    }

    /// Whether a span is currently open.
    pub fn span_active(&self) -> bool {
        self.span.is_some()
    }

    /// Wake-time contract of the event-driven core: the earliest future
    /// cycle at which this component changes state on its own — the next
    /// MSHR fill completion (`u64::MAX` when none is outstanding).
    pub fn next_event_cycle(&self) -> u64 {
        self.mshr_min_ready
    }

    /// Batched time advance: retires every fill complete by `cycle`. The
    /// access paths call this implicitly; schedulers may call it directly
    /// between engine resume points.
    pub fn advance_to(&mut self, cycle: u64) {
        self.reap_mshrs(cycle);
    }

    /// [`Dmb::read`] on the span fast path.
    fn span_read(
        &mut self,
        now: u64,
        addr: LineAddr,
        dram: &mut Dram,
        pattern: AccessPattern,
    ) -> ReadOutcome {
        let mut span = self.span.take().expect("span dispatch");
        let Some((ri, li)) = span.locate(addr) else {
            // Undeclared address: materialise and fall back — the generic
            // path then serves this (and every later) access of the phase.
            self.span = Some(span);
            self.end_span();
            return self.read(now, addr, dram, pattern);
        };
        let start = now.max(self.read_port_free);
        self.read_port_free = start + 1;
        span.record_grant(now, start);
        self.reap_mshrs(start);
        let line = *span.ranges[ri].line_mut(li);
        if line.tick != 0 {
            let ready = (start + self.hit_latency).max(line.ready_at);
            self.hits.read_hits += 1;
            self.span_touch(&mut span, ri, li);
            self.span = Some(span);
            return ReadOutcome { ready, hit: true };
        }
        if let Some(fill) = self.mshr_lookup(addr) {
            self.mshr_merges += 1;
            self.hits.read_misses += 1;
            let ready = fill.max(start + self.hit_latency);
            self.miss_latency_cycles += ready - start;
            self.span = Some(span);
            return ReadOutcome { ready, hit: false };
        }
        let mut issue = start;
        if self.mshr_live >= self.mshr_count {
            self.mshr_stalls += 1;
            issue = issue.max(self.mshr_min_ready);
            self.mshr_stall_cycles += issue - start;
            self.reap_mshrs(issue);
        }
        let ready = dram.read(issue, addr.kind, self.line_bytes, pattern);
        self.mshr_insert(addr, ready, false);
        self.span_insert_line(&mut span, ri, li, false, ready, issue, dram);
        self.hits.read_misses += 1;
        self.miss_latency_cycles += ready - start;
        self.span = Some(span);
        ReadOutcome { ready, hit: false }
    }

    /// [`Dmb::write`] on the span fast path.
    fn span_write(
        &mut self,
        now: u64,
        addr: LineAddr,
        dram: &mut Dram,
        allocate: bool,
        pattern: AccessPattern,
    ) -> WriteOutcome {
        let mut span = self.span.take().expect("span dispatch");
        let Some((ri, li)) = span.locate(addr) else {
            self.span = Some(span);
            self.end_span();
            return self.write(now, addr, dram, allocate, pattern);
        };
        let start = now.max(self.write_port_free);
        self.write_port_free = start + 1;
        span.record_grant(now, start);
        self.reap_mshrs(start);
        let resident = span.ranges[ri].line_mut(li).tick != 0;
        if resident {
            span.ranges[ri].lines[li].dirty = true;
            self.hits.write_hits += 1;
            self.span_touch(&mut span, ri, li);
            self.span = Some(span);
            return WriteOutcome {
                ready: start + self.hit_latency,
                hit: true,
            };
        }
        self.hits.write_misses += 1;
        let outcome = if allocate {
            self.span_insert_line(
                &mut span,
                ri,
                li,
                true,
                start + self.hit_latency,
                start,
                dram,
            );
            WriteOutcome {
                ready: start + self.hit_latency,
                hit: false,
            }
        } else {
            dram.write(start, addr.kind, self.line_bytes, pattern);
            WriteOutcome {
                ready: start + 1,
                hit: false,
            }
        };
        self.span = Some(span);
        outcome
    }

    /// Span equivalent of [`LineTable::touch_slot`]: bump the line's tick;
    /// if the newest ring entry already names this line, refresh it in
    /// place (the real path skips the splice when the line is already the
    /// class tail), otherwise push a new entry and let the old one go
    /// stale.
    fn span_touch(&mut self, span: &mut SpanState, ri: usize, li: usize) {
        self.lru_tick += 1;
        let tick = self.lru_tick;
        let r = &mut span.ranges[ri];
        r.lines[li].tick = tick;
        // Unarmed: the tick alone carries recency; no ring maintenance.
        if !span.armed {
            return;
        }
        let class = r.kind.evict_class() as usize;
        let c = &mut span.classes[class];
        match c.ring.back_mut() {
            Some(e) if e.range == ri as u32 && e.line == li as u32 => e.tick = tick,
            _ => c.ring.push_back(SpanRingEntry {
                range: ri as u32,
                line: li as u32,
                tick,
            }),
        }
    }

    /// Span equivalent of [`Dmb::insert_line`].
    #[allow(clippy::too_many_arguments)]
    fn span_insert_line(
        &mut self,
        span: &mut SpanState,
        ri: usize,
        li: usize,
        dirty: bool,
        ready_at: u64,
        now: u64,
        dram: &mut Dram,
    ) {
        if span.len >= self.capacity_lines && !span.armed {
            span.arm();
        }
        while span.len >= self.capacity_lines {
            if !self.span_evict_one(span, now, dram) {
                break; // everything in flight; oversubscribe rather than deadlock
            }
        }
        self.lru_tick += 1;
        let tick = self.lru_tick;
        let class = span.ranges[ri].kind.evict_class() as usize;
        let line = span.ranges[ri].line_mut(li);
        line.tick = tick;
        line.dirty = dirty;
        line.ready_at = ready_at;
        span.classes[class].ring.push_back(SpanRingEntry {
            range: ri as u32,
            line: li as u32,
            tick,
        });
        self.line_fills += 1;
        span.len += 1;
    }

    /// Span equivalent of [`Dmb::evict_one`]: class priority, oldest first,
    /// skipping lines pinned by outstanding fills. The carryover list holds
    /// candidates that were pinned on an earlier call; they positionally
    /// precede everything left in the ring and are re-examined first, which
    /// reproduces the real walk restarting from the class head.
    fn span_evict_one(&mut self, span: &mut SpanState, now: u64, dram: &mut Dram) -> bool {
        debug_assert!(span.armed, "victim search needs recency-ordered rings");
        let no_inflight = self.mshr_live == 0;
        let sig = self.mshr_sig;
        for class in 0..3 {
            let mut i = 0;
            while i < span.classes[class].carryover.len() {
                let e = span.classes[class].carryover[i];
                if !span.entry_live(&e) {
                    span.classes[class].carryover.remove(i);
                    continue;
                }
                let addr = span.entry_addr(&e);
                let pinned = !(no_inflight
                    || sig & Self::sig_bit(addr) == 0
                    || !self.mshrs.iter().any(|m| m.valid && m.addr == addr));
                if pinned {
                    i += 1;
                    continue;
                }
                span.classes[class].carryover.remove(i);
                self.span_evict_entry(span, &e, addr, now, dram);
                return true;
            }
            while let Some(&e) = span.classes[class].ring.front() {
                if !span.entry_live(&e) {
                    span.classes[class].ring.pop_front();
                    continue;
                }
                let addr = span.entry_addr(&e);
                let pinned = !(no_inflight
                    || sig & Self::sig_bit(addr) == 0
                    || !self.mshrs.iter().any(|m| m.valid && m.addr == addr));
                span.classes[class].ring.pop_front();
                if pinned {
                    span.classes[class].carryover.push(e);
                    continue;
                }
                self.span_evict_entry(span, &e, addr, now, dram);
                return true;
            }
        }
        false
    }

    fn span_evict_entry(
        &mut self,
        span: &mut SpanState,
        e: &SpanRingEntry,
        addr: LineAddr,
        now: u64,
        dram: &mut Dram,
    ) {
        let dirty = if e.range == UNTRACKED {
            let u = &mut span.untracked[e.line as usize];
            u.removed = true;
            u.dirty
        } else {
            let line = &mut span.ranges[e.range as usize].lines[e.line as usize];
            line.tick = 0;
            line.dirty
        };
        self.evictions += 1;
        if dirty {
            self.dirty_evictions += 1;
            dram.write(now, addr.kind, self.line_bytes, AccessPattern::Random);
        }
        span.len -= 1;
    }

    /// [`Dmb::flush_kind`] on the span fast path. The generic path collects
    /// residents of the kind and sorts by line index before writing back,
    /// so only the *set* matters — each live line has exactly one live ring
    /// entry, making the collection duplicate-free by construction.
    fn span_flush_kind(&mut self, now: u64, kind: MatrixKind, dram: &mut Dram) -> u64 {
        let mut span = self.span.take().expect("span dispatch");
        let class = kind.evict_class() as usize;
        let mut found: Vec<(u64, SpanRingEntry)> = Vec::new();
        if span.armed {
            let c = &span.classes[class];
            for e in c.carryover.iter().chain(c.ring.iter()) {
                if !span.entry_live(e) {
                    continue;
                }
                let addr = span.entry_addr(e);
                if addr.kind == kind {
                    found.push((addr.index, *e));
                }
            }
        } else {
            // Unarmed markers may be dead or duplicated (dropped then
            // re-inserted lines keep both); collect live residents of the
            // kind — the index sort below also collapses duplicates — and
            // compact the ring so repeated per-tile drains stay linear in
            // live lines, not in span history.
            let SpanState {
                ranges,
                untracked,
                classes,
                ..
            } = &mut *span;
            classes[class].ring.retain(|e| {
                let (live, addr) = if e.range == UNTRACKED {
                    let u = &untracked[e.line as usize];
                    (!u.removed, u.addr)
                } else {
                    let r = &ranges[e.range as usize];
                    (
                        r.tick_of(e.line as usize) != 0,
                        LineAddr::new(r.kind, r.base + e.line as u64),
                    )
                };
                if live && addr.kind == kind {
                    found.push((addr.index, *e));
                    return false;
                }
                live
            });
        }
        found.sort_unstable_by_key(|&(index, _)| index);
        // Duplicate unarmed markers of one line collapse here (armed rings
        // hold one live entry per line already, so this is then a no-op).
        found.dedup_by_key(|&mut (index, _)| index);
        let mut done = now;
        for (_, e) in &found {
            let dirty = if e.range == UNTRACKED {
                let u = &mut span.untracked[e.line as usize];
                u.removed = true;
                u.dirty
            } else {
                let line = &mut span.ranges[e.range as usize].lines[e.line as usize];
                line.tick = 0;
                line.dirty
            };
            self.line_drops += 1;
            span.len -= 1;
            if dirty {
                done = done.max(dram.write(done, kind, self.line_bytes, AccessPattern::Sequential));
            }
        }
        self.span = Some(span);
        done
    }

    /// [`Dmb::invalidate_kind`] on the span fast path (drop order is
    /// unobservable: no writebacks, only removals and counters).
    fn span_invalidate_kind(&mut self, kind: MatrixKind) {
        let mut span = self.span.take().expect("span dispatch");
        let class = kind.evict_class() as usize;
        let mut dropped = 0usize;
        if span.armed {
            let c = &mut span.classes[class];
            let ranges = &mut span.ranges;
            let untracked = &mut span.untracked;
            for e in c.carryover.iter().chain(c.ring.iter()) {
                let (live, addr) = if e.range == UNTRACKED {
                    let u = &untracked[e.line as usize];
                    (!u.removed, u.addr)
                } else {
                    let r = &ranges[e.range as usize];
                    (
                        r.tick_of(e.line as usize) == e.tick,
                        LineAddr::new(r.kind, r.base + e.line as u64),
                    )
                };
                if !live || addr.kind != kind {
                    continue;
                }
                if e.range == UNTRACKED {
                    untracked[e.line as usize].removed = true;
                } else {
                    ranges[e.range as usize].lines[e.line as usize].tick = 0;
                }
                dropped += 1;
            }
        } else {
            // Unarmed markers: a line is live iff its tick is nonzero, and
            // marking it dead on the first of its duplicate markers makes
            // the rest skip, so each line drops once. Compacting keeps
            // repeated per-tile invalidations linear in live lines.
            let SpanState {
                ranges,
                untracked,
                classes,
                ..
            } = &mut *span;
            classes[class].ring.retain(|e| {
                let (live, addr) = if e.range == UNTRACKED {
                    let u = &untracked[e.line as usize];
                    (!u.removed, u.addr)
                } else {
                    let r = &ranges[e.range as usize];
                    (
                        r.tick_of(e.line as usize) != 0,
                        LineAddr::new(r.kind, r.base + e.line as u64),
                    )
                };
                if !live {
                    return false;
                }
                if addr.kind != kind {
                    return true;
                }
                if e.range == UNTRACKED {
                    untracked[e.line as usize].removed = true;
                } else {
                    ranges[e.range as usize].lines[e.line as usize].tick = 0;
                }
                dropped += 1;
                false
            });
        }
        self.line_drops += dropped as u64;
        span.len -= dropped;
        self.span = Some(span);
    }

    /// Allocation fingerprint of the backing storage, for tests asserting
    /// that the steady-state hot path never reallocates.
    #[cfg(test)]
    fn storage_capacities(&self) -> (usize, usize, usize, usize) {
        (
            self.lines.buckets.len(),
            self.lines.slots.capacity(),
            self.lines.free.capacity(),
            self.mshrs.capacity(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(lines: usize) -> MemConfig {
        MemConfig {
            dmb_bytes: lines * 64,
            ..MemConfig::default()
        }
    }

    fn addr(kind: MatrixKind, i: u64) -> LineAddr {
        LineAddr::new(kind, i)
    }

    #[test]
    fn miss_then_hit() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        let miss = dmb.read(0, a, &mut dram, AccessPattern::Random);
        assert!(!miss.hit);
        assert!(miss.ready >= 101);
        let hit = dmb.read(miss.ready, a, &mut dram, AccessPattern::Random);
        assert!(hit.hit);
        assert_eq!(hit.ready, miss.ready + cfg.dmb_hit_latency);
    }

    #[test]
    fn hit_under_fill_waits_for_data() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        let miss = dmb.read(0, a, &mut dram, AccessPattern::Random);
        // Request again before the fill completes: counts as hit, but data
        // is not available earlier than the fill.
        let again = dmb.read(5, a, &mut dram, AccessPattern::Random);
        assert!(again.hit);
        assert!(again.ready >= miss.ready);
    }

    #[test]
    fn secondary_miss_merges_into_mshr() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        let _ = dmb.read(0, a, &mut dram, AccessPattern::Random);
        // Evict knowledge: the line is resident (in-flight), so a second read
        // is a hit-under-fill, not a merge. Exercise the merge path via a
        // different structure: invalidate the line but keep the MSHR.
        dmb.invalidate_kind(MatrixKind::Combination);
        let merged = dmb.read(1, a, &mut dram, AccessPattern::Random);
        assert!(!merged.hit);
        assert_eq!(dmb.mshr_merges(), 1);
        assert_eq!(
            dram.stats().kind(MatrixKind::Combination).reads,
            1,
            "no second DRAM read"
        );
        assert!(merged.ready >= 101);
    }

    #[test]
    fn write_allocate_and_dirty_eviction() {
        let cfg = small_config(2);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        for i in 0..3 {
            dmb.write(
                0,
                addr(MatrixKind::Output, i),
                &mut dram,
                true,
                AccessPattern::Random,
            );
        }
        assert_eq!(dmb.occupancy(), 2);
        assert_eq!(dmb.evictions(), 1);
        assert_eq!(dmb.dirty_evictions(), 1);
        assert_eq!(dram.stats().kind(MatrixKind::Output).writes, 1);
    }

    #[test]
    fn write_through_bypasses_buffer() {
        let cfg = small_config(4);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let out = dmb.write(
            0,
            addr(MatrixKind::Output, 9),
            &mut dram,
            false,
            AccessPattern::Random,
        );
        assert!(!out.hit);
        assert_eq!(dmb.occupancy(), 0);
        assert_eq!(dram.stats().kind(MatrixKind::Output).write_bytes, 64);
    }

    #[test]
    fn eviction_prefers_weight_class() {
        let cfg = small_config(3);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        // Fill with one line of each class; Output is the LRU-oldest.
        dmb.write(
            0,
            addr(MatrixKind::Output, 0),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        dmb.write(
            1,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        dmb.write(
            2,
            addr(MatrixKind::Weight, 0),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        // Insert a fourth line: despite Output being oldest, W must go first.
        dmb.write(
            3,
            addr(MatrixKind::Output, 1),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        assert!(dmb.contains(addr(MatrixKind::Output, 0)));
        assert!(dmb.contains(addr(MatrixKind::Combination, 0)));
        assert!(!dmb.contains(addr(MatrixKind::Weight, 0)));
        // And the next one takes XW, still not the partial outputs.
        dmb.write(
            4,
            addr(MatrixKind::Output, 2),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        assert!(!dmb.contains(addr(MatrixKind::Combination, 0)));
        assert!(dmb.contains(addr(MatrixKind::Output, 0)));
    }

    #[test]
    fn lru_within_class() {
        let cfg = small_config(2);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        dmb.write(
            0,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        dmb.write(
            1,
            addr(MatrixKind::Combination, 1),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        // Touch line 0 so line 1 becomes LRU.
        let _ = dmb.read(
            2,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            AccessPattern::Random,
        );
        dmb.write(
            3,
            addr(MatrixKind::Combination, 2),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        assert!(dmb.contains(addr(MatrixKind::Combination, 0)));
        assert!(!dmb.contains(addr(MatrixKind::Combination, 1)));
    }

    #[test]
    fn read_port_serialises() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        dmb.write(
            0,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        dmb.write(
            0,
            addr(MatrixKind::Combination, 1),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        let a = dmb.read(
            10,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            AccessPattern::Random,
        );
        let b = dmb.read(
            10,
            addr(MatrixKind::Combination, 1),
            &mut dram,
            AccessPattern::Random,
        );
        assert_eq!(a.ready + 1, b.ready); // one port, one cycle apart
    }

    #[test]
    fn mshr_tracking_survives_mixed_traffic() {
        // Drive misses, merges, stalls and reaps through a tiny MSHR file,
        // re-checking the cached aggregates (live count, free list,
        // earliest completion, signature filter) against the slot array at
        // every step.
        let mut cfg = small_config(16);
        cfg.mshr_count = 2;
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let mut now = 0;
        for i in 0..64u64 {
            let o = dmb.read(
                now,
                addr(MatrixKind::Combination, i % 24),
                &mut dram,
                AccessPattern::Random,
            );
            dmb.check_mshr_tracking();
            // Alternate between racing ahead of the fills and waiting them
            // out, so both the stall path and the reap path are exercised.
            now = if i % 3 == 0 { o.ready } else { now + 1 };
        }
        assert!(dmb.mshr_stalls() > 0, "stall path was not exercised");
    }

    #[test]
    fn mshr_limit_stalls() {
        let mut cfg = small_config(64);
        cfg.mshr_count = 2;
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let r0 = dmb.read(
            0,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            AccessPattern::Random,
        );
        let _r1 = dmb.read(
            0,
            addr(MatrixKind::Combination, 1),
            &mut dram,
            AccessPattern::Random,
        );
        let r2 = dmb.read(
            0,
            addr(MatrixKind::Combination, 2),
            &mut dram,
            AccessPattern::Random,
        );
        assert_eq!(dmb.mshr_stalls(), 1);
        assert!(r2.ready > r0.ready);
    }

    #[test]
    fn flush_writes_dirty_lines_only() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        dmb.write(
            0,
            addr(MatrixKind::Output, 0),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        dmb.write(
            0,
            addr(MatrixKind::Output, 1),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        let fill = dmb.read(
            0,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            AccessPattern::Random,
        ); // clean
        let done = dmb.flush_kind(fill.ready, MatrixKind::Output, &mut dram);
        assert!(done >= fill.ready);
        assert_eq!(dram.stats().kind(MatrixKind::Output).writes, 2);
        assert_eq!(dmb.resident_lines(MatrixKind::Output), 0);
        assert_eq!(dmb.resident_lines(MatrixKind::Combination), 1);
        // flushing the clean combination line produces no DRAM writes
        dmb.flush_kind(done, MatrixKind::Combination, &mut dram);
        assert_eq!(dram.stats().kind(MatrixKind::Combination).writes, 0);
    }

    #[test]
    fn hit_stats_accumulate() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        let m = dmb.read(0, a, &mut dram, AccessPattern::Random);
        let _ = dmb.read(m.ready, a, &mut dram, AccessPattern::Random);
        dmb.write(m.ready, a, &mut dram, true, AccessPattern::Random);
        let h = dmb.hit_stats();
        assert_eq!(h.read_hits, 1);
        assert_eq!(h.read_misses, 1);
        assert_eq!(h.write_hits, 1);
        assert!((h.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    /// Deletion via backward shift must keep colliding keys reachable —
    /// hammer one table with inserts/removes across kinds and indices and
    /// cross-check membership against a model.
    #[test]
    fn line_table_survives_collision_churn() {
        let mut table = LineTable::with_capacity(8);
        let keys: Vec<LineAddr> = (0..64)
            .map(|i| {
                let kind = match i % 3 {
                    0 => MatrixKind::Weight,
                    1 => MatrixKind::Combination,
                    _ => MatrixKind::Output,
                };
                addr(kind, (i * 17) as u64)
            })
            .collect();
        let mut tick = 0u64;
        for round in 0..4usize {
            for (i, &k) in keys.iter().enumerate() {
                if (i + round) % 2 == 0 {
                    tick += 1;
                    if table.get(k).is_none() {
                        table.insert(k, false, 0, tick);
                    }
                } else if table.get(k).is_some() {
                    table.remove(k);
                }
            }
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(
                    table.get(k).is_some(),
                    (i + round) % 2 == 0,
                    "round {round} key {i}"
                );
            }
        }
    }

    /// Occupancy conservation: every line that ever entered the buffer is
    /// accounted for as evicted, dropped (flush/invalidate) or resident.
    #[test]
    fn fills_balance_evictions_drops_and_occupancy() {
        let cfg = small_config(4);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let mut now = 0;
        for i in 0..12u64 {
            now = dmb
                .read(
                    now,
                    addr(MatrixKind::Combination, i),
                    &mut dram,
                    AccessPattern::Random,
                )
                .ready;
            dmb.write(
                now,
                addr(MatrixKind::Output, i % 5),
                &mut dram,
                true,
                AccessPattern::Random,
            );
        }
        dmb.flush_kind(now, MatrixKind::Output, &mut dram);
        dmb.invalidate_kind(MatrixKind::Combination);
        assert!(dmb.line_fills() > 0);
        assert_eq!(
            dmb.line_fills(),
            dmb.evictions() + dmb.line_drops() + dmb.occupancy() as u64
        );
    }

    /// Backward-shift deletion with a probe chain that wraps past the end of
    /// the bucket array: keys homing at the last bucket spill into buckets
    /// 0, 1, ... and removing from the middle of the chain must pull the
    /// wrapped entries back across the boundary (the `wrapping_sub` distance
    /// comparisons in `remove` are only exercised here). Interleaves removes
    /// with fresh inserts on the same home bucket to churn the chain.
    #[test]
    fn backward_shift_deletion_handles_wraparound() {
        let mut table = LineTable::with_capacity(8); // 16 buckets
        let last = table.buckets.len() - 1;
        // Brute-force line indices whose home bucket is the last one.
        let same_home: Vec<LineAddr> = (0..10_000u64)
            .map(|i| addr(MatrixKind::Combination, i))
            .filter(|&a| table.home_bucket(a) == last)
            .take(8)
            .collect();
        assert_eq!(same_home.len(), 8, "need 8 colliding keys for the test");

        let mut tick = 0u64;
        let mut resident: Vec<LineAddr> = Vec::new();
        // Seed a chain of 4: occupies buckets {last, 0, 1, 2}.
        for &k in &same_home[..4] {
            tick += 1;
            table.insert(k, false, 0, tick);
            resident.push(k);
        }
        // Churn: remove from alternating ends of the chain, insert the next
        // colliding key, and cross-check the whole table each step.
        for (round, &fresh) in same_home[4..].iter().enumerate() {
            let victim = if round % 2 == 0 {
                resident.remove(0) // head of chain: sits at the last bucket
            } else {
                resident.pop().unwrap() // tail: sits past the wraparound
            };
            assert!(table.remove(victim).is_some(), "round {round}");
            table.check();
            tick += 1;
            table.insert(fresh, false, 0, tick);
            resident.push(fresh);
            table.check();
            for &k in &resident {
                assert!(table.get(k).is_some(), "round {round} lost {k:?}");
            }
            assert!(table.get(victim).is_none(), "round {round}");
        }
        // Drain completely through the wrapped chain.
        for &k in &resident {
            assert!(table.remove(k).is_some());
            table.check();
        }
        assert_eq!(table.len, 0);
    }

    /// Model-based property harness: drives the open-addressed line table
    /// through randomized insert/touch/remove sequences and cross-checks
    /// membership, occupancy and full per-class LRU order against a naive
    /// `HashMap` + `Vec` reference model after every operation.
    #[test]
    fn line_table_matches_reference_model_over_randomized_sequences() {
        use rand::{Rng, SeedableRng};
        use std::collections::HashMap;

        const SEQUENCES: u64 = 1200;
        const KINDS: [MatrixKind; 3] = [
            MatrixKind::Weight,
            MatrixKind::Combination,
            MatrixKind::Output,
        ];

        for seq in 0..SEQUENCES {
            let mut rng = rand_pcg::Pcg64::seed_from_u64(0xD1FF_B0A7 ^ seq);
            let mut table = LineTable::with_capacity(8);
            let mut member: HashMap<LineAddr, bool> = HashMap::new();
            // Reference recency order per class, oldest first.
            let mut order: [Vec<LineAddr>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            let mut tick = 0u64;
            // Small index spaces force collisions and wraparound chains.
            let index_space = 1 + seq % 41;
            let steps = 30 + (seq % 3) * 10;
            for step in 0..steps {
                let a = addr(
                    KINDS[rng.gen_range(0..3usize)],
                    rng.gen_range(0..index_space),
                );
                let class = a.kind.evict_class() as usize;
                match rng.gen_range(0..4u32) {
                    0 | 1 => {
                        // Insert-if-absent with a random dirty bit.
                        if table.get(a).is_none() {
                            tick += 1;
                            table.insert(a, rng.gen_bool(0.5), tick, tick);
                            member.insert(a, true);
                            order[class].push(a);
                        }
                    }
                    2 => {
                        tick += 1;
                        table.touch(a, tick);
                        if member.get(&a).copied().unwrap_or(false) {
                            order[class].retain(|&x| x != a);
                            order[class].push(a);
                        }
                    }
                    _ => {
                        let got = table.remove(a).is_some();
                        let want = member.remove(&a).is_some();
                        assert_eq!(got, want, "seq {seq} step {step} remove {a:?}");
                        if want {
                            order[class].retain(|&x| x != a);
                        }
                    }
                }
                table.check();
                assert_eq!(table.len, member.len(), "seq {seq} step {step}");
            }
            // Final deep comparison: membership and exact LRU order.
            for &a in member.keys() {
                assert!(table.get(a).is_some(), "seq {seq} model has {a:?}");
            }
            for (class, expect) in order.iter().enumerate() {
                let mut walked = Vec::new();
                let mut idx = table.heads[class];
                while idx != NIL {
                    walked.push(table.slots[idx as usize].addr);
                    idx = table.slots[idx as usize].next;
                }
                assert_eq!(&walked, expect, "seq {seq} class {class} LRU order");
            }
        }
    }

    /// MRU fast path vs. hash-walk path, cross-checked against the naive
    /// `HashMap` model: after every operation, a probe through
    /// [`LineTable::find_slot`] (hint first) must agree with a cold hash
    /// walk and with the model — including immediately after removes, which
    /// recycle arena slots and would turn a stale hint into a false hit.
    #[test]
    fn mru_fast_path_matches_hash_walk_model() {
        use rand::{Rng, SeedableRng};
        use std::collections::HashMap;

        const KINDS: [MatrixKind; 3] = [
            MatrixKind::Weight,
            MatrixKind::Combination,
            MatrixKind::Output,
        ];
        for seq in 0..400u64 {
            let mut rng = rand_pcg::Pcg64::seed_from_u64(0x5EED_FA57 ^ seq);
            let mut table = LineTable::with_capacity(8);
            let mut model: HashMap<LineAddr, ()> = HashMap::new();
            let mut tick = 0u64;
            let index_space = 1 + seq % 17;
            for step in 0..60 {
                let a = addr(
                    KINDS[rng.gen_range(0..3usize)],
                    rng.gen_range(0..index_space),
                );
                match rng.gen_range(0..5u32) {
                    0 | 1 => {
                        if table.get(a).is_none() {
                            tick += 1;
                            table.insert(a, false, 0, tick);
                            model.insert(a, ());
                        }
                    }
                    2 => {
                        tick += 1;
                        table.touch(a, tick);
                    }
                    _ => {
                        assert_eq!(
                            table.remove(a).is_some(),
                            model.remove(&a).is_some(),
                            "seq {seq} step {step} remove {a:?}"
                        );
                    }
                }
                // Probe a sample of addresses twice: the first find_slot may
                // take the hash walk and set the hint, the second must take
                // the hint — both have to agree with a cold walk and the
                // model.
                for probe_i in 0..3u64 {
                    let p = addr(KINDS[(probe_i % 3) as usize], rng.gen_range(0..index_space));
                    let walk = table.find_bucket(p).map(|b| table.buckets[b]);
                    for round in 0..2 {
                        let fast = table.find_slot(p);
                        assert_eq!(
                            fast, walk,
                            "seq {seq} step {step} round {round} probe {p:?}"
                        );
                        assert_eq!(
                            fast.is_some(),
                            model.contains_key(&p),
                            "seq {seq} step {step} model disagrees on {p:?}"
                        );
                    }
                    if let Some(idx) = walk {
                        assert_eq!(table.slots[idx as usize].addr, p);
                    }
                }
                table.check();
            }
        }
    }

    /// The hot path must not allocate once warm: capacities of every backing
    /// buffer are unchanged across a long, eviction-heavy access stream.
    #[test]
    fn steady_state_reads_and_writes_do_not_reallocate() {
        let mut cfg = small_config(16);
        cfg.mshr_count = 4;
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let mut now = 0;
        // Warm-up: fault in more lines than the buffer holds.
        for i in 0..64 {
            now = dmb
                .read(
                    now,
                    addr(MatrixKind::Combination, i),
                    &mut dram,
                    AccessPattern::Random,
                )
                .ready;
        }
        let warm = dmb.storage_capacities();
        for i in 0..2048u64 {
            let kind = if i % 3 == 0 {
                MatrixKind::Weight
            } else {
                MatrixKind::Combination
            };
            now = dmb
                .read(now, addr(kind, i % 97), &mut dram, AccessPattern::Random)
                .ready;
            dmb.write(
                now,
                addr(MatrixKind::Output, i % 53),
                &mut dram,
                true,
                AccessPattern::Random,
            );
        }
        assert_eq!(
            dmb.storage_capacities(),
            warm,
            "hot path reallocated backing storage"
        );
        assert!(dmb.evictions() > 1000, "stream was not eviction-heavy");
    }

    #[test]
    fn miss_and_stall_cycle_counters_accumulate() {
        let mut cfg = small_config(64);
        cfg.mshr_count = 2;
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let m = dmb.read(
            0,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            AccessPattern::Random,
        );
        // Primary miss: latency charged from presentation to data-ready.
        assert_eq!(dmb.miss_latency_cycles(), m.ready);
        let _ = dmb.read(
            0,
            addr(MatrixKind::Combination, 1),
            &mut dram,
            AccessPattern::Random,
        );
        // Third miss with both MSHRs busy waits for the earliest fill.
        let _ = dmb.read(
            0,
            addr(MatrixKind::Combination, 2),
            &mut dram,
            AccessPattern::Random,
        );
        assert_eq!(dmb.mshr_stalls(), 1);
        assert!(dmb.mshr_stall_cycles() > 0);
        // A hit adds no miss latency.
        let before = dmb.miss_latency_cycles();
        let far = dmb.read(
            10_000,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            AccessPattern::Random,
        );
        assert!(far.hit);
        assert_eq!(dmb.miss_latency_cycles(), before);
    }

    #[test]
    fn trace_port_tracks_are_monotone_and_classified() {
        use crate::trace::{AccessClass, TraceData, TraceKind, Track};
        let mut cfg = small_config(4);
        cfg.mshr_count = 2;
        cfg.trace = true;
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let mut now = 0;
        for i in 0..32u64 {
            let a = addr(MatrixKind::Combination, i);
            now = dmb.read(now, a, &mut dram, AccessPattern::Random).ready;
            // Immediate re-read of the just-filled line: a guaranteed hit.
            now = dmb.read(now, a, &mut dram, AccessPattern::Random).ready;
            dmb.write(
                now,
                addr(MatrixKind::Output, i % 5),
                &mut dram,
                true,
                AccessPattern::Random,
            );
        }
        let mut data = TraceData::new();
        dmb.drain_trace(&mut data);
        assert!(!data.events.is_empty());
        // Per-port timestamp monotonicity (MshrRetire is completion-ordered
        // and exempt).
        for track in [Track::DmbRead, Track::DmbWrite] {
            let ts: Vec<u64> = data
                .events
                .iter()
                .filter(|e| e.track == track)
                .map(|e| e.ts)
                .collect();
            assert!(!ts.is_empty(), "no events on {track:?}");
            assert!(
                ts.windows(2).all(|w| w[0] <= w[1]),
                "{track:?} not monotone"
            );
        }
        // The access stream exercises hits, fills and evictions.
        let has = |pred: &dyn Fn(&TraceKind) -> bool| data.events.iter().any(|e| pred(&e.kind));
        assert!(has(&|k| matches!(
            k,
            TraceKind::DmbAccess {
                class: AccessClass::ReadMissFill,
                ..
            }
        )));
        assert!(has(&|k| matches!(
            k,
            TraceKind::DmbAccess {
                class: AccessClass::ReadHit,
                ..
            }
        )));
        assert!(has(&|k| matches!(k, TraceKind::DmbEvict { .. })));
        assert!(has(&|k| matches!(k, TraceKind::MshrAllocate { .. })));
        assert!(has(&|k| matches!(k, TraceKind::MshrRetire { .. })));
    }
}

#[cfg(test)]
mod eviction_policy_tests {
    use super::*;
    use crate::dram::AccessPattern;

    fn addr(kind: MatrixKind, i: u64) -> LineAddr {
        LineAddr::new(kind, i)
    }

    #[test]
    fn plain_lru_evicts_oldest_regardless_of_class() {
        let cfg = MemConfig {
            dmb_bytes: 3 * 64,
            class_eviction: false,
            ..MemConfig::default()
        };
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        dmb.write(
            0,
            addr(MatrixKind::Output, 0),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        dmb.write(
            1,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        dmb.write(
            2,
            addr(MatrixKind::Weight, 0),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        // plain LRU: the Output line (oldest) goes first, not the Weight line
        dmb.write(
            3,
            addr(MatrixKind::Output, 1),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        assert!(!dmb.contains(addr(MatrixKind::Output, 0)));
        assert!(dmb.contains(addr(MatrixKind::Weight, 0)));
    }

    #[test]
    fn class_eviction_still_default() {
        let cfg = MemConfig::default();
        assert!(cfg.class_eviction);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use crate::prefetch::{PrefetchDrop, PrefetchStats};

    fn small_config(lines: usize) -> MemConfig {
        MemConfig {
            dmb_bytes: lines * 64,
            ..MemConfig::default()
        }
    }

    fn addr(kind: MatrixKind, i: u64) -> LineAddr {
        LineAddr::new(kind, i)
    }

    #[test]
    fn issued_prefetch_becomes_a_demand_hit() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        assert_eq!(
            dmb.prefetch(0, a, &mut dram, AccessPattern::Sequential),
            None
        );
        // Demand arrives well after the fill: a hit with no residual wait.
        let out = dmb.read(500, a, &mut dram, AccessPattern::Sequential);
        assert!(out.hit);
        assert_eq!(out.ready, 500 + cfg.dmb_hit_latency);
        let s = dmb.prefetch_stats();
        assert_eq!((s.issued, s.useful, s.late, s.late_cycles), (1, 1, 0, 0));
    }

    #[test]
    fn late_prefetch_charges_residual_wait() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        assert_eq!(
            dmb.prefetch(0, a, &mut dram, AccessPattern::Sequential),
            None
        );
        // Fill completes at cycle 101; demand arrives at 0 and must wait for
        // the in-flight fill, not just the hit latency.
        let out = dmb.read(0, a, &mut dram, AccessPattern::Sequential);
        assert!(out.hit, "in-flight prefetch serves demand via the hit path");
        assert_eq!(out.ready, 101);
        let s = dmb.prefetch_stats();
        assert_eq!((s.useful, s.late), (1, 1));
        assert_eq!(s.late_cycles, 101 - cfg.dmb_hit_latency);
        // Nothing lands in the demand-miss class: the wait is labelled
        // prefetch-late instead.
        assert_eq!(dmb.miss_latency_cycles(), 0);
    }

    #[test]
    fn write_hit_claims_prefetch_without_lateness() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Output, 0);
        assert_eq!(
            dmb.prefetch(0, a, &mut dram, AccessPattern::Sequential),
            None
        );
        let out = dmb.write(1, a, &mut dram, true, AccessPattern::Random);
        assert!(out.hit);
        let s = dmb.prefetch_stats();
        assert_eq!((s.useful, s.late, s.late_cycles), (1, 0, 0));
    }

    #[test]
    fn prefetched_line_is_first_victim_of_its_class() {
        let cfg = small_config(2);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        // Demand line first, then a (newer) prefetch of the same class.
        dmb.write(
            0,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        assert_eq!(
            dmb.prefetch(
                5,
                addr(MatrixKind::Combination, 1),
                &mut dram,
                AccessPattern::Sequential
            ),
            None
        );
        // Capacity pressure after the fill completed: despite being the
        // newest insertion, the unclaimed prefetch sits at the LRU end and
        // goes first.
        dmb.write(
            500,
            addr(MatrixKind::Combination, 2),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        assert!(dmb.contains(addr(MatrixKind::Combination, 0)));
        assert!(!dmb.contains(addr(MatrixKind::Combination, 1)));
        assert_eq!(dmb.prefetch_stats().evicted_unused, 1);
        assert_eq!(dmb.prefetch_stats().useful, 0);
    }

    #[test]
    fn redundant_candidates_are_dropped() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        let r = dmb.read(0, a, &mut dram, AccessPattern::Random);
        // Resident line.
        assert_eq!(
            dmb.prefetch(r.ready, a, &mut dram, AccessPattern::Sequential),
            Some(PrefetchDrop::Redundant)
        );
        // In-flight prefetch: the second attempt sees the resident entry.
        let b = addr(MatrixKind::Combination, 1);
        assert_eq!(
            dmb.prefetch(r.ready, b, &mut dram, AccessPattern::Sequential),
            None
        );
        assert_eq!(
            dmb.prefetch(r.ready, b, &mut dram, AccessPattern::Sequential),
            Some(PrefetchDrop::Redundant)
        );
        assert_eq!(dmb.prefetch_stats().dropped_redundant, 2);
        assert_eq!(dmb.prefetch_stats().issued, 1);
    }

    #[test]
    fn prefetches_never_exceed_their_mshr_share() {
        let mut cfg = small_config(64);
        cfg.prefetch_mshr_cap = 1;
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        assert_eq!(
            dmb.prefetch(
                0,
                addr(MatrixKind::Combination, 0),
                &mut dram,
                AccessPattern::Sequential
            ),
            None
        );
        dmb.check_mshr_tracking();
        // Second candidate while the first fill is outstanding: over the cap.
        assert_eq!(
            dmb.prefetch(
                0,
                addr(MatrixKind::Combination, 1),
                &mut dram,
                AccessPattern::Sequential
            ),
            Some(PrefetchDrop::MshrCap)
        );
        // A demand miss still allocates: the cap reserves slots for demand.
        let out = dmb.read(
            0,
            addr(MatrixKind::Combination, 2),
            &mut dram,
            AccessPattern::Random,
        );
        assert!(!out.hit);
        assert_eq!(dmb.mshr_stalls(), 0, "demand found a free MSHR");
        dmb.check_mshr_tracking();
        assert_eq!(dmb.prefetch_stats().dropped_mshr_cap, 1);
    }

    #[test]
    fn demand_filled_mshr_pool_drops_prefetches() {
        let mut cfg = small_config(64);
        cfg.mshr_count = 2;
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let _ = dmb.read(
            0,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            AccessPattern::Random,
        );
        let _ = dmb.read(
            0,
            addr(MatrixKind::Combination, 1),
            &mut dram,
            AccessPattern::Random,
        );
        assert_eq!(
            dmb.prefetch(
                0,
                addr(MatrixKind::Combination, 2),
                &mut dram,
                AccessPattern::Sequential
            ),
            Some(PrefetchDrop::MshrCap)
        );
    }

    #[test]
    fn backlogged_dram_drops_prefetches() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        // A short transfer in flight is ordinary pipelining, not a backlog:
        // the prefetch still issues.
        let _ = dmb.read(
            0,
            addr(MatrixKind::Combination, 0),
            &mut dram,
            AccessPattern::Random,
        );
        assert!(dram.saturated(1));
        assert_eq!(
            dmb.prefetch(
                1,
                addr(MatrixKind::Combination, 1),
                &mut dram,
                AccessPattern::Sequential
            ),
            None
        );
        // A backlog deeper than one access latency does drop the candidate.
        dram.read(
            10,
            MatrixKind::Combination,
            64 * 200,
            AccessPattern::Sequential,
        );
        assert_eq!(
            dmb.prefetch(
                10,
                addr(MatrixKind::Combination, 2),
                &mut dram,
                AccessPattern::Sequential
            ),
            Some(PrefetchDrop::DramBusy)
        );
        assert_eq!(dmb.prefetch_stats().dropped_dram_busy, 1);
    }

    #[test]
    fn prefetch_never_evicts_a_hotter_class() {
        let cfg = small_config(2);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        // Fill the buffer with AXW partials (the hottest class).
        dmb.write(
            0,
            addr(MatrixKind::Output, 0),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        dmb.write(
            1,
            addr(MatrixKind::Output, 1),
            &mut dram,
            true,
            AccessPattern::Random,
        );
        // A weight prefetch may only displace class-W lines; none exist.
        assert_eq!(
            dmb.prefetch(
                5,
                addr(MatrixKind::Weight, 0),
                &mut dram,
                AccessPattern::Sequential
            ),
            Some(PrefetchDrop::NoVictim)
        );
        assert_eq!(dmb.prefetch_stats().dropped_no_victim, 1);
        assert!(dmb.contains(addr(MatrixKind::Output, 0)));
        assert!(dmb.contains(addr(MatrixKind::Output, 1)));
        // A demand miss in the same state still makes room (unrestricted
        // class walk) — only prefetches are constrained.
        let out = dmb.read(
            5,
            addr(MatrixKind::Weight, 0),
            &mut dram,
            AccessPattern::Random,
        );
        assert!(!out.hit);
        assert!(dmb.contains(addr(MatrixKind::Weight, 0)));
    }

    #[test]
    fn prefetch_consumes_no_port_time() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        let fill = dmb.read(0, a, &mut dram, AccessPattern::Random);
        // Spaced so each finds the single DRAM channel free again.
        let mut now = fill.ready + 50;
        for i in 1..4u64 {
            assert_eq!(
                dmb.prefetch(
                    now,
                    addr(MatrixKind::Combination, i),
                    &mut dram,
                    AccessPattern::Sequential
                ),
                None
            );
            now += 2;
        }
        // The read port was not advanced by the prefetches.
        let hit = dmb.read(now, a, &mut dram, AccessPattern::Random);
        assert_eq!(hit.ready, now + cfg.dmb_hit_latency);
    }

    #[test]
    fn flush_and_invalidate_count_unused_prefetches() {
        let cfg = small_config(8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        assert_eq!(
            dmb.prefetch(
                0,
                addr(MatrixKind::Combination, 0),
                &mut dram,
                AccessPattern::Sequential
            ),
            None
        );
        // Let the fill land before tearing the kind down.
        let _ = dmb.read(
            500,
            addr(MatrixKind::Combination, 1),
            &mut dram,
            AccessPattern::Random,
        );
        dmb.invalidate_kind(MatrixKind::Combination);
        assert_eq!(dmb.prefetch_stats().evicted_unused, 1);
        assert_eq!(
            dmb.prefetch(
                1000,
                addr(MatrixKind::Output, 0),
                &mut dram,
                AccessPattern::Sequential
            ),
            None
        );
        dmb.flush_kind(1500, MatrixKind::Output, &mut dram);
        assert_eq!(dmb.prefetch_stats().evicted_unused, 2);
    }

    #[test]
    fn conservation_holds_with_prefetch_traffic() {
        let cfg = small_config(4);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let mut now = 0;
        for i in 0..16u64 {
            let _ = dmb.prefetch(
                now,
                addr(MatrixKind::Combination, i + 100),
                &mut dram,
                AccessPattern::Sequential,
            );
            now = dmb
                .read(
                    now,
                    addr(MatrixKind::Combination, i),
                    &mut dram,
                    AccessPattern::Random,
                )
                .ready;
            dmb.write(
                now,
                addr(MatrixKind::Output, i % 3),
                &mut dram,
                true,
                AccessPattern::Random,
            );
            dmb.check_mshr_tracking();
        }
        dmb.flush_kind(now, MatrixKind::Output, &mut dram);
        dmb.invalidate_kind(MatrixKind::Combination);
        assert_eq!(
            dmb.line_fills(),
            dmb.evictions() + dmb.line_drops() + dmb.occupancy() as u64
        );
        let s = dmb.prefetch_stats();
        assert!(s.issued > 0);
        assert_eq!(s.issued, s.useful + s.evicted_unused);
    }

    #[test]
    fn demand_only_traffic_leaves_counters_zero() {
        let cfg = small_config(4);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let mut now = 0;
        for i in 0..32u64 {
            now = dmb
                .read(
                    now,
                    addr(MatrixKind::Combination, i % 9),
                    &mut dram,
                    AccessPattern::Random,
                )
                .ready;
            dmb.write(
                now,
                addr(MatrixKind::Output, i % 5),
                &mut dram,
                true,
                AccessPattern::Random,
            );
        }
        assert_eq!(dmb.prefetch_stats(), PrefetchStats::default());
    }

    #[test]
    fn prefetch_lifecycle_is_traced() {
        use crate::trace::{TraceData, TraceKind, Track};
        let mut cfg = small_config(8);
        cfg.trace = true;
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let a = addr(MatrixKind::Combination, 0);
        assert_eq!(
            dmb.prefetch(0, a, &mut dram, AccessPattern::Sequential),
            None
        );
        // Late demand claim, a redundant drop, and a reap after the fill.
        let out = dmb.read(0, a, &mut dram, AccessPattern::Sequential);
        assert_eq!(
            dmb.prefetch(out.ready, a, &mut dram, AccessPattern::Sequential),
            Some(PrefetchDrop::Redundant)
        );
        let _ = dmb.read(
            out.ready + 10,
            addr(MatrixKind::Combination, 1),
            &mut dram,
            AccessPattern::Random,
        );
        let mut data = TraceData::new();
        dmb.drain_trace(&mut data);
        let on_track = |k: &dyn Fn(&TraceKind) -> bool| {
            data.events
                .iter()
                .any(|e| e.track == Track::Prefetch && k(&e.kind))
        };
        assert!(on_track(&|k| matches!(k, TraceKind::PrefetchIssue { .. })));
        assert!(on_track(&|k| matches!(k, TraceKind::PrefetchLate { .. })));
        assert!(on_track(&|k| matches!(
            k,
            TraceKind::PrefetchDropped { .. }
        )));
        assert!(on_track(&|k| matches!(k, TraceKind::PrefetchFill { .. })));
    }
}

#[cfg(test)]
mod span_tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn small_config(lines: usize, mshrs: usize) -> MemConfig {
        MemConfig {
            dmb_bytes: lines * 64,
            mshr_count: mshrs,
            ..MemConfig::default()
        }
    }

    /// A randomized op stream drawn from the declared ranges, applied to a
    /// generic-path pair and a span-path pair in lockstep.
    fn drive_differential(seed: u64, lines: usize, mshrs: usize) {
        let cfg = small_config(lines, mshrs);
        let mut dram_a = Dram::new(&cfg);
        let mut dmb_a = Dmb::new(&cfg);
        let mut dram_b = Dram::new(&cfg);
        let mut dmb_b = Dmb::new(&cfg);
        let ranges = [
            SpanRange {
                kind: MatrixKind::Weight,
                base: 3,
                len: 40,
            },
            SpanRange {
                kind: MatrixKind::Combination,
                base: 0,
                len: 64,
            },
            SpanRange {
                kind: MatrixKind::Output,
                base: 100,
                len: 48,
            },
        ];
        // Pre-span traffic so the span opens on a warm, partially dirty
        // buffer (both declared and undeclared lines resident).
        let mut rng = rand_pcg::Pcg64::seed_from_u64(seed);
        let mut now = 0u64;
        for _ in 0..lines {
            let r = &ranges[rng.gen_range(0..ranges.len())];
            let a = LineAddr::new(r.kind, r.base + rng.gen_range(0..r.len));
            if rng.gen_bool(0.4) {
                let oa = dmb_a.write(now, a, &mut dram_a, true, AccessPattern::Random);
                let ob = dmb_b.write(now, a, &mut dram_b, true, AccessPattern::Random);
                assert_eq!(oa, ob);
            } else {
                let oa = dmb_a.read(now, a, &mut dram_a, AccessPattern::Random);
                let ob = dmb_b.read(now, a, &mut dram_b, AccessPattern::Random);
                assert_eq!(oa, ob);
            }
            now += rng.gen_range(0..4u64);
        }
        let undeclared = LineAddr::new(MatrixKind::SparseX, 7);
        let oa = dmb_a.read(now, undeclared, &mut dram_a, AccessPattern::Random);
        let ob = dmb_b.read(now, undeclared, &mut dram_b, AccessPattern::Random);
        assert_eq!(oa, ob);

        let pre = dmb_b.hit_stats();
        assert!(dmb_b.begin_span(&ranges), "span must open");
        assert!(dmb_b.span_active());
        for step in 0..4000 {
            let r = &ranges[rng.gen_range(0..ranges.len())];
            let a = LineAddr::new(r.kind, r.base + rng.gen_range(0..r.len));
            match rng.gen_range(0..100u32) {
                0..=44 => {
                    let oa = dmb_a.read(now, a, &mut dram_a, AccessPattern::Sequential);
                    let ob = dmb_b.read(now, a, &mut dram_b, AccessPattern::Sequential);
                    assert_eq!(oa, ob, "read step {step}");
                }
                45..=74 => {
                    let oa = dmb_a.write(now, a, &mut dram_a, true, AccessPattern::Random);
                    let ob = dmb_b.write(now, a, &mut dram_b, true, AccessPattern::Random);
                    assert_eq!(oa, ob, "write-alloc step {step}");
                }
                75..=84 => {
                    let oa = dmb_a.write(now, a, &mut dram_a, false, AccessPattern::Sequential);
                    let ob = dmb_b.write(now, a, &mut dram_b, false, AccessPattern::Sequential);
                    assert_eq!(oa, ob, "write-through step {step}");
                }
                85..=92 => {
                    assert_eq!(dmb_a.contains(a), dmb_b.contains(a), "contains step {step}");
                    assert_eq!(
                        dmb_a.resident_lines(r.kind),
                        dmb_b.resident_lines(r.kind),
                        "resident step {step}"
                    );
                    assert_eq!(
                        dmb_a.occupancy(),
                        dmb_b.occupancy(),
                        "occupancy step {step}"
                    );
                }
                93..=96 => {
                    let da = dmb_a.flush_kind(now, r.kind, &mut dram_a);
                    let db = dmb_b.flush_kind(now, r.kind, &mut dram_b);
                    assert_eq!(da, db, "flush step {step}");
                }
                _ => {
                    dmb_a.invalidate_kind(r.kind);
                    dmb_b.invalidate_kind(r.kind);
                }
            }
            now += rng.gen_range(0..3u64);
        }
        dmb_b.end_span();
        assert!(!dmb_b.span_active());

        assert_eq!(dmb_a.hit_stats(), dmb_b.hit_stats());
        assert_eq!(dmb_a.occupancy(), dmb_b.occupancy());
        assert_eq!(dmb_a.evictions(), dmb_b.evictions());
        assert_eq!(dmb_a.dirty_evictions(), dmb_b.dirty_evictions());
        assert_eq!(dmb_a.line_fills(), dmb_b.line_fills());
        assert_eq!(dmb_a.line_drops(), dmb_b.line_drops());
        assert_eq!(dmb_a.mshr_merges(), dmb_b.mshr_merges());
        assert_eq!(dmb_a.mshr_stalls(), dmb_b.mshr_stalls());
        assert_eq!(dmb_a.mshr_stall_cycles(), dmb_b.mshr_stall_cycles());
        assert_eq!(dmb_a.miss_latency_cycles(), dmb_b.miss_latency_cycles());
        assert_eq!(dram_a.stats(), dram_b.stats());
        // Every span-path access is one port grant, so scheduled+coalesced
        // equals the hit-stat delta across the span.
        let ev = dmb_b.take_events();
        let post = dmb_b.hit_stats();
        let delta = (post.read_hits + post.read_misses + post.write_hits + post.write_misses)
            - (pre.read_hits + pre.read_misses + pre.write_hits + pre.write_misses);
        assert_eq!(ev.events_scheduled + ev.events_coalesced, delta);

        // Post-span generic traffic pins the materialised LRU order, dirty
        // bits and fill timestamps: any divergence shows up as a different
        // hit/evict/writeback pattern.
        for _ in 0..3000 {
            let r = &ranges[rng.gen_range(0..ranges.len())];
            let a = LineAddr::new(r.kind, r.base + rng.gen_range(0..r.len));
            if rng.gen_bool(0.3) {
                let oa = dmb_a.write(now, a, &mut dram_a, true, AccessPattern::Random);
                let ob = dmb_b.write(now, a, &mut dram_b, true, AccessPattern::Random);
                assert_eq!(oa, ob);
            } else {
                let oa = dmb_a.read(now, a, &mut dram_a, AccessPattern::Random);
                let ob = dmb_b.read(now, a, &mut dram_b, AccessPattern::Random);
                assert_eq!(oa, ob);
            }
            now += rng.gen_range(0..4u64);
        }
        assert_eq!(dmb_a.hit_stats(), dmb_b.hit_stats());
        assert_eq!(dram_a.stats(), dram_b.stats());
    }

    #[test]
    fn span_path_is_bit_identical_small_buffer() {
        // Heavy eviction pressure: working set far exceeds capacity.
        for seed in 0..4 {
            drive_differential(seed, 24, 4);
        }
    }

    #[test]
    fn span_path_is_bit_identical_medium_buffer() {
        // Mixed hits and capacity misses, MSHR stalls included.
        for seed in 10..13 {
            drive_differential(seed, 96, 8);
        }
    }

    #[test]
    fn span_path_is_bit_identical_without_pressure() {
        // Capacity far above the working set: the span never arms, so
        // flushes, invalidations, probes, and materialisation all run on
        // unarmed presence markers.
        for seed in 20..23 {
            drive_differential(seed, 4096, 8);
        }
    }

    #[test]
    fn span_bails_out_on_undeclared_address() {
        let cfg = small_config(16, 4);
        let mut dram_a = Dram::new(&cfg);
        let mut dmb_a = Dmb::new(&cfg);
        let mut dram_b = Dram::new(&cfg);
        let mut dmb_b = Dmb::new(&cfg);
        let ranges = [SpanRange {
            kind: MatrixKind::Weight,
            base: 0,
            len: 8,
        }];
        assert!(dmb_b.begin_span(&ranges));
        for i in 0..8 {
            let a = LineAddr::new(MatrixKind::Weight, i);
            let oa = dmb_a.read(i, a, &mut dram_a, AccessPattern::Sequential);
            let ob = dmb_b.read(i, a, &mut dram_b, AccessPattern::Sequential);
            assert_eq!(oa, ob);
        }
        // An address outside every declared range ends the span and lands on
        // the generic path, bit-identically.
        let stray = LineAddr::new(MatrixKind::SparseA, 99);
        let oa = dmb_a.read(50, stray, &mut dram_a, AccessPattern::Random);
        let ob = dmb_b.read(50, stray, &mut dram_b, AccessPattern::Random);
        assert_eq!(oa, ob);
        assert!(!dmb_b.span_active());
        assert_eq!(dmb_a.hit_stats(), dmb_b.hit_stats());
        assert_eq!(dram_a.stats(), dram_b.stats());
    }

    #[test]
    fn span_scratch_is_recycled_across_spans() {
        let cfg = small_config(16, 4);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let w = |base, len| SpanRange {
            kind: MatrixKind::Weight,
            base,
            len,
        };
        assert!(dmb.begin_span(&[w(0, 8)]));
        for i in 0..8 {
            let a = LineAddr::new(MatrixKind::Weight, i);
            dmb.read(i, a, &mut dram, AccessPattern::Sequential);
        }
        dmb.end_span();
        assert!(dmb.span_spare.is_some(), "closed span must park its state");
        assert_eq!(dmb.span_line_pool.len(), 1);

        // The next span consumes the parked scratch; a two-range span pulls
        // one pooled line table and allocates the second.
        assert!(dmb.begin_span(&[w(0, 4), w(8, 4)]));
        assert!(dmb.span_spare.is_none());
        assert!(dmb.span_line_pool.is_empty());
        let a = LineAddr::new(MatrixKind::Weight, 2);
        let hit = dmb.read(100, a, &mut dram, AccessPattern::Sequential);
        assert!(hit.hit, "lines from the first span stay resident");
        dmb.end_span();
        assert_eq!(dmb.span_line_pool.len(), 2);
    }

    #[test]
    fn span_refuses_illegal_conditions() {
        let cfg = small_config(16, 4);
        let mut dmb = Dmb::new(&cfg);
        let w = |base, len| SpanRange {
            kind: MatrixKind::Weight,
            base,
            len,
        };
        assert!(!dmb.begin_span(&[w(0, 0)]), "zero-length range");
        assert!(!dmb.begin_span(&[w(0, 8), w(4, 8)]), "overlapping ranges");
        assert!(
            dmb.begin_span(&[w(0, 8), w(8, 8)]),
            "adjacent ranges are fine"
        );
        assert!(!dmb.begin_span(&[w(100, 8)]), "nested spans refused");
        dmb.end_span();

        let traced = MemConfig {
            trace: true,
            ..small_config(16, 4)
        };
        let mut dmb = Dmb::new(&traced);
        assert!(!dmb.begin_span(&[w(0, 8)]), "tracing forbids spans");

        let plain_lru = MemConfig {
            class_eviction: false,
            ..small_config(16, 4)
        };
        let mut dmb = Dmb::new(&plain_lru);
        assert!(!dmb.begin_span(&[w(0, 8)]), "plain LRU forbids spans");
    }

    #[test]
    fn event_stats_account_for_port_time() {
        let cfg = small_config(64, 8);
        let mut dram = Dram::new(&cfg);
        let mut dmb = Dmb::new(&cfg);
        let ranges = [SpanRange {
            kind: MatrixKind::Combination,
            base: 0,
            len: 32,
        }];
        assert!(dmb.begin_span(&ranges));
        let mut now = 0;
        for i in 0..32u64 {
            let a = LineAddr::new(MatrixKind::Combination, i);
            let o = dmb.read(now, a, &mut dram, AccessPattern::Sequential);
            // Leave deliberate idle gaps: those port cycles are never
            // simulated, and the span books them as skipped.
            now = o.ready + 10;
        }
        dmb.end_span();
        let ev = dmb.take_events();
        assert_eq!(ev.events_scheduled + ev.events_coalesced, 32);
        assert!(ev.cycles_skipped > 0, "idle gaps must be booked as skipped");
        // Drained: a second take is empty.
        assert_eq!(dmb.take_events(), EventStats::default());
    }
}
