//! Stress and failure-injection tests for the memory subsystem: degenerate
//! capacities, pathological access patterns, and invariants that must hold
//! under any configuration.

use hymm_mem::dram::AccessPattern;
use hymm_mem::smq::{SmqStream, SparseFormat};
use hymm_mem::{Dmb, Dram, LineAddr, Lsq, MatrixKind, MemConfig};

fn addr(i: u64) -> LineAddr {
    LineAddr::new(MatrixKind::Combination, i)
}

#[test]
fn one_line_dmb_still_serves_everything() {
    let cfg = MemConfig {
        dmb_bytes: 64,
        ..MemConfig::default()
    };
    let mut dram = Dram::new(&cfg);
    let mut dmb = Dmb::new(&cfg);
    let mut last = 0;
    for i in 0..100 {
        let out = dmb.read(last, addr(i % 7), &mut dram, AccessPattern::Random);
        assert!(out.ready >= last, "time went backwards");
        last = out.ready;
    }
    assert_eq!(dmb.occupancy(), 1);
    assert!(dmb.evictions() >= 90);
}

#[test]
fn single_mshr_serialises_misses() {
    let cfg = MemConfig {
        mshr_count: 1,
        ..MemConfig::default()
    };
    let mut dram = Dram::new(&cfg);
    let mut dmb = Dmb::new(&cfg);
    let a = dmb.read(0, addr(0), &mut dram, AccessPattern::Random);
    let b = dmb.read(0, addr(1), &mut dram, AccessPattern::Random);
    assert!(
        b.ready > a.ready,
        "second miss must wait for the single MSHR"
    );
    assert!(dmb.mshr_stalls() >= 1);
}

#[test]
fn ready_times_are_monotone_under_mixed_traffic() {
    let cfg = MemConfig::default();
    let mut dram = Dram::new(&cfg);
    let mut dmb = Dmb::new(&cfg);
    let mut now = 0;
    for i in 0..1_000u64 {
        let t = if i % 3 == 0 {
            dmb.write(now, addr(i % 50), &mut dram, true, AccessPattern::Random)
                .ready
        } else {
            dmb.read(now, addr(i % 37), &mut dram, AccessPattern::Random)
                .ready
        };
        assert!(
            t >= now || t + cfg.dmb_hit_latency >= now,
            "non-monotone at {i}"
        );
        now = now.max(t);
    }
}

#[test]
fn lsq_with_one_entry_still_progresses() {
    let cfg = MemConfig {
        lsq_entries: 1,
        ..MemConfig::default()
    };
    let mut lsq = Lsq::new(&cfg);
    let mut now = 0;
    for i in 0..50u64 {
        now = lsq.store(now, addr(i), now + 10);
    }
    assert_eq!(lsq.occupancy(), 1);
    assert!(lsq.stats().capacity_stalls >= 49);
}

#[test]
fn smq_handles_enormous_pointer_streams() {
    // pathological: far more pointers than entries (ultra-sparse rows)
    let cfg = MemConfig::default();
    let mut dram = Dram::new(&cfg);
    let mut s = SmqStream::new(&cfg, MatrixKind::SparseA, SparseFormat::Csr, 4, 100_000);
    let mut now = 0;
    let mut count = 0;
    while let Some(r) = s.next_entry(now, &mut dram) {
        now = r;
        count += 1;
    }
    assert_eq!(count, 4);
    // pointer lines dominate the traffic: 100000/16 = 6250 lines
    assert!(dram.stats().kind(MatrixKind::SparseA).reads >= 6_250);
}

#[test]
fn zero_latency_dram_is_faster_than_default() {
    let fast_cfg = MemConfig {
        dram_latency: 0,
        ..MemConfig::default()
    };
    let slow_cfg = MemConfig::default();
    let run = |cfg: &MemConfig| {
        let mut dram = Dram::new(cfg);
        let mut dmb = Dmb::new(cfg);
        let mut now = 0;
        for i in 0..100u64 {
            now = dmb
                .read(now, addr(i), &mut dram, AccessPattern::Random)
                .ready;
        }
        now
    };
    assert!(run(&fast_cfg) < run(&slow_cfg));
}

#[test]
fn throttled_bandwidth_slows_streaming() {
    let wide = MemConfig::default();
    let narrow = MemConfig {
        dram_bytes_per_cycle: 8,
        ..MemConfig::default()
    };
    let run = |cfg: &MemConfig| {
        let mut dram = Dram::new(cfg);
        let mut s = SmqStream::new(cfg, MatrixKind::SparseA, SparseFormat::Csr, 10_000, 100);
        let mut now = 0;
        while let Some(r) = s.next_entry(now, &mut dram) {
            now = r;
        }
        now
    };
    let fast = run(&wide);
    let slow = run(&narrow);
    // not fully linear in bandwidth: the consumer's own pacing and the
    // fixed access latency damp the effect, but it must be substantial
    assert!(
        slow > fast * 2,
        "8x narrower bandwidth must slow the stream: {fast} vs {slow}"
    );
}

#[test]
fn flush_is_idempotent() {
    let cfg = MemConfig::default();
    let mut dram = Dram::new(&cfg);
    let mut dmb = Dmb::new(&cfg);
    dmb.write(0, addr(0), &mut dram, true, AccessPattern::Random);
    let t1 = dmb.flush_kind(10, MatrixKind::Combination, &mut dram);
    let t2 = dmb.flush_kind(t1, MatrixKind::Combination, &mut dram);
    assert_eq!(t2, t1, "second flush of an empty kind must be free");
    assert_eq!(dram.stats().kind(MatrixKind::Combination).writes, 1);
}

#[test]
fn invalidate_discards_without_writeback() {
    let cfg = MemConfig::default();
    let mut dram = Dram::new(&cfg);
    let mut dmb = Dmb::new(&cfg);
    dmb.write(0, addr(0), &mut dram, true, AccessPattern::Random);
    dmb.invalidate_kind(MatrixKind::Combination);
    assert_eq!(dmb.occupancy(), 0);
    assert_eq!(dram.stats().kind(MatrixKind::Combination).writes, 0);
}
