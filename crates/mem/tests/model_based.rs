//! Model-based differential tests: the production DMB (open-addressed line
//! table, intrusive LRU lists, fixed MSHR scan-array) and LSQ (open-addressed
//! forward index) are driven op-for-op against naive reference models built
//! from `Vec`/`HashMap`, and every outcome, counter and membership query must
//! agree. The reference models restate the documented timing rules in the
//! most obvious data structures possible, so any divergence is a bug in the
//! optimised structures rather than a modelling choice.

use hymm_mem::dram::{AccessPattern, Dram};
use hymm_mem::lsq::LoadPath;
use hymm_mem::{Dmb, LineAddr, Lsq, MatrixKind, MemConfig};
use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;

const KINDS: [MatrixKind; 3] = [
    MatrixKind::Weight,
    MatrixKind::Combination,
    MatrixKind::Output,
];

// ---------------------------------------------------------------------------
// Naive DMB reference model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct RefLine {
    addr: LineAddr,
    dirty: bool,
    ready_at: u64,
    lru: u64,
}

/// The DMB's documented behaviour on the dumbest possible data structures:
/// resident lines in a flat `Vec`, MSHRs in a `Vec`, victims found by a full
/// scan for the minimum LRU tick.
struct RefDmb {
    capacity: usize,
    line_bytes: u64,
    hit_latency: u64,
    mshr_count: usize,
    class_eviction: bool,
    lines: Vec<RefLine>,
    mshrs: Vec<(LineAddr, u64)>,
    lru_tick: u64,
    read_port_free: u64,
    write_port_free: u64,
    read_hits: u64,
    read_misses: u64,
    write_hits: u64,
    write_misses: u64,
    evictions: u64,
    dirty_evictions: u64,
    mshr_merges: u64,
    mshr_stalls: u64,
}

impl RefDmb {
    fn new(cfg: &MemConfig) -> RefDmb {
        RefDmb {
            capacity: cfg.dmb_lines().max(1),
            line_bytes: cfg.line_bytes as u64,
            hit_latency: cfg.dmb_hit_latency,
            mshr_count: cfg.mshr_count.max(1),
            class_eviction: cfg.class_eviction,
            lines: Vec::new(),
            mshrs: Vec::new(),
            lru_tick: 0,
            read_port_free: 0,
            write_port_free: 0,
            read_hits: 0,
            read_misses: 0,
            write_hits: 0,
            write_misses: 0,
            evictions: 0,
            dirty_evictions: 0,
            mshr_merges: 0,
            mshr_stalls: 0,
        }
    }

    fn find(&self, addr: LineAddr) -> Option<usize> {
        self.lines.iter().position(|l| l.addr == addr)
    }

    fn touch(&mut self, addr: LineAddr) {
        self.lru_tick += 1;
        let tick = self.lru_tick;
        if let Some(i) = self.find(addr) {
            self.lines[i].lru = tick;
        }
    }

    fn reap_mshrs(&mut self, now: u64) {
        self.mshrs.retain(|&(_, ready)| ready > now);
    }

    fn in_flight(&self, addr: LineAddr) -> bool {
        self.mshrs.iter().any(|&(a, _)| a == addr)
    }

    fn evict_one(&mut self, now: u64, dram: &mut Dram) -> bool {
        let candidate = |lines: &[RefLine], this: &RefDmb, class: u8| {
            lines
                .iter()
                .filter(|l| l.addr.kind.evict_class() == class && !this.in_flight(l.addr))
                .min_by_key(|l| l.lru)
                .map(|l| (l.lru, l.addr))
        };
        let victim = if self.class_eviction {
            (0u8..3).find_map(|c| candidate(&self.lines, self, c))
        } else {
            (0u8..3)
                .filter_map(|c| candidate(&self.lines, self, c))
                .min_by_key(|&(lru, _)| lru)
        };
        if let Some((_, addr)) = victim {
            let i = self.find(addr).unwrap();
            let line = self.lines.remove(i);
            self.evictions += 1;
            if line.dirty {
                self.dirty_evictions += 1;
                dram.write(now, addr.kind, self.line_bytes, AccessPattern::Random);
            }
            return true;
        }
        false
    }

    fn insert_line(
        &mut self,
        addr: LineAddr,
        dirty: bool,
        ready_at: u64,
        now: u64,
        dram: &mut Dram,
    ) {
        while self.lines.len() >= self.capacity {
            if !self.evict_one(now, dram) {
                break;
            }
        }
        self.lru_tick += 1;
        self.lines.push(RefLine {
            addr,
            dirty,
            ready_at,
            lru: self.lru_tick,
        });
    }

    fn read(
        &mut self,
        now: u64,
        addr: LineAddr,
        dram: &mut Dram,
        pattern: AccessPattern,
    ) -> (u64, bool) {
        let start = now.max(self.read_port_free);
        self.read_port_free = start + 1;
        self.reap_mshrs(start);

        if let Some(i) = self.find(addr) {
            let ready = (start + self.hit_latency).max(self.lines[i].ready_at);
            self.read_hits += 1;
            self.touch(addr);
            return (ready, true);
        }
        if let Some(&(_, fill)) = self.mshrs.iter().find(|&&(a, _)| a == addr) {
            self.mshr_merges += 1;
            self.read_misses += 1;
            return (fill.max(start + self.hit_latency), false);
        }
        let mut issue = start;
        if self.mshrs.len() >= self.mshr_count {
            let earliest = self.mshrs.iter().map(|&(_, r)| r).min().unwrap_or(issue);
            self.mshr_stalls += 1;
            issue = issue.max(earliest);
            self.reap_mshrs(issue);
        }
        let ready = dram.read(issue, addr.kind, self.line_bytes, pattern);
        self.mshrs.push((addr, ready));
        self.insert_line(addr, false, ready, issue, dram);
        self.read_misses += 1;
        (ready, false)
    }

    fn write(
        &mut self,
        now: u64,
        addr: LineAddr,
        dram: &mut Dram,
        allocate: bool,
        pattern: AccessPattern,
    ) -> (u64, bool) {
        let start = now.max(self.write_port_free);
        self.write_port_free = start + 1;
        self.reap_mshrs(start);

        if let Some(i) = self.find(addr) {
            self.lines[i].dirty = true;
            self.write_hits += 1;
            self.touch(addr);
            return (start + self.hit_latency, true);
        }
        self.write_misses += 1;
        if allocate {
            self.insert_line(addr, true, start + self.hit_latency, start, dram);
            (start + self.hit_latency, false)
        } else {
            dram.write(start, addr.kind, self.line_bytes, pattern);
            (start + 1, false)
        }
    }

    fn flush_kind(&mut self, now: u64, kind: MatrixKind, dram: &mut Dram) -> u64 {
        let mut listed: Vec<LineAddr> = self
            .lines
            .iter()
            .filter(|l| l.addr.kind == kind)
            .map(|l| l.addr)
            .collect();
        listed.sort_unstable_by_key(|a| a.index);
        let mut done = now;
        for addr in listed {
            let i = self.find(addr).unwrap();
            let line = self.lines.remove(i);
            if line.dirty {
                done = done.max(dram.write(done, kind, self.line_bytes, AccessPattern::Sequential));
            }
        }
        done
    }

    fn invalidate_kind(&mut self, kind: MatrixKind) {
        self.lines.retain(|l| l.addr.kind != kind);
    }
}

/// Drives the real DMB and the reference model through the same randomized
/// op stream (reads, allocating and bypassing writes, flushes, invalidates)
/// on tiny buffers with aggressive collision pressure, comparing every
/// outcome and every counter after each op. Each side owns its own DRAM;
/// the DRAM traffic tables must also stay identical.
#[test]
fn dmb_matches_reference_model() {
    for seq in 0..60u64 {
        let mut rng = Pcg64::seed_from_u64(0xD3B0 ^ seq);
        let cfg = MemConfig {
            dmb_bytes: (2 + (seq as usize % 7)) * 64,
            mshr_count: 1 + (seq as usize % 4),
            class_eviction: seq % 3 != 0,
            ..MemConfig::default()
        };
        let mut dmb = Dmb::new(&cfg);
        let mut dram = Dram::new(&cfg);
        let mut model = RefDmb::new(&cfg);
        let mut model_dram = Dram::new(&cfg);

        let index_space = 1 + seq % 23;
        let mut now = 0u64;
        for step in 0..400 {
            let addr = LineAddr::new(
                KINDS[rng.gen_range(0..3usize)],
                rng.gen_range(0..index_space),
            );
            let ctx = format!("seq {seq} step {step} {addr:?}");
            match rng.gen_range(0..10u32) {
                0..=4 => {
                    let pattern = if rng.gen_bool(0.5) {
                        AccessPattern::Random
                    } else {
                        AccessPattern::Sequential
                    };
                    let got = dmb.read(now, addr, &mut dram, pattern);
                    let (ready, hit) = model.read(now, addr, &mut model_dram, pattern);
                    assert_eq!((got.ready, got.hit), (ready, hit), "read {ctx}");
                }
                5..=7 => {
                    let allocate = rng.gen_bool(0.7);
                    let got = dmb.write(now, addr, &mut dram, allocate, AccessPattern::Random);
                    let (ready, hit) =
                        model.write(now, addr, &mut model_dram, allocate, AccessPattern::Random);
                    assert_eq!((got.ready, got.hit), (ready, hit), "write {ctx}");
                }
                8 => {
                    let got = dmb.flush_kind(now, addr.kind, &mut dram);
                    let want = model.flush_kind(now, addr.kind, &mut model_dram);
                    assert_eq!(got, want, "flush {ctx}");
                }
                _ => {
                    dmb.invalidate_kind(addr.kind);
                    model.invalidate_kind(addr.kind);
                }
            }
            // Advance time irregularly so port/MSHR reuse windows vary.
            if rng.gen_bool(0.3) {
                now += rng.gen_range(0..150u64);
            }

            assert_eq!(dmb.occupancy(), model.lines.len(), "occupancy {ctx}");
            assert_eq!(
                (
                    dmb.hit_stats().read_hits,
                    dmb.hit_stats().read_misses,
                    dmb.hit_stats().write_hits,
                    dmb.hit_stats().write_misses
                ),
                (
                    model.read_hits,
                    model.read_misses,
                    model.write_hits,
                    model.write_misses
                ),
                "hit stats {ctx}"
            );
            assert_eq!(dmb.evictions(), model.evictions, "evictions {ctx}");
            assert_eq!(
                dmb.dirty_evictions(),
                model.dirty_evictions,
                "dirty evictions {ctx}"
            );
            assert_eq!(dmb.mshr_merges(), model.mshr_merges, "merges {ctx}");
            assert_eq!(dmb.mshr_stalls(), model.mshr_stalls, "stalls {ctx}");
            assert_eq!(
                dmb.line_fills(),
                dmb.evictions() + dmb.line_drops() + dmb.occupancy() as u64,
                "conservation {ctx}"
            );
            for kind in KINDS {
                for index in 0..index_space {
                    let a = LineAddr::new(kind, index);
                    assert_eq!(
                        dmb.contains(a),
                        model.find(a).is_some(),
                        "membership of {a:?} at {ctx}"
                    );
                }
            }
        }
        assert_eq!(
            dram.stats().total(),
            model_dram.stats().total(),
            "seq {seq}: DRAM totals diverged"
        );
        for kind in MatrixKind::ALL {
            assert_eq!(
                dram.stats().kind(kind),
                model_dram.stats().kind(kind),
                "seq {seq}: DRAM {kind:?} traffic diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Prefetch resource-discipline model
// ---------------------------------------------------------------------------

/// Drives randomized demand/prefetch interleavings against an external
/// model of the two resource rules the prefetcher must obey:
///
/// 1. **MSHR share** — within any window where no fill can retire, the
///    number of issued prefetches never exceeds `prefetch_mshr_cap`
///    (clamped to `mshr_count - 1`), and prefetches plus demand misses
///    never exceed the pool.
/// 2. **Class ceiling** — a prefetch never shrinks the resident set of any
///    class hotter than its own, issued or dropped.
///
/// The window accounting restarts whenever a demand miss stalls on a full
/// pool (that stall drains retired fills on the DMB's internal clock, which
/// this model cannot see) and across large time jumps that retire
/// everything in flight.
#[test]
fn prefetch_respects_mshr_share_and_class_ceiling() {
    let mut issued_total = 0u64;
    let mut cap_drops_total = 0u64;
    for seq in 0..40u64 {
        let mut rng = Pcg64::seed_from_u64(0xFE7C ^ seq);
        let cfg = MemConfig {
            dmb_bytes: (3 + (seq as usize % 6)) * 64,
            mshr_count: 2 + (seq as usize % 5),
            prefetch_mshr_cap: 1 + (seq as usize % 4),
            class_eviction: seq % 3 != 0,
            ..MemConfig::default()
        };
        let cap = cfg.prefetch_mshr_cap.min(cfg.mshr_count - 1);
        let mut dmb = Dmb::new(&cfg);
        let mut dram = Dram::new(&cfg);
        let index_space = 1 + seq % 17;
        let mut now = 0u64;
        for burst in 0..60 {
            // Far enough ahead that every in-flight fill has retired.
            now += 100_000;
            let mut live_prefetch = 0usize;
            let mut live_demand = 0usize;
            for step in 0..rng.gen_range(1..24usize) {
                let addr = LineAddr::new(
                    KINDS[rng.gen_range(0..3usize)],
                    rng.gen_range(0..index_space),
                );
                let ctx = format!("seq {seq} burst {burst} step {step} {addr:?}");
                if rng.gen_bool(0.5) {
                    let stalls_before = dmb.mshr_stalls();
                    let out = dmb.read(now, addr, &mut dram, AccessPattern::Random);
                    if dmb.mshr_stalls() > stalls_before {
                        // The stall drained the pool on the internal clock;
                        // restart the accounting window.
                        now += 100_000;
                        live_prefetch = 0;
                        live_demand = 0;
                    } else if !out.hit {
                        live_demand += 1;
                    }
                } else {
                    let before: Vec<usize> = KINDS.iter().map(|&k| dmb.resident_lines(k)).collect();
                    let outcome = dmb.prefetch(now, addr, &mut dram, AccessPattern::Random);
                    for (i, &kind) in KINDS.iter().enumerate() {
                        if kind.evict_class() > addr.kind.evict_class() {
                            assert!(
                                dmb.resident_lines(kind) >= before[i],
                                "prefetch displaced hotter class {kind:?} at {ctx}"
                            );
                        }
                    }
                    if outcome.is_none() {
                        live_prefetch += 1;
                        assert!(
                            live_prefetch <= cap,
                            "prefetches exceeded their MSHR share ({live_prefetch} > {cap}) \
                             at {ctx}"
                        );
                        assert!(
                            live_prefetch + live_demand <= cfg.mshr_count,
                            "prefetches starved the demand pool at {ctx}"
                        );
                    }
                }
            }
        }
        let stats = dmb.prefetch_stats();
        issued_total += stats.issued;
        cap_drops_total += stats.dropped_mshr_cap;
    }
    assert!(issued_total > 0, "stream never issued a prefetch");
    assert!(
        cap_drops_total > 0,
        "stream never hit the MSHR share cap; the invariant went unexercised"
    );
}

// ---------------------------------------------------------------------------
// Naive LSQ reference model
// ---------------------------------------------------------------------------

/// Store-to-load forwarding restated as a reverse linear scan over a plain
/// entry list — the obviously-correct version of the open-addressed
/// `ForwardIndex`.
struct RefLsq {
    capacity: usize,
    entries: Vec<(LineAddr, u64, bool)>, // (addr, ready, is_store)
    loads: u64,
    stores: u64,
    forwards: u64,
    capacity_stalls: u64,
}

impl RefLsq {
    fn new(cfg: &MemConfig) -> RefLsq {
        RefLsq {
            capacity: cfg.lsq_entries.max(1),
            entries: Vec::new(),
            loads: 0,
            stores: 0,
            forwards: 0,
            capacity_stalls: 0,
        }
    }

    fn admit(&mut self, now: u64) -> u64 {
        if self.entries.len() < self.capacity {
            return now;
        }
        self.capacity_stalls += 1;
        let oldest = self.entries.remove(0);
        now.max(oldest.1)
    }

    fn youngest_store(&self, addr: LineAddr) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|&&(a, _, is_store)| is_store && a == addr)
            .map(|&(_, ready, _)| ready)
    }

    fn load(&mut self, now: u64, addr: LineAddr) -> Option<u64> {
        let at = self.admit(now);
        self.loads += 1;
        match self.youngest_store(addr) {
            Some(store_ready) => {
                self.forwards += 1;
                let ready = at.max(store_ready) + 1;
                self.entries.push((addr, ready, false));
                Some(ready)
            }
            None => {
                // Mirror the caller protocol: the issued load completes at
                // `at + 1` in this model, reported via complete_load below.
                self.entries.push((addr, at + 1, false));
                None
            }
        }
    }

    fn store(&mut self, now: u64, addr: LineAddr, data_ready: u64) -> u64 {
        let at = self.admit(now);
        self.stores += 1;
        let ready = at.max(data_ready);
        self.entries.push((addr, ready, true));
        ready
    }
}

/// Randomized load/store streams through a small LSQ: forwarding decisions,
/// forwarded-data timing, store admission cycles, occupancy and all counters
/// must match the reverse-scan model. Exercises retirement of stores from a
/// full queue, which is where the open-addressed forward index does its
/// backward-shift deletions.
#[test]
fn lsq_matches_reference_model() {
    for seq in 0..80u64 {
        let mut rng = Pcg64::seed_from_u64(0x15C0 ^ seq);
        let cfg = MemConfig {
            lsq_entries: 2 + (seq as usize % 6),
            ..MemConfig::default()
        };
        let mut lsq = Lsq::new(&cfg);
        let mut model = RefLsq::new(&cfg);
        let index_space = 1 + seq % 13;
        let mut now = 0u64;
        for step in 0..300 {
            let addr = LineAddr::new(
                KINDS[rng.gen_range(0..3usize)],
                rng.gen_range(0..index_space),
            );
            let ctx = format!("seq {seq} step {step} {addr:?}");
            if rng.gen_bool(0.45) {
                let data_ready = now + rng.gen_range(0..20u64);
                let got = lsq.store(now, addr, data_ready);
                let want = model.store(now, addr, data_ready);
                assert_eq!(got, want, "store {ctx}");
            } else {
                let got = lsq.load(now, addr);
                let want = model.load(now, addr);
                match (got, want) {
                    (LoadPath::Forwarded { ready }, Some(model_ready)) => {
                        assert_eq!(ready, model_ready, "forward {ctx}");
                    }
                    (LoadPath::Issue { at }, None) => {
                        // Complete the issued load exactly as the model does.
                        lsq.complete_load(addr, at + 1);
                    }
                    (got, want) => panic!("path diverged at {ctx}: {got:?} vs {want:?}"),
                }
            }
            now += rng.gen_range(0..3u64);
            assert_eq!(lsq.occupancy(), model.entries.len(), "occupancy {ctx}");
            let s = lsq.stats();
            assert_eq!(
                (s.loads, s.stores, s.forwards, s.capacity_stalls),
                (
                    model.loads,
                    model.stores,
                    model.forwards,
                    model.capacity_stalls
                ),
                "stats {ctx}"
            );
        }
        assert!(
            lsq.stats().capacity_stalls > 0,
            "seq {seq}: stream never filled the queue; retirement untested"
        );
    }
}
