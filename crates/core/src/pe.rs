//! The processing-engine (PE) array.
//!
//! HyMM's 16 PEs perform scalar-vector multiply-accumulate: a broadcast
//! sparse scalar times a 64-byte dense vector, one 16-lane operation per
//! cycle (paper §IV-C). Each PE holds a stationary buffer — output rows stay
//! stationary in RWP mode, input rows in OP mode — which this timing model
//! reflects by charging no buffer traffic for stationary operands.
//!
//! The array is parametric (DESIGN.md §12): lane count, MAC latency and
//! pipelining are configurable. Latency `L` is the cycles from issue to
//! result; the initiation interval (II) is the cycles between back-to-back
//! issues — 1 when pipelined, `L` when not. The issue port accepts one
//! vector operation per II (the paper's one-chunk-per-cycle port at the
//! Table III default of `L = 1`). Per-lane operand gating models a flexible
//! vector register file à la FlexVector: a row shorter than the vector width
//! charges only the occupied lanes' energy (`mac_lane_ops`) while timing
//! still pays the full issue slot. The same flexible VRF is what lets the
//! engines co-issue several short rows in one slot
//! ([`PeArray::execute_packed_mac`]) and makes the CWP extension's lane
//! occupancy exact — so enabling gating can shorten schedules at the engine
//! level even though each individual issue keeps its slot-granular timing.
//!
//! The array distinguishes **useful** MAC work from **merge** work (partial
//! output read-modify-write adds): both occupy the array, but only useful
//! MACs count towards the paper's Fig. 8 ALU-utilisation metric, whose text
//! attributes the OP baseline's low utilisation to "wasted cycles caused by
//! merging partial outputs and waiting for off-chip memory access".
//!
//! Counter taxonomy:
//! - `mac_ops` — logical MAC operations (one per sparse row operation or
//!   legacy chunk), invariant across lane count, latency and pipelining.
//! - `mac_issues` — issue slots consumed on the vector port.
//! - `mac_cycles` — port occupancy in cycles; always `mac_issues × II`.
//! - `mac_lane_ops` — lane-level multiply events, the energy proxy: with
//!   gating only occupied lanes count, without it every issue charges all
//!   lanes.

use crate::config::AcceleratorConfig;

/// The PE array timing model.
///
/// # Example
///
/// ```
/// use hymm_core::pe::PeArray;
///
/// let mut pe = PeArray::new(16);
/// let done = pe.execute_mac(10, 1); // operands ready at cycle 10
/// assert_eq!(done, 11);
/// assert_eq!(pe.mac_cycles(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PeArray {
    lanes: usize,
    /// Cycles from issue to result.
    latency: u64,
    /// Cycles between back-to-back issues (1 if pipelined, else `latency`).
    ii: u64,
    /// Per-lane operand gating (flexible VRF): energy charges occupied lanes
    /// only, and the engines may co-issue short rows in one slot.
    gating: bool,
    /// First cycle the issue port can accept another operation.
    issue_free: u64,
    /// Cycle the deepest in-flight operation drains.
    drain_until: u64,
    mac_cycles: u64,
    merge_cycles: u64,
    mac_ops: u64,
    merge_ops: u64,
    mac_issues: u64,
    merge_issues: u64,
    mac_lane_ops: u64,
}

impl PeArray {
    /// Creates an idle array with `lanes` MAC lanes and the paper's Table III
    /// timing (single-cycle MACs, no gating).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> PeArray {
        PeArray::with_timing(lanes, 1, false, false)
    }

    /// Creates an idle array with explicit timing: `latency` cycles from
    /// issue to result, an initiation interval of 1 when `pipelined` (else
    /// `latency`), and per-lane operand `gating` for the energy model.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or `latency == 0`. Callers going through
    /// [`crate::sim`] hit [`AcceleratorConfig::validate`] first and get a
    /// `SparseError::InvalidConfig` instead.
    pub fn with_timing(lanes: usize, latency: u64, pipelined: bool, gating: bool) -> PeArray {
        assert!(lanes > 0, "PE array needs at least one lane");
        assert!(latency > 0, "PE MAC latency must be at least one cycle");
        PeArray {
            lanes,
            latency,
            ii: if pipelined { 1 } else { latency },
            gating,
            issue_free: 0,
            drain_until: 0,
            mac_cycles: 0,
            merge_cycles: 0,
            mac_ops: 0,
            merge_ops: 0,
            mac_issues: 0,
            merge_issues: 0,
            mac_lane_ops: 0,
        }
    }

    /// Creates the array described by an [`AcceleratorConfig`].
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; run
    /// [`AcceleratorConfig::validate`] first for a `Result`.
    pub fn from_config(config: &AcceleratorConfig) -> PeArray {
        PeArray::with_timing(
            config.num_pes,
            config.mac_latency,
            config.mac_pipelined,
            config.lane_gating,
        )
    }

    /// Books `issues` consecutive slots on the issue port, the first no
    /// earlier than `ready`; returns the cycle the last result drains.
    fn issue(&mut self, ready: u64, issues: u64) -> u64 {
        let start = self.issue_free.max(ready);
        if issues == 0 {
            self.issue_free = start;
            self.drain_until = self.drain_until.max(start);
            return start;
        }
        let done = start + (issues - 1) * self.ii + self.latency;
        self.issue_free = start + issues * self.ii;
        self.drain_until = self.drain_until.max(done);
        done
    }

    /// Executes `chunks` full-width scalar-vector MAC operations whose
    /// operands are ready at `ready`; returns the completion cycle. Each
    /// chunk occupies every lane (legacy chunk-granular interface).
    pub fn execute_mac(&mut self, ready: u64, chunks: u64) -> u64 {
        self.mac_ops += chunks;
        self.mac_issues += chunks;
        self.mac_cycles += chunks * self.ii;
        self.mac_lane_ops += chunks * self.lanes as u64;
        self.issue(ready, chunks)
    }

    /// Executes one logical row operation — a broadcast scalar times a
    /// `width`-element dense row — splitting it across
    /// `ceil(width / lanes)` issue slots. Under gating only the occupied
    /// lanes charge energy; timing always pays whole slots.
    pub fn execute_row_mac(&mut self, ready: u64, width: usize) -> u64 {
        let w = width.max(1) as u64;
        let lanes = self.lanes as u64;
        let slots = w.div_ceil(lanes);
        self.mac_ops += 1;
        self.mac_issues += slots;
        self.mac_cycles += slots * self.ii;
        self.mac_lane_ops += if self.gating { w } else { slots * lanes };
        self.issue(ready, slots)
    }

    /// Co-issues `rows` independent row operations of `width` elements each
    /// in a single slot (engine-level row packing: legal only when
    /// `rows × width ≤ lanes`, which callers guarantee by construction).
    /// All packed rows complete together; returns that completion cycle.
    pub fn execute_packed_mac(&mut self, ready: u64, rows: u64, width: usize) -> u64 {
        let w = width.max(1) as u64;
        debug_assert!(rows >= 1, "packed issue needs at least one row");
        debug_assert!(
            rows * w <= self.lanes as u64,
            "packed rows must fit the vector width ({rows}x{w} > {} lanes)",
            self.lanes
        );
        self.mac_ops += rows;
        self.mac_issues += 1;
        self.mac_cycles += self.ii;
        self.mac_lane_ops += if self.gating {
            rows * w
        } else {
            self.lanes as u64
        };
        self.issue(ready, 1)
    }

    /// Executes `count` independent scalar MACs spread across the lanes
    /// (the column-wise-product extension's row-parallel pass). Without
    /// gating the caller's `effective_lanes` models AWB-GCN-style static
    /// imbalance; with gating the occupancy is exact — `ceil(count/lanes)`
    /// slots with only the occupied lanes charging energy, making the lane
    /// efficiency a derived quantity instead of a configured one.
    pub fn execute_scalar_macs(&mut self, ready: u64, count: u64, effective_lanes: u64) -> u64 {
        let count = count.max(1);
        let lanes = self.lanes as u64;
        let slots = if self.gating {
            count.div_ceil(lanes)
        } else {
            count.div_ceil(effective_lanes.max(1))
        }
        .max(1);
        self.mac_ops += count;
        self.mac_issues += slots;
        self.mac_cycles += slots * self.ii;
        self.mac_lane_ops += if self.gating { count } else { slots * lanes };
        self.issue(ready, slots)
    }

    /// Executes `chunks` partial-output merge additions (read-modify-write
    /// through the PE adder); returns the completion cycle.
    pub fn execute_merge(&mut self, ready: u64, chunks: u64) -> u64 {
        self.merge_ops += chunks;
        self.merge_issues += chunks;
        self.merge_cycles += chunks * self.ii;
        self.issue(ready, chunks)
    }

    /// Cycle up to which results are still draining from the pipeline.
    pub fn busy_until(&self) -> u64 {
        self.drain_until
    }

    /// Wake-time contract of the event-driven core: the first cycle the
    /// issue port can accept a new operation with no wait. For a pipelined
    /// array this is earlier than the drain cycle — the core must wake at
    /// next-issue, not drain, or it would serialise the pipeline (at the
    /// default single-cycle MAC the two coincide).
    pub fn next_event_cycle(&self) -> u64 {
        self.issue_free
    }

    /// Number of MAC lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles from issue to result.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Cycles between back-to-back issues (1 when pipelined).
    pub fn initiation_interval(&self) -> u64 {
        self.ii
    }

    /// Whether per-lane operand gating is enabled.
    pub fn gating(&self) -> bool {
        self.gating
    }

    /// Cycles the issue port was occupied by useful MAC work.
    pub fn mac_cycles(&self) -> u64 {
        self.mac_cycles
    }

    /// Cycles the issue port was occupied merging partial outputs.
    pub fn merge_cycles(&self) -> u64 {
        self.merge_cycles
    }

    /// Logical MAC operations executed (invariant across lane count,
    /// latency and pipelining).
    pub fn mac_ops(&self) -> u64 {
        self.mac_ops
    }

    /// Merge operations executed.
    pub fn merge_ops(&self) -> u64 {
        self.merge_ops
    }

    /// Issue slots consumed by MAC work (`mac_cycles == mac_issues × II`).
    pub fn mac_issues(&self) -> u64 {
        self.mac_issues
    }

    /// Issue slots consumed by merge work.
    pub fn merge_issues(&self) -> u64 {
        self.merge_issues
    }

    /// Lane-level multiply events — the energy proxy. Equal to
    /// `mac_issues × lanes` without gating, at most that with it.
    pub fn mac_lane_ops(&self) -> u64 {
        self.mac_lane_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_back_to_back_ops() {
        let mut pe = PeArray::new(16);
        assert_eq!(pe.execute_mac(0, 1), 1);
        assert_eq!(pe.execute_mac(0, 1), 2); // array busy, queues behind
        assert_eq!(pe.mac_cycles(), 2);
    }

    #[test]
    fn waits_for_operands() {
        let mut pe = PeArray::new(16);
        assert_eq!(pe.execute_mac(100, 2), 102);
        assert_eq!(pe.busy_until(), 102);
    }

    #[test]
    fn merge_and_mac_tracked_separately() {
        let mut pe = PeArray::new(16);
        pe.execute_mac(0, 3);
        pe.execute_merge(0, 2);
        assert_eq!(pe.mac_cycles(), 3);
        assert_eq!(pe.merge_cycles(), 2);
        assert_eq!(pe.busy_until(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn rejects_zero_lanes() {
        let _ = PeArray::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn rejects_zero_latency() {
        let _ = PeArray::with_timing(16, 0, false, false);
    }

    #[test]
    fn default_timing_matches_legacy_model() {
        // At Table III timing (latency 1, II 1) every interface degenerates
        // to the seed's busy_until = start + chunks contract.
        let mut pe = PeArray::new(16);
        assert_eq!(pe.execute_row_mac(10, 16), 11);
        assert_eq!(pe.next_event_cycle(), 11);
        assert_eq!(pe.busy_until(), 11);
        assert_eq!(pe.mac_cycles(), 1);
        assert_eq!(pe.mac_ops(), 1);
        assert_eq!(pe.mac_lane_ops(), 16);
    }

    #[test]
    fn unpipelined_latency_multiplies_occupancy() {
        let mut pe = PeArray::with_timing(16, 4, false, false);
        // II == latency == 4: two chunks take 8 cycles of port occupancy.
        assert_eq!(pe.execute_mac(0, 2), 8);
        assert_eq!(pe.mac_cycles(), 8);
        assert_eq!(pe.next_event_cycle(), 8);
        assert_eq!(pe.busy_until(), 8);
    }

    #[test]
    fn pipelined_wakes_at_next_issue_not_drain() {
        let mut pe = PeArray::with_timing(16, 4, true, false);
        // II 1, latency 4: two chunks issue at 0 and 1, last drains at 5.
        assert_eq!(pe.execute_mac(0, 2), 5);
        assert_eq!(pe.mac_cycles(), 2);
        assert_eq!(pe.next_event_cycle(), 2); // port free while draining
        assert_eq!(pe.busy_until(), 5);
        // A third op issues behind the port, not behind the drain.
        assert_eq!(pe.execute_mac(0, 1), 6);
    }

    #[test]
    fn wide_row_splits_into_slots() {
        let mut pe = PeArray::new(16);
        // 48 elements over 16 lanes = 3 slots, one logical op.
        assert_eq!(pe.execute_row_mac(0, 48), 3);
        assert_eq!(pe.mac_issues(), 3);
        assert_eq!(pe.mac_ops(), 1);
        assert_eq!(pe.mac_lane_ops(), 48);
    }

    #[test]
    fn gating_charges_occupied_lanes_only() {
        let mut ungated = PeArray::with_timing(32, 1, false, false);
        let mut gated = PeArray::with_timing(32, 1, false, true);
        // A 16-wide row on a 32-lane array: same timing, half the energy.
        assert_eq!(ungated.execute_row_mac(0, 16), gated.execute_row_mac(0, 16));
        assert_eq!(ungated.mac_cycles(), gated.mac_cycles());
        assert_eq!(ungated.mac_lane_ops(), 32);
        assert_eq!(gated.mac_lane_ops(), 16);
    }

    #[test]
    fn packed_rows_share_one_slot() {
        let mut pe = PeArray::with_timing(32, 1, false, false);
        // Two 16-wide rows co-issued: one slot, two logical ops.
        assert_eq!(pe.execute_packed_mac(5, 2, 16), 6);
        assert_eq!(pe.mac_cycles(), 1);
        assert_eq!(pe.mac_ops(), 2);
        assert_eq!(pe.mac_issues(), 1);
        assert_eq!(pe.mac_lane_ops(), 32);
    }

    #[test]
    fn scalar_macs_gated_occupancy_is_exact() {
        let mut pe = PeArray::with_timing(16, 1, false, true);
        // 20 scalar MACs over 16 lanes gated: 2 slots, 20 lane events.
        assert_eq!(pe.execute_scalar_macs(0, 20, 12), 2);
        assert_eq!(pe.mac_ops(), 20);
        assert_eq!(pe.mac_lane_ops(), 20);
        let mut ungated = PeArray::with_timing(16, 1, false, false);
        // Ungated: the configured effective lanes (12) drive occupancy.
        assert_eq!(ungated.execute_scalar_macs(0, 20, 12), 2);
        assert_eq!(ungated.mac_lane_ops(), 32);
    }

    #[test]
    fn zero_chunk_issue_leaves_port_state() {
        let mut pe = PeArray::new(16);
        pe.execute_mac(0, 3);
        assert_eq!(pe.execute_mac(10, 0), 10);
        assert_eq!(pe.next_event_cycle(), 10);
        assert_eq!(pe.mac_cycles(), 3);
    }
}
