//! The processing-engine (PE) array.
//!
//! HyMM's 16 PEs perform scalar-vector multiply-accumulate: a broadcast
//! sparse scalar times a 64-byte dense vector, one 16-lane operation per
//! cycle (paper §IV-C). Each PE holds a stationary buffer — output rows stay
//! stationary in RWP mode, input rows in OP mode — which this timing model
//! reflects by charging no buffer traffic for stationary operands.
//!
//! The array distinguishes **useful** MAC work from **merge** work (partial
//! output read-modify-write adds): both occupy the array, but only useful
//! MACs count towards the paper's Fig. 8 ALU-utilisation metric, whose text
//! attributes the OP baseline's low utilisation to "wasted cycles caused by
//! merging partial outputs and waiting for off-chip memory access".

/// The PE array timing model.
///
/// # Example
///
/// ```
/// use hymm_core::pe::PeArray;
///
/// let mut pe = PeArray::new(16);
/// let done = pe.execute_mac(10, 1); // operands ready at cycle 10
/// assert_eq!(done, 11);
/// assert_eq!(pe.mac_cycles(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PeArray {
    lanes: usize,
    busy_until: u64,
    mac_cycles: u64,
    merge_cycles: u64,
    mac_ops: u64,
    merge_ops: u64,
}

impl PeArray {
    /// Creates an idle array with `lanes` MAC lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> PeArray {
        assert!(lanes > 0, "PE array needs at least one lane");
        PeArray {
            lanes,
            busy_until: 0,
            mac_cycles: 0,
            merge_cycles: 0,
            mac_ops: 0,
            merge_ops: 0,
        }
    }

    /// Executes `chunks` scalar-vector MAC operations whose operands are
    /// ready at `ready`; returns the completion cycle.
    pub fn execute_mac(&mut self, ready: u64, chunks: u64) -> u64 {
        let start = self.busy_until.max(ready);
        self.busy_until = start + chunks;
        self.mac_cycles += chunks;
        self.mac_ops += chunks;
        self.busy_until
    }

    /// Executes `chunks` partial-output merge additions (read-modify-write
    /// through the PE adder); returns the completion cycle.
    pub fn execute_merge(&mut self, ready: u64, chunks: u64) -> u64 {
        let start = self.busy_until.max(ready);
        self.busy_until = start + chunks;
        self.merge_cycles += chunks;
        self.merge_ops += chunks;
        self.busy_until
    }

    /// Cycle up to which the array is busy.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Wake-time contract of the event-driven core: the cycle the array
    /// drains its current work and can accept an operation with no wait.
    pub fn next_event_cycle(&self) -> u64 {
        self.busy_until
    }

    /// Number of MAC lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles spent on useful MAC work.
    pub fn mac_cycles(&self) -> u64 {
        self.mac_cycles
    }

    /// Cycles spent merging partial outputs.
    pub fn merge_cycles(&self) -> u64 {
        self.merge_cycles
    }

    /// Useful MAC operations executed (one per 16-wide chunk).
    pub fn mac_ops(&self) -> u64 {
        self.mac_ops
    }

    /// Merge operations executed.
    pub fn merge_ops(&self) -> u64 {
        self.merge_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_back_to_back_ops() {
        let mut pe = PeArray::new(16);
        assert_eq!(pe.execute_mac(0, 1), 1);
        assert_eq!(pe.execute_mac(0, 1), 2); // array busy, queues behind
        assert_eq!(pe.mac_cycles(), 2);
    }

    #[test]
    fn waits_for_operands() {
        let mut pe = PeArray::new(16);
        assert_eq!(pe.execute_mac(100, 2), 102);
        assert_eq!(pe.busy_until(), 102);
    }

    #[test]
    fn merge_and_mac_tracked_separately() {
        let mut pe = PeArray::new(16);
        pe.execute_mac(0, 3);
        pe.execute_merge(0, 2);
        assert_eq!(pe.mac_cycles(), 3);
        assert_eq!(pe.merge_cycles(), 2);
        assert_eq!(pe.busy_until(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn rejects_zero_lanes() {
        let _ = PeArray::new(0);
    }
}
