//! Structured event tracing — re-exported from `hymm-mem` so consumers of
//! a [`crate::stats::SimReport`] can inspect its trace without depending on
//! the memory crate directly.
//!
//! Tracing is **opt-in and observation-only**: set
//! [`hymm_mem::MemConfig::trace`] before building the machine and the
//! report's [`crate::stats::SimReport::trace`] field carries every event;
//! leave it off (the default) and the hooks reduce to one branch on a `None`
//! per instrumented site — timing and counters are bit-identical either way.
//!
//! # Event ordering
//!
//! Events carry absolute cycle timestamps, grouped into [`Track`]s. The
//! tracks modelling a single arbitrated resource — [`Track::Phase`],
//! [`Track::DmbRead`], [`Track::DmbWrite`], [`Track::DramChannel`] and
//! [`Track::Smq`] — are emitted in non-decreasing timestamp order.
//! [`Track::MshrRetire`] and [`Track::Lsq`] are completion-ordered streams
//! fed from both DMB ports' diverging clocks, so their timestamps are not
//! monotone; sort by `ts` before interval analysis there.

pub use hymm_mem::trace::{
    AccessClass, LsqOpKind, TraceData, TraceEvent, TraceKind, TraceRing, Track,
};
