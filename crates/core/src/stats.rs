//! Simulation reports.
//!
//! One [`SimReport`] per simulated layer collects everything the paper's
//! evaluation section plots: total cycles (Fig. 7 speedups), ALU utilisation
//! (Fig. 8), DMB hit rates (Fig. 9), partial-output footprint (Fig. 10) and
//! the per-matrix DRAM access breakdown (Fig. 11).

use hymm_mem::lsq::LsqStats;
use hymm_mem::metrics::MetricsData;
use hymm_mem::stats::HitStats;
use hymm_mem::trace::TraceData;
use hymm_mem::{PrefetchStats, TrafficStats};

/// Per-phase (and per-report) cycle attribution: every simulated cycle
/// classified into one stall/work class.
///
/// Classes are attributed from component counter **deltas** over the phase
/// window with a fixed-priority waterfall (see [`StallBreakdown::attribute`]):
/// each class claims at most the cycles the previous classes left, so the
/// eight fields always sum exactly to the phase's cycle count — the audit
/// layer enforces this. Because concurrent components overlap (a MAC can
/// execute under a miss), the waterfall is an *attribution policy*, not a
/// measurement of exclusive busy time: classes earlier in the order absorb
/// overlapped cycles first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Useful MAC work in the PE array.
    pub mac: u64,
    /// Partial-output merge work in the PE array.
    pub merge: u64,
    /// Waiting on DMB read misses (fill latency + MSHR-full stalls).
    pub dmb_miss: u64,
    /// Waiting on an in-flight prefetch fill — the line was found resident
    /// but its speculative fill had not completed (a *late* prefetch). Kept
    /// separate from [`StallBreakdown::dmb_miss`] so prefetching shifts
    /// cycles between the two classes visibly instead of hiding them.
    pub prefetch_late: u64,
    /// DRAM channel busy (bandwidth-bound).
    pub dram_bw: u64,
    /// Waiting on LSQ capacity.
    pub lsq_capacity: u64,
    /// Waiting on the SMQ sparse stream (starvation).
    pub smq_starve: u64,
    /// Nothing above claims the cycle: drain, dependency gaps, idle.
    pub idle: u64,
}

impl StallBreakdown {
    /// Class labels, in waterfall order, matching [`StallBreakdown::as_array`].
    pub const CLASSES: [&'static str; 8] = [
        "mac",
        "merge",
        "dmb-miss",
        "prefetch-late",
        "dram-bw",
        "lsq-cap",
        "smq-starve",
        "idle",
    ];

    /// Distributes `cycles` over the classes: each raw component count is
    /// capped by whatever the classes before it left unclaimed (a component
    /// counter like total MAC cycles across 16 PEs can legitimately exceed
    /// the wall-clock window), and the remainder is idle. By construction
    /// `total() == cycles`.
    #[allow(clippy::too_many_arguments)]
    pub fn attribute(
        cycles: u64,
        mac: u64,
        merge: u64,
        dmb_miss: u64,
        prefetch_late: u64,
        dram_bw: u64,
        lsq_capacity: u64,
        smq_starve: u64,
    ) -> StallBreakdown {
        let mut left = cycles;
        let mut take = |raw: u64| {
            let t = raw.min(left);
            left -= t;
            t
        };
        let mac = take(mac);
        let merge = take(merge);
        let dmb_miss = take(dmb_miss);
        let prefetch_late = take(prefetch_late);
        let dram_bw = take(dram_bw);
        let lsq_capacity = take(lsq_capacity);
        let smq_starve = take(smq_starve);
        StallBreakdown {
            mac,
            merge,
            dmb_miss,
            prefetch_late,
            dram_bw,
            lsq_capacity,
            smq_starve,
            idle: left,
        }
    }

    /// Sum of all classes — equals the attributed cycle count.
    pub fn total(&self) -> u64 {
        self.mac
            + self.merge
            + self.dmb_miss
            + self.prefetch_late
            + self.dram_bw
            + self.lsq_capacity
            + self.smq_starve
            + self.idle
    }

    /// The classes as an array, ordered like [`StallBreakdown::CLASSES`].
    pub fn as_array(&self) -> [u64; 8] {
        [
            self.mac,
            self.merge,
            self.dmb_miss,
            self.prefetch_late,
            self.dram_bw,
            self.lsq_capacity,
            self.smq_starve,
            self.idle,
        ]
    }

    /// Accumulates another breakdown.
    pub fn merge(&mut self, other: &StallBreakdown) {
        self.mac += other.mac;
        self.merge += other.merge;
        self.dmb_miss += other.dmb_miss;
        self.prefetch_late += other.prefetch_late;
        self.dram_bw += other.dram_bw;
        self.lsq_capacity += other.lsq_capacity;
        self.smq_starve += other.smq_starve;
        self.idle += other.idle;
    }
}

/// Partial-output footprint accounting (paper Fig. 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartialStats {
    /// Partial-output line writes issued by the OP engine.
    pub writes: u64,
    /// Peak bytes of partial-output state alive at once (merged lines for
    /// accumulator configurations, materialised log otherwise).
    pub peak_bytes: u64,
    /// Partial lines that had to be merged through DRAM (spilled before
    /// their final merge).
    pub dram_merges: u64,
}

impl PartialStats {
    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &PartialStats) {
        self.writes += other.writes;
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.dram_merges += other.dram_merges;
    }
}

/// Timing and counters of one execution phase (combination, or one
/// aggregation region pass).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Human-readable phase name, e.g. `"combination"` or `"aggregation/op"`.
    /// Interned: every caller passes a literal, so the report borrows it and
    /// `record_phase` stays allocation-free.
    pub name: &'static str,
    /// First cycle of the phase.
    pub start_cycle: u64,
    /// Last cycle of the phase.
    pub end_cycle: u64,
    /// Non-zero entries processed.
    pub nnz: u64,
    /// DMB hit/miss counters accumulated during this phase only.
    pub dmb_hits: HitStats,
    /// DRAM bytes moved during this phase only.
    pub dram_bytes: u64,
    /// Where this phase's cycles went; always sums to [`PhaseReport::cycles`].
    pub stalls: StallBreakdown,
}

impl PhaseReport {
    /// Cycles spent in this phase.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }
}

/// The complete report of one simulated GCN layer (or a whole inference if
/// merged with [`SimReport::merge`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total execution cycles.
    pub cycles: u64,
    /// Useful MAC cycles in the PE array.
    pub mac_cycles: u64,
    /// Partial-output merge cycles executed in the PE array (zero when the
    /// near-memory accumulator does the merging).
    pub merge_cycles: u64,
    /// Logical MAC operations (one per sparse row operation); invariant
    /// across PE lane count, latency and pipelining.
    pub mac_ops: u64,
    /// Merge operations executed in the PE array.
    pub merge_ops: u64,
    /// Lane-level multiply events — the PE energy proxy. With per-lane
    /// gating only occupied lanes count; without it every issue slot
    /// charges all lanes.
    pub mac_lane_ops: u64,
    /// DRAM traffic broken down by matrix kind (Fig. 11).
    pub dram: TrafficStats,
    /// DMB hit/miss counters (Fig. 9).
    pub dmb_hits: HitStats,
    /// DMB evictions.
    pub dmb_evictions: u64,
    /// DMB evictions that wrote dirty data back.
    pub dmb_dirty_evictions: u64,
    /// Near-memory accumulator merges.
    pub accumulator_merges: u64,
    /// LSQ counters (forwards, stalls).
    pub lsq: LsqStats,
    /// Data-prefetcher counters (all zero when `MemConfig::prefetch` is
    /// `Off`): issued/dropped/useful/late plus the accuracy and timeliness
    /// ratios derived from them.
    pub prefetch: PrefetchStats,
    /// Partial-output footprint (Fig. 10).
    pub partials: PartialStats,
    /// Where every cycle went; always sums to [`SimReport::cycles`].
    pub stalls: StallBreakdown,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseReport>,
    /// Structured event trace, present only when `MemConfig::trace` was set.
    /// Boxed so the common (disabled) path costs one pointer.
    pub trace: Option<Box<TraceData>>,
    /// Interval-sampled time series, present only when
    /// [`crate::config::AcceleratorConfig::metrics`] was set. Boxed like
    /// the trace so the common (disabled) path costs one pointer.
    pub metrics: Option<Box<MetricsData>>,
}

impl SimReport {
    /// An all-zero report.
    pub fn empty() -> SimReport {
        SimReport {
            cycles: 0,
            mac_cycles: 0,
            merge_cycles: 0,
            mac_ops: 0,
            merge_ops: 0,
            mac_lane_ops: 0,
            dram: TrafficStats::new(),
            dmb_hits: HitStats::default(),
            dmb_evictions: 0,
            dmb_dirty_evictions: 0,
            accumulator_merges: 0,
            lsq: LsqStats::default(),
            prefetch: PrefetchStats::default(),
            partials: PartialStats::default(),
            stalls: StallBreakdown::default(),
            phases: Vec::new(),
            trace: None,
            metrics: None,
        }
    }

    /// Fraction of total cycles the PE array spends on useful MACs — the
    /// paper's Fig. 8 ALU-utilisation metric. In `[0, 1]`.
    pub fn alu_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.mac_cycles as f64 / self.cycles as f64
    }

    /// Overall DMB hit rate in `[0, 1]` (Fig. 9).
    pub fn dmb_hit_rate(&self) -> f64 {
        self.dmb_hits.hit_rate()
    }

    /// Total DRAM bytes moved (Fig. 11 totals).
    pub fn dram_bytes(&self) -> u64 {
        self.dram.total().total_bytes()
    }

    /// Accumulates a subsequent layer's report into this one (cycles add,
    /// peak footprints take the max).
    pub fn merge(&mut self, other: &SimReport) {
        // Layers run back to back, so the merged trace places the other
        // layer's events after this one's last cycle.
        let base = self.cycles;
        self.cycles += other.cycles;
        self.mac_cycles += other.mac_cycles;
        self.merge_cycles += other.merge_cycles;
        self.mac_ops += other.mac_ops;
        self.merge_ops += other.merge_ops;
        self.mac_lane_ops += other.mac_lane_ops;
        self.dram.merge(&other.dram);
        self.dmb_hits.merge(&other.dmb_hits);
        self.dmb_evictions += other.dmb_evictions;
        self.dmb_dirty_evictions += other.dmb_dirty_evictions;
        self.accumulator_merges += other.accumulator_merges;
        self.lsq.merge(&other.lsq);
        self.prefetch.merge(&other.prefetch);
        self.partials.merge(&other.partials);
        self.stalls.merge(&other.stalls);
        self.phases.extend(other.phases.iter().cloned());
        if let Some(other_trace) = other.trace.as_deref() {
            self.trace
                .get_or_insert_with(Default::default)
                .extend_shifted(other_trace, base);
        }
        if let Some(other_metrics) = other.metrics.as_deref() {
            self.metrics
                .get_or_insert_with(Default::default)
                .extend_shifted(other_metrics, base);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let mut r = SimReport::empty();
        assert_eq!(r.alu_utilization(), 0.0);
        r.cycles = 100;
        r.mac_cycles = 40;
        assert!((r.alu_utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn phase_cycles() {
        let p = PhaseReport {
            name: "x",
            start_cycle: 10,
            end_cycle: 25,
            nnz: 3,
            dmb_hits: HitStats::default(),
            dram_bytes: 0,
            stalls: StallBreakdown::default(),
        };
        assert_eq!(p.cycles(), 15);
    }

    #[test]
    fn waterfall_caps_each_class_and_sums_to_cycles() {
        // mac claims 60, merge the remaining 40, everything after is starved.
        let s = StallBreakdown::attribute(100, 60, 70, 5, 5, 5, 5, 5);
        assert_eq!(s.mac, 60);
        assert_eq!(s.merge, 40);
        assert_eq!(s.dmb_miss, 0);
        assert_eq!(s.prefetch_late, 0);
        assert_eq!(s.idle, 0);
        assert_eq!(s.total(), 100);

        // Under-subscribed window: remainder is idle.
        let s = StallBreakdown::attribute(100, 10, 0, 20, 0, 5, 0, 1);
        assert_eq!(s.idle, 64);
        assert_eq!(s.total(), 100);

        // A late prefetch claims after dmb-miss and before dram-bw.
        let s = StallBreakdown::attribute(100, 0, 0, 30, 40, 50, 0, 0);
        assert_eq!(s.dmb_miss, 30);
        assert_eq!(s.prefetch_late, 40);
        assert_eq!(s.dram_bw, 30);
        assert_eq!(s.total(), 100);

        // Empty window attributes nothing.
        assert_eq!(StallBreakdown::attribute(0, 9, 9, 9, 9, 9, 9, 9).total(), 0);
    }

    #[test]
    fn breakdown_merge_and_array_agree() {
        let mut a = StallBreakdown::attribute(10, 4, 0, 6, 0, 0, 0, 0);
        let b = StallBreakdown::attribute(7, 0, 2, 0, 0, 0, 0, 5);
        a.merge(&b);
        assert_eq!(a.total(), 17);
        assert_eq!(a.as_array().iter().sum::<u64>(), 17);
        assert_eq!(StallBreakdown::CLASSES.len(), a.as_array().len());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimReport::empty();
        a.cycles = 10;
        a.partials.peak_bytes = 100;
        let mut b = SimReport::empty();
        b.cycles = 5;
        b.mac_cycles = 3;
        b.partials.peak_bytes = 50;
        b.phases.push(PhaseReport {
            name: "p",
            start_cycle: 0,
            end_cycle: 5,
            nnz: 1,
            dmb_hits: HitStats::default(),
            dram_bytes: 0,
            stalls: StallBreakdown::default(),
        });
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.mac_cycles, 3);
        assert_eq!(a.partials.peak_bytes, 100); // max, not sum
        assert_eq!(a.phases.len(), 1);
    }

    #[test]
    fn merge_shifts_metrics_timestamps_like_traces() {
        use hymm_mem::metrics::MetricsSample;
        let mut a = SimReport::empty();
        a.cycles = 1000;
        let mut am = MetricsData::new(64);
        am.samples.push(MetricsSample {
            ts: 64,
            stalls: [1, 0, 0, 0, 0, 0, 0, 0],
            ..MetricsSample::default()
        });
        a.metrics = Some(Box::new(am));
        let mut b = SimReport::empty();
        b.cycles = 500;
        let mut bm = MetricsData::new(64);
        bm.samples.push(MetricsSample {
            ts: 128,
            stalls: [0, 0, 2, 0, 0, 0, 0, 0],
            ..MetricsSample::default()
        });
        bm.dropped = 3;
        b.metrics = Some(Box::new(bm));
        a.merge(&b);
        let m = a.metrics.as_deref().expect("series survives merge");
        // The second layer's boundary lands after the first layer's last
        // cycle, exactly like trace timestamps.
        assert_eq!(
            m.samples.iter().map(|s| s.ts).collect::<Vec<_>>(),
            [64, 1000 + 128]
        );
        assert_eq!(m.dropped, 3);
        assert_eq!(m.stall_sums()[0], 1);
        assert_eq!(m.stall_sums()[2], 2);

        // A metrics-less report absorbing a metrics-carrying one adopts
        // the series (shifted); the reverse leaves `None` untouched.
        let mut c = SimReport::empty();
        c.cycles = 10;
        c.merge(&a);
        assert!(c.metrics.is_some());
        let mut d = SimReport::empty();
        d.merge(&SimReport::empty());
        assert!(d.metrics.is_none());
    }
}
