//! Simulation reports.
//!
//! One [`SimReport`] per simulated layer collects everything the paper's
//! evaluation section plots: total cycles (Fig. 7 speedups), ALU utilisation
//! (Fig. 8), DMB hit rates (Fig. 9), partial-output footprint (Fig. 10) and
//! the per-matrix DRAM access breakdown (Fig. 11).

use hymm_mem::lsq::LsqStats;
use hymm_mem::stats::HitStats;
use hymm_mem::TrafficStats;

/// Partial-output footprint accounting (paper Fig. 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartialStats {
    /// Partial-output line writes issued by the OP engine.
    pub writes: u64,
    /// Peak bytes of partial-output state alive at once (merged lines for
    /// accumulator configurations, materialised log otherwise).
    pub peak_bytes: u64,
    /// Partial lines that had to be merged through DRAM (spilled before
    /// their final merge).
    pub dram_merges: u64,
}

impl PartialStats {
    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &PartialStats) {
        self.writes += other.writes;
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.dram_merges += other.dram_merges;
    }
}

/// Timing and counters of one execution phase (combination, or one
/// aggregation region pass).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Human-readable phase name, e.g. `"combination"` or `"aggregation/op"`.
    /// Interned: every caller passes a literal, so the report borrows it and
    /// `record_phase` stays allocation-free.
    pub name: &'static str,
    /// First cycle of the phase.
    pub start_cycle: u64,
    /// Last cycle of the phase.
    pub end_cycle: u64,
    /// Non-zero entries processed.
    pub nnz: u64,
    /// DMB hit/miss counters accumulated during this phase only.
    pub dmb_hits: HitStats,
    /// DRAM bytes moved during this phase only.
    pub dram_bytes: u64,
}

impl PhaseReport {
    /// Cycles spent in this phase.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }
}

/// The complete report of one simulated GCN layer (or a whole inference if
/// merged with [`SimReport::merge`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total execution cycles.
    pub cycles: u64,
    /// Useful MAC cycles in the PE array.
    pub mac_cycles: u64,
    /// Partial-output merge cycles executed in the PE array (zero when the
    /// near-memory accumulator does the merging).
    pub merge_cycles: u64,
    /// DRAM traffic broken down by matrix kind (Fig. 11).
    pub dram: TrafficStats,
    /// DMB hit/miss counters (Fig. 9).
    pub dmb_hits: HitStats,
    /// DMB evictions.
    pub dmb_evictions: u64,
    /// DMB evictions that wrote dirty data back.
    pub dmb_dirty_evictions: u64,
    /// Near-memory accumulator merges.
    pub accumulator_merges: u64,
    /// LSQ counters (forwards, stalls).
    pub lsq: LsqStats,
    /// Partial-output footprint (Fig. 10).
    pub partials: PartialStats,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseReport>,
}

impl SimReport {
    /// An all-zero report.
    pub fn empty() -> SimReport {
        SimReport {
            cycles: 0,
            mac_cycles: 0,
            merge_cycles: 0,
            dram: TrafficStats::new(),
            dmb_hits: HitStats::default(),
            dmb_evictions: 0,
            dmb_dirty_evictions: 0,
            accumulator_merges: 0,
            lsq: LsqStats::default(),
            partials: PartialStats::default(),
            phases: Vec::new(),
        }
    }

    /// Fraction of total cycles the PE array spends on useful MACs — the
    /// paper's Fig. 8 ALU-utilisation metric. In `[0, 1]`.
    pub fn alu_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.mac_cycles as f64 / self.cycles as f64
    }

    /// Overall DMB hit rate in `[0, 1]` (Fig. 9).
    pub fn dmb_hit_rate(&self) -> f64 {
        self.dmb_hits.hit_rate()
    }

    /// Total DRAM bytes moved (Fig. 11 totals).
    pub fn dram_bytes(&self) -> u64 {
        self.dram.total().total_bytes()
    }

    /// Accumulates a subsequent layer's report into this one (cycles add,
    /// peak footprints take the max).
    pub fn merge(&mut self, other: &SimReport) {
        self.cycles += other.cycles;
        self.mac_cycles += other.mac_cycles;
        self.merge_cycles += other.merge_cycles;
        self.dram.merge(&other.dram);
        self.dmb_hits.merge(&other.dmb_hits);
        self.dmb_evictions += other.dmb_evictions;
        self.dmb_dirty_evictions += other.dmb_dirty_evictions;
        self.accumulator_merges += other.accumulator_merges;
        self.lsq.loads += other.lsq.loads;
        self.lsq.stores += other.lsq.stores;
        self.lsq.forwards += other.lsq.forwards;
        self.lsq.capacity_stalls += other.lsq.capacity_stalls;
        self.partials.merge(&other.partials);
        self.phases.extend(other.phases.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let mut r = SimReport::empty();
        assert_eq!(r.alu_utilization(), 0.0);
        r.cycles = 100;
        r.mac_cycles = 40;
        assert!((r.alu_utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn phase_cycles() {
        let p = PhaseReport {
            name: "x",
            start_cycle: 10,
            end_cycle: 25,
            nnz: 3,
            dmb_hits: HitStats::default(),
            dram_bytes: 0,
        };
        assert_eq!(p.cycles(), 15);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimReport::empty();
        a.cycles = 10;
        a.partials.peak_bytes = 100;
        let mut b = SimReport::empty();
        b.cycles = 5;
        b.mac_cycles = 3;
        b.partials.peak_bytes = 50;
        b.phases.push(PhaseReport {
            name: "p",
            start_cycle: 0,
            end_cycle: 5,
            nnz: 1,
            dmb_hits: HitStats::default(),
            dram_bytes: 0,
        });
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.mac_cycles, 3);
        assert_eq!(a.partials.peak_bytes, 100); // max, not sum
        assert_eq!(a.phases.len(), 1);
    }
}
