//! Interval-sampled telemetry — the sampler that turns the machine's
//! cumulative counters into the time series defined in
//! [`hymm_mem::metrics`] (re-exported here so report consumers need not
//! depend on the memory crate directly).
//!
//! # How sampling works on a transaction-level simulator
//!
//! There is no per-cycle loop to hang a "sample every N cycles" timer on:
//! components exchange absolute cycle numbers and engines advance cursors
//! with `max()` chains, so simulated time jumps at every transaction. The
//! sampler is therefore **lazy**: every machine observation point
//! (`load_line` / `store_line` / phase boundaries) checks whether the
//! presented cycle has crossed the next interval boundary and, if so,
//! emits one sample per elapsed interval — back-filling skipped intervals
//! from counter deltas. Under the event scheduler whole span windows can
//! pass between observations; the back-filled samples split the counter
//! deltas evenly across the crossed boundaries (remainder to the last),
//! which preserves every per-series *sum* exactly while interpolating the
//! per-interval *shape*. DESIGN.md §14 argues the legality.
//!
//! # Exact stall accounting by telescoping
//!
//! Per-interval stall-class deltas come from a cumulative attribution
//! function `C(t)` = (sum of completed-phase waterfalls) + (waterfall of
//! the in-progress window `[window_start, t]` from raw counter deltas).
//! Each sample records `C(boundary) − C(previous boundary)` and the final
//! sample closes against the report's own end-of-run waterfall, so the
//! series **telescopes**: per-class sums equal
//! [`crate::stats::SimReport::stalls`] exactly (audit-enforced via the
//! `metrics-accounting` invariant) even though each individual delta is an
//! estimate. Individual deltas are `i64` — a close-out can revise an
//! earlier over-estimate downward, making one delta negative.

use crate::pe::PeArray;
use crate::stats::StallBreakdown;
use hymm_mem::{Dmb, Dram, Lsq};

pub use hymm_mem::metrics::{
    MetricKind, MetricsConfig, MetricsData, MetricsRegistry, MetricsRing, MetricsSample,
    KIND_CLASSES, MAX_SAMPLED_CHANNELS, STALL_CLASSES,
};

// The sample layout and the waterfall must agree on the class count.
const _: [(); STALL_CLASSES] = [(); StallBreakdown::CLASSES.len()];

/// Raw cumulative stall-source counters, in [`StallBreakdown::attribute`]
/// argument order (idle is the waterfall remainder, so only 7 sources).
pub type RawStalls = [u64; 7];

/// Point-in-time component gauges plus the cumulative counters the sampler
/// differences between observations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GaugeSnapshot {
    /// Cumulative DMB hits (reads + writes).
    pub dmb_hits: u64,
    /// Cumulative DMB misses (reads + writes).
    pub dmb_misses: u64,
    /// Cumulative DMB line fills.
    pub dmb_fills: u64,
    /// Resident DMB lines right now.
    pub dmb_occupancy: u32,
    /// Resident DMB lines per matrix kind right now.
    pub dmb_kind_occupancy: [u32; KIND_CLASSES],
    /// Live MSHRs right now.
    pub mshr_occupancy: u32,
    /// Cumulative per-channel DRAM transfer cycles (first
    /// [`MAX_SAMPLED_CHANNELS`] channels).
    pub dram_channel_busy: [u64; MAX_SAMPLED_CHANNELS],
    /// DRAM channel count (capped at [`MAX_SAMPLED_CHANNELS`]).
    pub dram_channels: u8,
    /// Cumulative DRAM bytes moved (both directions).
    pub dram_bytes: u64,
    /// LSQ occupancy right now.
    pub lsq_depth: u32,
    /// Cumulative PE issue slots (MAC + merge).
    pub pe_issues: u64,
    /// Cumulative occupied-lane MAC operations.
    pub pe_lane_ops: u64,
    /// MAC lanes in the array.
    pub pe_lanes: u32,
    /// Cumulative prefetch lines issued.
    pub prefetch_issued: u64,
    /// Cumulative prefetched lines demand-touched.
    pub prefetch_useful: u64,
    /// Cumulative useful-but-late prefetches.
    pub prefetch_late: u64,
}

impl GaugeSnapshot {
    /// Reads every gauge/counter off the live components. Called only when
    /// at least one interval boundary has been crossed (the per-kind
    /// occupancy walk is not free), never on the metrics-off path.
    pub fn capture(dmb: &Dmb, dram: &Dram, lsq: &Lsq, pe: &PeArray) -> GaugeSnapshot {
        let hits = dmb.hit_stats();
        let pf = dmb.prefetch_stats();
        let mut kind_occupancy = [0u32; KIND_CLASSES];
        for (slot, kind) in kind_occupancy.iter_mut().zip(hymm_mem::MatrixKind::ALL) {
            *slot = dmb.resident_lines(kind) as u32;
        }
        let mut dram_channel_busy = [0u64; MAX_SAMPLED_CHANNELS];
        let per_channel = dram.channel_busy_cycles();
        for (slot, busy) in dram_channel_busy.iter_mut().zip(per_channel) {
            *slot = *busy;
        }
        GaugeSnapshot {
            dmb_hits: hits.read_hits + hits.write_hits,
            dmb_misses: hits.read_misses + hits.write_misses,
            dmb_fills: dmb.line_fills(),
            dmb_occupancy: dmb.occupancy() as u32,
            dmb_kind_occupancy: kind_occupancy,
            mshr_occupancy: dmb.mshr_occupancy() as u32,
            dram_channel_busy,
            dram_channels: per_channel.len().min(MAX_SAMPLED_CHANNELS) as u8,
            dram_bytes: dram.stats().total().total_bytes(),
            lsq_depth: lsq.occupancy() as u32,
            pe_issues: pe.mac_issues() + pe.merge_issues(),
            pe_lane_ops: pe.mac_lane_ops(),
            pe_lanes: pe.lanes() as u32,
            prefetch_issued: pf.issued,
            prefetch_useful: pf.useful,
            prefetch_late: pf.late,
        }
    }
}

/// Splits the counter delta `total` evenly across `count` back-filled
/// intervals, giving the remainder to the last so the shares sum exactly.
fn share(total: u64, k: u64, count: u64) -> u64 {
    let each = total / count;
    if k + 1 == count {
        total - each * (count - 1)
    } else {
        each
    }
}

/// The interval sampler owned by the machine when
/// [`crate::config::AcceleratorConfig::metrics`] is `Some`.
///
/// Observation-only by construction: it reads counters and gauges but
/// never feeds anything back into timing, so metrics-on runs are
/// cycle-identical to metrics-off runs (pinned by `tests/metrics.rs`).
#[derive(Debug, Clone)]
pub struct MetricsSampler {
    ring: MetricsRing,
    sample_every: u64,
    /// First boundary not yet emitted.
    next_boundary: u64,
    /// Timestamp of the last emitted sample (interval-length bookkeeping).
    last_ts: u64,
    /// Σ waterfalls of every completed phase — the exact part of `C(t)`.
    base: StallBreakdown,
    /// Start of the in-progress attribution window (end of last phase).
    window_start: u64,
    /// `C(last boundary)` — what the emitted samples sum to so far.
    emitted: [i64; STALL_CLASSES],
    /// Counter values at the previous observation (for interval deltas).
    prev: GaugeSnapshot,
}

impl MetricsSampler {
    /// Creates a sampler; `config` is already validated (non-zero interval
    /// and capacity).
    pub fn new(config: MetricsConfig) -> MetricsSampler {
        let sample_every = config.sample_every.max(1);
        MetricsSampler {
            ring: MetricsRing::new(config.capacity),
            sample_every,
            next_boundary: sample_every,
            last_ts: 0,
            base: StallBreakdown::default(),
            window_start: 0,
            emitted: [0; STALL_CLASSES],
            prev: GaugeSnapshot::default(),
        }
    }

    /// First interval boundary not yet emitted — the machine's observation
    /// hooks early-out on `now < next_boundary()` before touching any
    /// component gauge.
    pub fn next_boundary(&self) -> u64 {
        self.next_boundary
    }

    /// Cumulative per-class attribution at `cycle`: completed-phase
    /// waterfalls plus a waterfall of the in-progress window estimated
    /// from the raw counter deltas since the machine's phase snapshot.
    fn cumulative_at(&self, cycle: u64, raw: RawStalls, snap: RawStalls) -> [i64; STALL_CLASSES] {
        let window = cycle.saturating_sub(self.window_start);
        let d = |i: usize| raw[i].saturating_sub(snap[i]);
        let est = StallBreakdown::attribute(window, d(0), d(1), d(2), d(3), d(4), d(5), d(6));
        let mut out = [0i64; STALL_CLASSES];
        for ((o, b), e) in out.iter_mut().zip(self.base.as_array()).zip(est.as_array()) {
            *o = b as i64 + e as i64;
        }
        out
    }

    /// Emits one sample per interval boundary crossed by `now` (no-op if
    /// none). `raw`/`snap` are the machine's current stall counters and
    /// its counters at the last phase boundary; `g` is a fresh gauge
    /// capture. Back-filled intervals split the counter deltas since the
    /// previous observation evenly (remainder to the last boundary) and
    /// sample-and-hold the point-in-time gauges.
    pub fn observe(&mut self, now: u64, raw: RawStalls, snap: RawStalls, g: &GaugeSnapshot) {
        if now < self.next_boundary {
            return;
        }
        let first = self.next_boundary;
        let count = (now - first) / self.sample_every + 1;
        let d_hits = g.dmb_hits - self.prev.dmb_hits;
        let d_misses = g.dmb_misses - self.prev.dmb_misses;
        let d_fills = g.dmb_fills - self.prev.dmb_fills;
        let d_bytes = g.dram_bytes - self.prev.dram_bytes;
        let d_issues = g.pe_issues - self.prev.pe_issues;
        let d_lane_ops = g.pe_lane_ops - self.prev.pe_lane_ops;
        let d_pf_issued = g.prefetch_issued - self.prev.prefetch_issued;
        let d_pf_useful = g.prefetch_useful - self.prev.prefetch_useful;
        let d_pf_late = g.prefetch_late - self.prev.prefetch_late;
        let mut d_chan = [0u64; MAX_SAMPLED_CHANNELS];
        for (d, (a, b)) in d_chan
            .iter_mut()
            .zip(g.dram_channel_busy.iter().zip(self.prev.dram_channel_busy))
        {
            *d = a - b;
        }
        for k in 0..count {
            let boundary = first + k * self.sample_every;
            let cum = self.cumulative_at(boundary, raw, snap);
            let mut stalls = [0i64; STALL_CLASSES];
            for ((s, c), e) in stalls.iter_mut().zip(cum).zip(self.emitted) {
                *s = c - e;
            }
            self.emitted = cum;
            let len = (boundary - self.last_ts).max(1) as f32;
            let hits = share(d_hits, k, count);
            let misses = share(d_misses, k, count);
            let issues = share(d_issues, k, count);
            let lane_ops = share(d_lane_ops, k, count);
            let mut busy_frac = [0f32; MAX_SAMPLED_CHANNELS];
            for (f, d) in busy_frac.iter_mut().zip(d_chan) {
                *f = share(d, k, count) as f32 / len;
            }
            self.ring.push(MetricsSample {
                ts: boundary,
                stalls,
                dmb_hit_rate: if hits + misses == 0 {
                    1.0
                } else {
                    hits as f32 / (hits + misses) as f32
                },
                dmb_fills: share(d_fills, k, count),
                dmb_occupancy: g.dmb_occupancy,
                dmb_kind_occupancy: g.dmb_kind_occupancy,
                mshr_occupancy: g.mshr_occupancy,
                dram_busy_frac: busy_frac,
                dram_channels: g.dram_channels,
                dram_bytes_per_cycle: share(d_bytes, k, count) as f32 / len,
                lsq_depth: g.lsq_depth,
                pe_issues: issues,
                pe_lane_util: if issues == 0 || g.pe_lanes == 0 {
                    0.0
                } else {
                    (lane_ops as f32 / (issues * g.pe_lanes as u64) as f32).min(1.0)
                },
                prefetch_issued: share(d_pf_issued, k, count),
                prefetch_useful: share(d_pf_useful, k, count),
                prefetch_late: share(d_pf_late, k, count),
            });
            self.last_ts = boundary;
        }
        self.next_boundary = first + count * self.sample_every;
        self.prev = *g;
    }

    /// Folds a completed phase's exact waterfall into the cumulative base
    /// and moves the attribution window to the phase end. Called by the
    /// machine *after* [`Self::observe`] has flushed boundaries up to the
    /// phase end, so no emitted boundary ever precedes `window_start`.
    pub fn phase_recorded(&mut self, phase: &StallBreakdown, end: u64) {
        self.base.merge(phase);
        self.window_start = end;
    }

    /// Flushes remaining whole intervals, then emits one final sample at
    /// `cycles` whose stall deltas close the series **exactly** against
    /// the report's end-of-run waterfall (revising any estimate error into
    /// this last sample), and drains everything into a [`MetricsData`].
    pub fn close(
        mut self,
        cycles: u64,
        report_stalls: &StallBreakdown,
        raw: RawStalls,
        snap: RawStalls,
        g: &GaugeSnapshot,
    ) -> MetricsData {
        self.observe(cycles, raw, snap, g);
        let mut stalls = [0i64; STALL_CLASSES];
        for ((s, want), e) in stalls
            .iter_mut()
            .zip(report_stalls.as_array())
            .zip(self.emitted)
        {
            *s = want as i64 - e;
        }
        // When the run ends exactly on a boundary `observe` already emitted
        // a sample at `cycles`; fold the exact correction into it rather
        // than pushing a second sample with the same timestamp.
        if self.last_ts == cycles {
            if let Some(last) = self.ring.last_mut() {
                if last.ts == cycles {
                    for (l, d) in last.stalls.iter_mut().zip(stalls) {
                        *l += d;
                    }
                    let mut data = MetricsData::new(self.sample_every);
                    self.ring.drain_into(&mut data);
                    return data;
                }
            }
        }
        // Counter deltas since the previous observation are zero when
        // `observe` just fired; otherwise (run shorter than one interval)
        // they carry the whole run.
        let len = (cycles - self.last_ts).max(1) as f32;
        let hits = g.dmb_hits - self.prev.dmb_hits;
        let misses = g.dmb_misses - self.prev.dmb_misses;
        let issues = g.pe_issues - self.prev.pe_issues;
        let lane_ops = g.pe_lane_ops - self.prev.pe_lane_ops;
        let mut busy_frac = [0f32; MAX_SAMPLED_CHANNELS];
        for (f, (a, b)) in busy_frac
            .iter_mut()
            .zip(g.dram_channel_busy.iter().zip(self.prev.dram_channel_busy))
        {
            *f = (a - b) as f32 / len;
        }
        self.ring.push(MetricsSample {
            ts: cycles,
            stalls,
            dmb_hit_rate: if hits + misses == 0 {
                1.0
            } else {
                hits as f32 / (hits + misses) as f32
            },
            dmb_fills: g.dmb_fills - self.prev.dmb_fills,
            dmb_occupancy: g.dmb_occupancy,
            dmb_kind_occupancy: g.dmb_kind_occupancy,
            mshr_occupancy: g.mshr_occupancy,
            dram_busy_frac: busy_frac,
            dram_channels: g.dram_channels,
            dram_bytes_per_cycle: (g.dram_bytes - self.prev.dram_bytes) as f32 / len,
            lsq_depth: g.lsq_depth,
            pe_issues: issues,
            pe_lane_util: if issues == 0 || g.pe_lanes == 0 {
                0.0
            } else {
                (lane_ops as f32 / (issues * g.pe_lanes as u64) as f32).min(1.0)
            },
            prefetch_issued: g.prefetch_issued - self.prev.prefetch_issued,
            prefetch_useful: g.prefetch_useful - self.prev.prefetch_useful,
            prefetch_late: g.prefetch_late - self.prev.prefetch_late,
        });
        let mut data = MetricsData::new(self.sample_every);
        self.ring.drain_into(&mut data);
        data
    }
}

/// Fills `reg` with end-of-run aggregates from one labelled report — the
/// registry surface `metrics_export` renders and a future `hymm-serve`
/// scrape endpoint would serve live.
pub fn registry_from_report(
    reg: &mut MetricsRegistry,
    label: &str,
    report: &crate::stats::SimReport,
) {
    reg.register(
        "hymm_cycles_total",
        "Simulated cycles per dataflow",
        MetricKind::Counter,
    );
    reg.register(
        "hymm_stall_cycles_total",
        "Waterfall-attributed cycles per stall class",
        MetricKind::Counter,
    );
    reg.register(
        "hymm_dram_bytes_total",
        "DRAM bytes moved in both directions",
        MetricKind::Counter,
    );
    reg.register(
        "hymm_dmb_hit_rate",
        "End-of-run DMB hit rate (reads + writes)",
        MetricKind::Gauge,
    );
    reg.register(
        "hymm_alu_utilization",
        "End-of-run ALU utilisation",
        MetricKind::Gauge,
    );
    reg.register(
        "hymm_metrics_samples",
        "Interval samples recorded (0 when sampling is off)",
        MetricKind::Gauge,
    );
    reg.register(
        "hymm_metrics_dropped_samples_total",
        "Interval samples dropped at the ring capacity",
        MetricKind::Counter,
    );
    reg.register_histogram(
        "hymm_interval_dmb_hit_rate",
        "Distribution of per-interval DMB hit rates",
        &[0.25, 0.5, 0.75, 0.9, 0.99],
    );
    let run = format!("run=\"{label}\"");
    reg.set("hymm_cycles_total", &run, report.cycles as f64);
    for (class, cycles) in StallBreakdown::CLASSES.iter().zip(report.stalls.as_array()) {
        reg.set(
            "hymm_stall_cycles_total",
            &format!("run=\"{label}\",class=\"{class}\""),
            cycles as f64,
        );
    }
    reg.set(
        "hymm_dram_bytes_total",
        &run,
        report.dram.total().total_bytes() as f64,
    );
    reg.set("hymm_dmb_hit_rate", &run, report.dmb_hits.hit_rate());
    reg.set("hymm_alu_utilization", &run, report.alu_utilization());
    let (samples, dropped) = report
        .metrics
        .as_deref()
        .map_or((0, 0), |m| (m.samples.len() as u64, m.dropped));
    reg.set("hymm_metrics_samples", &run, samples as f64);
    reg.set("hymm_metrics_dropped_samples_total", &run, dropped as f64);
    if let Some(m) = report.metrics.as_deref() {
        for s in &m.samples {
            reg.observe("hymm_interval_dmb_hit_rate", &run, s.dmb_hit_rate as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(every: u64, cap: usize) -> MetricsConfig {
        MetricsConfig {
            sample_every: every,
            capacity: cap,
        }
    }

    /// Drives the sampler exactly like the machine does over two phases
    /// and checks the telescoping invariant: per-class sample sums equal
    /// the closing waterfall no matter how lazily boundaries were
    /// observed.
    #[test]
    fn telescoping_sums_close_exactly() {
        let mut s = MetricsSampler::new(cfg(100, 1024));
        let g = GaugeSnapshot::default();
        // Phase 1: cycles 0..250, raw mac=300 (exceeds window), miss=50.
        let raw1: RawStalls = [300, 0, 50, 0, 0, 0, 0];
        s.observe(250, raw1, [0; 7], &g);
        let p1 = StallBreakdown::attribute(250, 300, 0, 50, 0, 0, 0, 0);
        s.phase_recorded(&p1, 250);
        // Phase 2: cycles 250..430, observed lazily only at its end.
        let raw2: RawStalls = [350, 20, 90, 0, 40, 0, 0];
        s.observe(430, raw2, raw1, &g);
        let p2 = StallBreakdown::attribute(180, 50, 20, 40, 0, 40, 0, 0);
        s.phase_recorded(&p2, 430);
        // Report waterfall = Σ phases + idle tail to cycle 500.
        let mut total = p1;
        total.merge(&p2);
        total.idle += 500 - 430;
        let data = s.close(500, &total, raw2, raw2, &g);
        assert_eq!(data.dropped, 0);
        let want: Vec<i64> = total.as_array().iter().map(|&v| v as i64).collect();
        assert_eq!(data.stall_sums().to_vec(), want);
        // Boundaries 100..=400 plus the closing sample at 500.
        let ts: Vec<u64> = data.samples.iter().map(|s| s.ts).collect();
        assert_eq!(ts, [100, 200, 300, 400, 500]);
        assert_eq!(data.sample_every, 100);
    }

    #[test]
    fn backfill_splits_counter_deltas_exactly() {
        let mut s = MetricsSampler::new(cfg(10, 64));
        let mut g = GaugeSnapshot {
            dram_channels: 1,
            ..GaugeSnapshot::default()
        };
        g.dmb_fills = 7;
        g.dram_bytes = 640;
        // One observation at cycle 35 crosses boundaries 10, 20, 30: the 7
        // fills split 2/2/3 (remainder to the last).
        s.observe(35, [0; 7], [0; 7], &g);
        let total = StallBreakdown::attribute(40, 0, 0, 0, 0, 0, 0, 0);
        let data = s.close(40, &total, [0; 7], [0; 7], &g);
        let fills: Vec<u64> = data.samples.iter().map(|s| s.dmb_fills).collect();
        assert_eq!(fills, [2, 2, 3, 0]);
        assert_eq!(fills.iter().sum::<u64>(), 7);
    }

    #[test]
    fn run_shorter_than_one_interval_still_closes() {
        let s = MetricsSampler::new(cfg(1_000_000, 16));
        let total = StallBreakdown::attribute(42, 30, 0, 0, 0, 0, 0, 0);
        let g = GaugeSnapshot::default();
        let data = s.close(42, &total, [30, 0, 0, 0, 0, 0, 0], [0; 7], &g);
        assert_eq!(data.samples.len(), 1);
        assert_eq!(data.samples[0].ts, 42);
        let want: Vec<i64> = total.as_array().iter().map(|&v| v as i64).collect();
        assert_eq!(data.stall_sums().to_vec(), want);
    }

    #[test]
    fn negative_delta_revision_is_legal_but_sums_stay_exact() {
        // An over-estimating mid-phase observation gets revised by the
        // close: some per-class delta goes negative, the sums do not move.
        let mut s = MetricsSampler::new(cfg(50, 64));
        let g = GaugeSnapshot::default();
        // At cycle 60 the raw mac counter claims the whole window...
        s.observe(60, [60, 0, 0, 0, 0, 0, 0], [0; 7], &g);
        // ...but the phase's exact waterfall says only 10 were mac.
        let total = StallBreakdown::attribute(100, 10, 0, 0, 0, 0, 0, 0);
        let data = s.close(100, &total, [60, 0, 0, 0, 0, 0, 0], [0; 7], &g);
        assert!(
            data.samples.iter().any(|s| s.stalls.iter().any(|&d| d < 0)),
            "expected a negative revision delta"
        );
        let want: Vec<i64> = total.as_array().iter().map(|&v| v as i64).collect();
        assert_eq!(data.stall_sums().to_vec(), want);
    }

    #[test]
    fn ring_overflow_marks_series_inexact() {
        let mut s = MetricsSampler::new(cfg(10, 2));
        let g = GaugeSnapshot::default();
        s.observe(100, [0; 7], [0; 7], &g);
        let total = StallBreakdown::attribute(100, 0, 0, 0, 0, 0, 0, 0);
        let data = s.close(100, &total, [0; 7], [0; 7], &g);
        assert!(data.dropped > 0);
        assert_eq!(data.samples.len(), 2);
    }

    #[test]
    fn registry_from_report_renders_all_families() {
        let mut reg = MetricsRegistry::new();
        let mut report = crate::stats::SimReport::empty();
        report.cycles = 1000;
        report.stalls = StallBreakdown::attribute(1000, 600, 0, 300, 0, 0, 0, 0);
        registry_from_report(&mut reg, "OP", &report);
        let text = reg.render_prometheus();
        assert!(text.contains("hymm_cycles_total{run=\"OP\"} 1000"));
        assert!(text.contains("hymm_stall_cycles_total{run=\"OP\",class=\"mac\"} 600"));
        assert!(text.contains("hymm_stall_cycles_total{run=\"OP\",class=\"idle\"} 100"));
        assert!(text.contains("# TYPE hymm_interval_dmb_hit_rate histogram"));
    }
}
