//! Shared, lazily-built preprocessing state for repeated layer simulations.
//!
//! The bench suite simulates the same dataset under several dataflows and
//! ablation points, and every [`crate::sim::run_gcn_layer`] call used to
//! rebuild the adjacency-derived state from scratch: CSR/CSC conversions,
//! the degree-sort permutation, the sorted adjacency, and the hybrid region
//! tiling. All of that depends only on the (normalised) adjacency matrix —
//! never on `X`, `W` or the accelerator's timing knobs other than the tiling
//! key — so [`PreparedAdjacency`] computes each piece at most once and
//! shares it across runs. Sharing is purely host-side: the simulated timing
//! still charges every preprocessing-dependent access exactly as before,
//! so reports are bit-identical to the unshared path.
//!
//! [`CombinationMemo`] additionally shares **numeric** results between runs
//! whose numeric trajectory is bit-identical. The only pair in the suite is
//! HyMM and HyMM-noacc: both run `Dataflow::Hybrid` on the same prepared
//! adjacency with the same tiling, so every layer consumes bit-identical
//! inputs and performs the identical sequence of f32 operations — the merge
//! policy they differ in affects *when* partials move, never *what* is
//! accumulated or in which order. The memoised run still replays all timing
//! (via [`crate::engine::NumericSink::Timing`]); only the redundant numeric
//! axpys and output copies are skipped. See DESIGN.md ("Fast-path legality")
//! for the full argument.

use crate::engine::hybrid::merge_bottom_regions;
use hymm_sparse::permute::degree_sort_permutation;
use hymm_sparse::tiling::{TiledMatrix, TilingConfig};
use hymm_sparse::{Coo, Csc, Csr, Dense, Permutation, SparseError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One hybrid tiling of the sorted adjacency, cached together with the
/// merged regions-2/3 CSR its RWP pass streams.
#[derive(Debug)]
pub struct HybridTiling {
    /// The three-region tiling.
    pub tiled: TiledMatrix,
    /// [`merge_bottom_regions`] of `tiled`; `None` when the threshold
    /// covers every row.
    pub bottom: Option<Csr>,
}

/// Adjacency-derived preprocessing, computed lazily and shared by every
/// simulation over the same (normalised) adjacency matrix.
///
/// All lazily-built pieces are deterministic functions of the adjacency, so
/// concurrent initialisation from several suite threads is benign: whichever
/// thread wins stores a value bit-identical to every loser's.
#[derive(Debug)]
pub struct PreparedAdjacency {
    adj: Coo,
    a_csr: OnceLock<Csr>,
    a_csc: OnceLock<Csc>,
    /// Degree-sort permutation and the symmetrically permuted adjacency.
    sorted: OnceLock<(Permutation, Coo)>,
    /// Tilings keyed by `(threshold_fraction bits, dmb_capacity_rows)` —
    /// ablations vary both, and the capacity also depends on the layer dim.
    tilings: Mutex<HashMap<(u64, usize), Arc<HybridTiling>>>,
}

impl PreparedAdjacency {
    /// Wraps a square (already normalised) adjacency matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `adj` is not square.
    pub fn new(adj: Coo) -> Result<PreparedAdjacency, SparseError> {
        if adj.rows() != adj.cols() {
            return Err(SparseError::ShapeMismatch {
                left: (adj.rows(), adj.cols()),
                right: (adj.rows(), adj.rows()),
            });
        }
        Ok(PreparedAdjacency {
            adj,
            a_csr: OnceLock::new(),
            a_csc: OnceLock::new(),
            sorted: OnceLock::new(),
            tilings: Mutex::new(HashMap::new()),
        })
    }

    /// The adjacency matrix itself.
    pub fn adj(&self) -> &Coo {
        &self.adj
    }

    /// CSR form (RWP aggregation), built on first use.
    pub fn a_csr(&self) -> &Csr {
        self.a_csr.get_or_init(|| Csr::from_coo(&self.adj))
    }

    /// CSC form (OP/CWP aggregation), built on first use.
    pub fn a_csc(&self) -> &Csc {
        self.a_csc.get_or_init(|| Csc::from_coo(&self.adj))
    }

    /// Degree-sort permutation and sorted adjacency (hybrid preprocessing),
    /// built on first use.
    pub fn sorted(&self) -> &(Permutation, Coo) {
        self.sorted.get_or_init(|| {
            let perm = degree_sort_permutation(&self.adj).expect("adjacency validated square");
            let a_sorted = perm
                .apply_symmetric(&self.adj)
                .expect("adjacency validated square");
            (perm, a_sorted)
        })
    }

    /// The hybrid tiling (plus merged bottom CSR) for one
    /// `(threshold_fraction, dmb_capacity_rows)` point, built on first use
    /// and shared afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidConfig`] for an invalid tiling
    /// threshold or capacity.
    pub fn hybrid_tiling(
        &self,
        threshold_fraction: f64,
        dmb_capacity_rows: usize,
    ) -> Result<Arc<HybridTiling>, SparseError> {
        let key = (threshold_fraction.to_bits(), dmb_capacity_rows);
        if let Some(hit) = self
            .tilings
            .lock()
            .expect("tiling cache poisoned")
            .get(&key)
        {
            return Ok(Arc::clone(hit));
        }
        // Built outside the lock: a concurrent builder produces an
        // identical value, and `or_insert` keeps whichever landed first.
        let (_, a_sorted) = self.sorted();
        let tiled = TiledMatrix::new(
            a_sorted,
            &TilingConfig {
                threshold_fraction,
                dmb_capacity_rows: Some(dmb_capacity_rows),
            },
        )?;
        let bottom = (tiled.threshold() < tiled.n()).then(|| merge_bottom_regions(&tiled));
        let entry = Arc::new(HybridTiling { tiled, bottom });
        Ok(Arc::clone(
            self.tilings
                .lock()
                .expect("tiling cache poisoned")
                .entry(key)
                .or_insert(entry),
        ))
    }
}

/// Numeric results of one hybrid layer, memoised for replay by a run with a
/// bit-identical numeric trajectory.
#[derive(Debug)]
pub struct HybridLayerMemo {
    /// The degree-sorted sparse `X` in CSR form (the combination input).
    pub x_sorted_csr: Csr,
    /// The combination result `XW`, rows in sorted node order.
    pub xw: Dense,
    /// The layer output `ÂXW`, rows in original node order.
    pub output: Dense,
}

/// Per-layer memo of hybrid numeric results, shared between simulation runs
/// whose numeric trajectories are bit-identical (HyMM and HyMM-noacc: same
/// dataflow, adjacency, tiling, `X` and `W`; they differ only in the merge
/// policy, which moves partials around in time but never changes a single
/// f32 operation or its order).
///
/// Thread-safe and scheduling-independent: a concurrent miss on both sides
/// computes the same bits, so which run populates the memo is unobservable.
#[derive(Debug, Default)]
pub struct CombinationMemo {
    layers: Mutex<HashMap<usize, Arc<HybridLayerMemo>>>,
}

impl CombinationMemo {
    /// Creates an empty memo.
    pub fn new() -> CombinationMemo {
        CombinationMemo::default()
    }

    /// The memoised results of `layer`, if already computed.
    pub fn get(&self, layer: usize) -> Option<Arc<HybridLayerMemo>> {
        self.layers
            .lock()
            .expect("memo poisoned")
            .get(&layer)
            .cloned()
    }

    /// Stores `memo` for `layer` (first writer wins; any concurrent writer
    /// holds bit-identical values).
    pub fn insert(&self, layer: usize, memo: Arc<HybridLayerMemo>) {
        self.layers
            .lock()
            .expect("memo poisoned")
            .entry(layer)
            .or_insert(memo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Coo {
        let mut adj = Coo::new(n, n).unwrap();
        for i in 0..n {
            adj.push(i, (i + 1) % n, 1.0).unwrap();
            adj.push((i + 1) % n, i, 1.0).unwrap();
        }
        adj
    }

    #[test]
    fn rejects_non_square() {
        assert!(PreparedAdjacency::new(Coo::new(3, 4).unwrap()).is_err());
    }

    #[test]
    fn lazy_pieces_match_direct_construction() {
        let adj = ring(12);
        let prep = PreparedAdjacency::new(adj.clone()).unwrap();
        assert_eq!(prep.a_csr().nnz(), adj.nnz());
        assert_eq!(prep.a_csc().nnz(), adj.nnz());
        let (perm, a_sorted) = prep.sorted();
        let want_perm = degree_sort_permutation(&adj).unwrap();
        assert_eq!(
            want_perm.apply_symmetric(&adj).unwrap().nnz(),
            a_sorted.nnz()
        );
        let _ = perm;
    }

    #[test]
    fn tiling_cache_returns_shared_instance() {
        let prep = PreparedAdjacency::new(ring(20)).unwrap();
        let a = prep.hybrid_tiling(0.2, 8).unwrap();
        let b = prep.hybrid_tiling(0.2, 8).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must share one tiling");
        let c = prep.hybrid_tiling(0.5, 8).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different keys are distinct");
        // bottom CSR is present exactly when the threshold leaves rows over
        assert_eq!(a.bottom.is_some(), a.tiled.threshold() < a.tiled.n());
    }

    #[test]
    fn tiling_rejects_invalid_threshold() {
        let prep = PreparedAdjacency::new(ring(8)).unwrap();
        assert!(prep.hybrid_tiling(f64::NAN, 4).is_err());
    }

    #[test]
    fn memo_first_writer_wins() {
        let memo = CombinationMemo::new();
        assert!(memo.get(0).is_none());
        let a = Arc::new(HybridLayerMemo {
            x_sorted_csr: Csr::from_coo(&ring(4)),
            xw: Dense::zeros(4, 2),
            output: Dense::zeros(4, 2),
        });
        memo.insert(0, Arc::clone(&a));
        let b = Arc::new(HybridLayerMemo {
            x_sorted_csr: Csr::from_coo(&ring(4)),
            xw: Dense::zeros(4, 2),
            output: Dense::zeros(4, 2),
        });
        memo.insert(0, b);
        assert!(Arc::ptr_eq(&memo.get(0).unwrap(), &a));
        assert!(memo.get(1).is_none());
    }
}
