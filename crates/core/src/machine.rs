//! The assembled accelerator: memory subsystem + PE array + run cursor.
//!
//! A [`Machine`] owns one instance of every hardware component for the
//! duration of a simulated GCN layer. Engines (see [`crate::engine`]) borrow
//! it mutably, advance time through it, and leave their counters behind; the
//! front end ([`crate::sim`]) snapshots the counters into a
//! [`crate::stats::SimReport`] at the end.

use crate::config::AcceleratorConfig;
use crate::metrics::{GaugeSnapshot, MetricsSampler};
use crate::pe::PeArray;
use crate::stats::{PartialStats, PhaseReport, SimReport, StallBreakdown};
use hymm_mem::dram::AccessPattern;
use hymm_mem::smq::SmqStream;
use hymm_mem::trace::{TraceData, TraceEvent, TraceKind, TraceRing, Track};
use hymm_mem::{Dmb, Dram, EventStats, LineAddr, Lsq, MatrixKind, PrefetchPolicy, SpanRange};
use std::collections::VecDeque;

/// Raw component-counter totals sampled at a phase boundary. Deltas between
/// two snapshots feed [`StallBreakdown::attribute`].
#[derive(Debug, Default, Clone, Copy)]
struct StallCounters {
    mac: u64,
    merge: u64,
    dmb_miss: u64,
    prefetch_late: u64,
    dram_busy: u64,
    lsq_stall: u64,
    smq_wait: u64,
}

impl StallCounters {
    /// The counters in [`StallBreakdown::attribute`] argument order — the
    /// form the metrics sampler consumes.
    fn raw(&self) -> crate::metrics::RawStalls {
        [
            self.mac,
            self.merge,
            self.dmb_miss,
            self.prefetch_late,
            self.dram_busy,
            self.lsq_stall,
            self.smq_wait,
        ]
    }
}

/// Bound on the `smq-stream` hint queue: engines may push hints faster than
/// demand loads drain them; beyond this depth the oldest intent is stale
/// anyway, so new hints are dropped.
const PREFETCH_HINT_CAP: usize = 64;

/// One assembled accelerator instance.
#[derive(Debug)]
pub struct Machine {
    /// Off-chip memory channel.
    pub dram: Dram,
    /// Unified dense matrix buffer.
    pub dmb: Dmb,
    /// Load/store queue.
    pub lsq: Lsq,
    /// PE array.
    pub pe: PeArray,
    /// The configuration the machine was built from.
    pub config: AcceleratorConfig,
    /// Partial-output footprint counters (engines update these).
    pub partials: PartialStats,
    /// Completed phases.
    pub phases: Vec<PhaseReport>,
    /// DMB hit counters at the end of the previous phase.
    hit_snapshot: hymm_mem::stats::HitStats,
    /// DRAM bytes at the end of the previous phase.
    dram_snapshot: u64,
    /// Stall-source counter totals at the end of the previous phase.
    stall_snapshot: StallCounters,
    /// SMQ starvation cycles folded in from finished streams (engines create
    /// one stream per pass and hand it to [`Machine::absorb_smq`]).
    smq_wait_cycles: u64,
    /// Machine-wide id of the next absorbed SMQ stream.
    smq_streams: u16,
    /// Trace events from absorbed SMQ streams, renumbered per stream.
    smq_trace: TraceData,
    /// Dense-line prefetch hints queued by the engines for the `smq-stream`
    /// policy (empty and untouched under any other policy).
    prefetch_hints: VecDeque<LineAddr>,
    /// Ring for machine-level (phase) events; `None` when tracing is off.
    trace: Option<Box<TraceRing>>,
    /// Interval metrics sampler; `None` when sampling is off. Like the
    /// trace ring, the disabled path is one pointer-null test per hook.
    metrics: Option<Box<MetricsSampler>>,
    /// Event-core accounting accumulated across phase spans (stays zero on
    /// the stepped core). Host-side observability only: deliberately kept
    /// out of [`SimReport`] so the stepped/event bit-identity covers every
    /// report field.
    events: EventStats,
}

impl Machine {
    /// Builds an idle machine from a configuration.
    pub fn new(config: &AcceleratorConfig) -> Machine {
        Machine {
            dram: Dram::new(&config.mem),
            dmb: Dmb::new(&config.mem),
            lsq: Lsq::new(&config.mem),
            pe: PeArray::from_config(config),
            config: config.clone(),
            partials: PartialStats::default(),
            phases: Vec::new(),
            hit_snapshot: hymm_mem::stats::HitStats::default(),
            dram_snapshot: 0,
            stall_snapshot: StallCounters::default(),
            smq_wait_cycles: 0,
            smq_streams: 0,
            smq_trace: TraceData::new(),
            prefetch_hints: VecDeque::new(),
            trace: config.mem.trace_ring(),
            metrics: config.metrics.map(|m| Box::new(MetricsSampler::new(m))),
            events: EventStats::default(),
        }
    }

    /// Interval-sampling hook, called from every timed access path with
    /// the presented cycle. The fast path (no boundary crossed, or
    /// sampling off) is a null test plus one compare; only a crossed
    /// boundary pays for a full gauge capture. Observation-only: nothing
    /// here feeds back into timing.
    fn metrics_observe(&mut self, now: u64) {
        let Some(sampler) = self.metrics.as_deref() else {
            return;
        };
        if now < sampler.next_boundary() {
            return;
        }
        let raw = self.stall_counters().raw();
        let snap = self.stall_snapshot.raw();
        let g = GaugeSnapshot::capture(&self.dmb, &self.dram, &self.lsq, &self.pe);
        self.metrics
            .as_deref_mut()
            .expect("checked above")
            .observe(now, raw, snap, &g);
    }

    /// Opens an event-core phase span over the engine's declared operand
    /// line ranges. Returns `false` — leaving every component on the
    /// generic (stepped) path — when the configuration forbids skipping:
    /// stepped scheduler selected, tracing on (all timestamps observable),
    /// a prefetcher active (speculative fills touch undeclared lines), or
    /// the DMB's own legality checks fail. Callers do not need to branch on
    /// the result; the access paths are identical either way.
    pub fn begin_phase_span(&mut self, ranges: &[SpanRange]) -> bool {
        if self.config.scheduler != crate::config::SchedulerKind::Event
            || self.config.mem.prefetch != PrefetchPolicy::Off
        {
            return false;
        }
        if !self.dmb.begin_span(ranges) {
            return false;
        }
        if self.config.lsq_forwarding {
            self.lsq.begin_span();
        }
        true
    }

    /// Closes the phase span (if one is still open — the DMB may already
    /// have bailed out to the generic path), materialising exact component
    /// state and banking the event-accounting counters. Engines call this
    /// before [`Machine::record_phase`] so audits always see real state.
    pub fn end_phase_span(&mut self) {
        self.dmb.end_span();
        self.events.merge(&self.dmb.take_events());
        self.lsq.end_span();
    }

    /// Event-core accounting accumulated so far (all zeros on the stepped
    /// core).
    pub fn event_stats(&self) -> EventStats {
        self.events
    }

    /// Wake-time contract of the event-driven core: the earliest future
    /// cycle at which any component changes state on its own (MSHR fills,
    /// DRAM channel frees, LSQ retirements, PE drain). `u64::MAX` when
    /// everything is quiescent.
    pub fn next_event_cycle(&self) -> u64 {
        self.dmb
            .next_event_cycle()
            .min(self.lsq.next_event_cycle())
            .min(match self.dram.next_event_cycle() {
                0 => u64::MAX,
                c => c,
            })
            .min(match self.pe.next_event_cycle() {
                0 => u64::MAX,
                c => c,
            })
    }

    /// Batched time advance to `cycle`: each component retires everything
    /// that completes by then (currently MSHR fills; the other components
    /// advance lazily on access).
    pub fn advance_to(&mut self, cycle: u64) {
        self.dmb.advance_to(cycle);
    }

    /// Current totals of every stall-source counter.
    fn stall_counters(&self) -> StallCounters {
        StallCounters {
            mac: self.pe.mac_cycles(),
            merge: self.pe.merge_cycles(),
            dmb_miss: self.dmb.miss_latency_cycles() + self.dmb.mshr_stall_cycles(),
            prefetch_late: self.dmb.prefetch_stats().late_cycles,
            dram_busy: self.dram.busy_cycles(),
            lsq_stall: self.lsq.stats().capacity_stall_cycles,
            smq_wait: self.smq_wait_cycles,
        }
    }

    /// Folds a finished SMQ stream's starvation cycles and trace events into
    /// the machine. Engines create one stream per pass (one per RWP job, one
    /// per OP/CWP tile walk) and must absorb it before recording the phase so
    /// the starvation cycles land in the right [`StallBreakdown`]. Each
    /// stream stamps its events `Track::Smq(0)`; the machine renumbers them
    /// with a machine-wide stream id here.
    pub fn absorb_smq(&mut self, smq: &mut SmqStream) {
        self.smq_wait_cycles += smq.wait_cycles();
        let id = self.smq_streams;
        self.smq_streams = self.smq_streams.wrapping_add(1);
        if self.config.mem.trace {
            let start = self.smq_trace.events.len();
            smq.drain_trace(&mut self.smq_trace);
            for e in &mut self.smq_trace.events[start..] {
                e.track = Track::Smq(id);
            }
        }
    }

    /// Whether the active prefetch policy consumes engine hints — engines
    /// gate their (sparse-structure) lookahead walks on this so every other
    /// policy pays nothing.
    pub fn wants_prefetch_hints(&self) -> bool {
        self.config.mem.prefetch == PrefetchPolicy::SmqStream
    }

    /// Queues one dense-line prefetch hint for the `smq-stream` policy.
    /// Engines derive hints from sparse index entries the SMQ has already
    /// fetched (upcoming rows/columns of the dense operand); the machine
    /// drains them on subsequent demand loads. Hints beyond the queue bound
    /// are dropped — a deep backlog is stale intent, not useful work.
    pub fn push_prefetch_hint(&mut self, addr: LineAddr) {
        if self.wants_prefetch_hints() && self.prefetch_hints.len() < PREFETCH_HINT_CAP {
            self.prefetch_hints.push_back(addr);
        }
    }

    /// Runs the prefetcher after one demand load: `next-line` triggers on
    /// demand misses, `smq-stream` drains queued engine hints. Candidates
    /// that a queued store would forward to are skipped (the data is about
    /// to be produced on chip). `Off` falls through immediately.
    fn prefetch_after_load(&mut self, now: u64, addr: LineAddr, hit: bool, pattern: AccessPattern) {
        match self.config.mem.prefetch {
            PrefetchPolicy::Off => {}
            PrefetchPolicy::NextLine => {
                if hit {
                    return;
                }
                let degree = self.config.mem.prefetch_degree.max(1) as u64;
                for step in 1..=degree {
                    let cand = LineAddr::new(addr.kind, addr.index + step);
                    if self.config.lsq_forwarding && self.lsq.has_queued_store(cand) {
                        continue;
                    }
                    let _ = self.dmb.prefetch(now, cand, &mut self.dram, pattern);
                }
            }
            PrefetchPolicy::SmqStream => {
                for _ in 0..self.config.mem.prefetch_degree.max(1) {
                    let Some(cand) = self.prefetch_hints.pop_front() else {
                        break;
                    };
                    if self.config.lsq_forwarding && self.lsq.has_queued_store(cand) {
                        continue;
                    }
                    let _ = self
                        .dmb
                        .prefetch(now, cand, &mut self.dram, AccessPattern::Sequential);
                }
            }
        }
    }

    /// Loads one line through LSQ → DMB → DRAM; returns the cycle at which
    /// the data is available. Honours store-to-load forwarding when the
    /// configuration enables it. `pattern` describes how a resulting DRAM
    /// fill lands on the channel.
    pub fn load_line(&mut self, now: u64, addr: hymm_mem::LineAddr, pattern: AccessPattern) -> u64 {
        use hymm_mem::lsq::LoadPath;
        self.metrics_observe(now);
        if self.config.lsq_forwarding {
            match self.lsq.load(now, addr) {
                LoadPath::Forwarded { ready } => ready,
                LoadPath::Issue { at } => {
                    let outcome = self.dmb.read(at, addr, &mut self.dram, pattern);
                    self.lsq.complete_load(addr, outcome.ready);
                    self.prefetch_after_load(at, addr, outcome.hit, pattern);
                    outcome.ready
                }
            }
        } else {
            let outcome = self.dmb.read(now, addr, &mut self.dram, pattern);
            self.prefetch_after_load(now, addr, outcome.hit, pattern);
            outcome.ready
        }
    }

    /// [`Machine::load_line`] that also reports whether the line was
    /// resident in the DMB when the request was presented (before any fill
    /// the load itself causes) — what a `dmb.contains` probe immediately
    /// before the load would have returned, without the extra lookup. A
    /// forwarded load never touches the DMB, so the read-only probe is
    /// still exact there.
    pub fn load_line_resident(
        &mut self,
        now: u64,
        addr: hymm_mem::LineAddr,
        pattern: AccessPattern,
    ) -> (u64, bool) {
        use hymm_mem::lsq::LoadPath;
        self.metrics_observe(now);
        if self.config.lsq_forwarding {
            match self.lsq.load(now, addr) {
                LoadPath::Forwarded { ready } => (ready, self.dmb.contains(addr)),
                LoadPath::Issue { at } => {
                    let outcome = self.dmb.read(at, addr, &mut self.dram, pattern);
                    self.lsq.complete_load(addr, outcome.ready);
                    self.prefetch_after_load(at, addr, outcome.hit, pattern);
                    (outcome.ready, outcome.hit)
                }
            }
        } else {
            let outcome = self.dmb.read(now, addr, &mut self.dram, pattern);
            self.prefetch_after_load(now, addr, outcome.hit, pattern);
            (outcome.ready, outcome.hit)
        }
    }

    /// Stores one line through LSQ → DMB; `allocate` selects write-allocate
    /// versus streaming write-through. Returns the cycle at which the store
    /// is accepted.
    pub fn store_line(
        &mut self,
        now: u64,
        addr: hymm_mem::LineAddr,
        allocate: bool,
        pattern: AccessPattern,
    ) -> u64 {
        self.metrics_observe(now);
        let drained = if self.config.lsq_forwarding {
            self.lsq.store(now, addr, now)
        } else {
            now
        };
        self.dmb
            .write(drained, addr, &mut self.dram, allocate, pattern)
            .ready
    }

    /// Records a finished phase, attributing the DMB hit and DRAM traffic
    /// counters accumulated since the previous phase boundary to it.
    pub fn record_phase(&mut self, name: &'static str, start: u64, end: u64, nnz: u64) {
        // Flush interval boundaries up to the phase end against the *old*
        // attribution window before the phase is folded in below.
        self.metrics_observe(end);
        let hits_now = self.dmb.hit_stats();
        let dram_now = self.dram.stats().total().total_bytes();
        let delta = hymm_mem::stats::HitStats {
            read_hits: hits_now.read_hits - self.hit_snapshot.read_hits,
            read_misses: hits_now.read_misses - self.hit_snapshot.read_misses,
            write_hits: hits_now.write_hits - self.hit_snapshot.write_hits,
            write_misses: hits_now.write_misses - self.hit_snapshot.write_misses,
        };
        let counters = self.stall_counters();
        let prev = self.stall_snapshot;
        let stalls = StallBreakdown::attribute(
            end.saturating_sub(start),
            counters.mac - prev.mac,
            counters.merge - prev.merge,
            counters.dmb_miss - prev.dmb_miss,
            counters.prefetch_late - prev.prefetch_late,
            counters.dram_busy - prev.dram_busy,
            counters.lsq_stall - prev.lsq_stall,
            counters.smq_wait - prev.smq_wait,
        );
        self.phases.push(PhaseReport {
            name,
            start_cycle: start,
            end_cycle: end,
            nnz,
            dmb_hits: delta,
            dram_bytes: dram_now - self.dram_snapshot,
            stalls,
        });
        self.hit_snapshot = hits_now;
        self.dram_snapshot = dram_now;
        self.stall_snapshot = counters;
        if let Some(sampler) = self.metrics.as_deref_mut() {
            sampler.phase_recorded(&stalls, end);
        }
        if let Some(t) = self.trace.as_deref_mut() {
            t.push(TraceEvent {
                track: Track::Phase,
                kind: TraceKind::PhaseBegin { name },
                ts: start,
                dur: 0,
            });
            t.push(TraceEvent {
                track: Track::Phase,
                kind: TraceKind::PhaseEnd { name },
                ts: end,
                dur: 0,
            });
        }
        if self.config.audit {
            crate::audit::enforce(name, &crate::audit::check_machine(self));
        }
    }

    /// Flushes dirty output lines and snapshots every counter into a
    /// report; `total_cycles` is the caller's end-of-execution cycle.
    pub fn into_report(mut self, total_cycles: u64) -> SimReport {
        let audit = self.config.audit;
        if audit {
            crate::audit::enforce("into_report", &crate::audit::check_machine(&self));
        }
        // Final writeback of any dirty output still resident.
        let flushed = self
            .dmb
            .flush_kind(total_cycles, MatrixKind::Output, &mut self.dram);
        let cycles = flushed.max(total_cycles);
        // Report-level attribution: the per-phase breakdowns plus whatever
        // falls outside any phase window (drain tail, gaps) as idle.
        let mut stalls = StallBreakdown::default();
        for p in &self.phases {
            stalls.merge(&p.stalls);
        }
        stalls.idle += cycles.saturating_sub(stalls.total());
        // Close the metrics series exactly against the report waterfall
        // (before `into_stats` consumes the DRAM model below).
        let metrics = self.metrics.take().map(|sampler| {
            let raw = self.stall_counters().raw();
            let snap = self.stall_snapshot.raw();
            let g = GaugeSnapshot::capture(&self.dmb, &self.dram, &self.lsq, &self.pe);
            Box::new(sampler.close(cycles, &stalls, raw, snap, &g))
        });
        // Collect every component's event ring into one flat trace. The DRAM
        // ring must drain before `into_stats` consumes the model below.
        let trace = if self.config.mem.trace {
            let mut data = TraceData::new();
            if let Some(t) = self.trace.as_deref_mut() {
                t.drain_into(&mut data);
            }
            data.events.append(&mut self.smq_trace.events);
            data.dropped += self.smq_trace.dropped;
            self.dmb.drain_trace(&mut data);
            self.lsq.drain_trace(&mut data);
            self.dram.drain_trace(&mut data);
            Some(Box::new(data))
        } else {
            None
        };
        let report = SimReport {
            cycles,
            mac_cycles: self.pe.mac_cycles(),
            merge_cycles: self.pe.merge_cycles(),
            mac_ops: self.pe.mac_ops(),
            merge_ops: self.pe.merge_ops(),
            mac_lane_ops: self.pe.mac_lane_ops(),
            dram: self.dram.into_stats(),
            dmb_hits: self.dmb.hit_stats(),
            dmb_evictions: self.dmb.evictions(),
            dmb_dirty_evictions: self.dmb.dirty_evictions(),
            accumulator_merges: self.dmb.accumulator_merges(),
            lsq: self.lsq.stats(),
            prefetch: self.dmb.prefetch_stats(),
            partials: self.partials,
            stalls,
            phases: self.phases,
            trace,
            metrics,
        };
        if audit {
            crate::audit::enforce("report", &crate::audit::check_report(&report));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymm_mem::LineAddr;

    fn machine() -> Machine {
        Machine::new(&AcceleratorConfig::default())
    }

    #[test]
    fn load_line_misses_then_hits() {
        let mut m = machine();
        let addr = LineAddr::new(MatrixKind::Combination, 7);
        let first = m.load_line(0, addr, AccessPattern::Random);
        assert!(first > 100); // DRAM round trip
        let second = m.load_line(first, addr, AccessPattern::Random);
        assert!(second < first + 10); // buffer hit
    }

    #[test]
    fn store_then_load_forwards() {
        let mut m = machine();
        let addr = LineAddr::new(MatrixKind::Combination, 3);
        m.store_line(0, addr, true, AccessPattern::Sequential);
        let ready = m.load_line(1, addr, AccessPattern::Random);
        assert!(ready <= 4, "forwarded load should be fast, got {ready}");
        assert_eq!(m.lsq.stats().forwards, 1);
    }

    #[test]
    fn forwarding_can_be_disabled() {
        let cfg = AcceleratorConfig {
            lsq_forwarding: false,
            ..AcceleratorConfig::default()
        };
        let mut m = Machine::new(&cfg);
        let addr = LineAddr::new(MatrixKind::Combination, 3);
        m.store_line(0, addr, true, AccessPattern::Sequential);
        let _ = m.load_line(1, addr, AccessPattern::Random);
        assert_eq!(m.lsq.stats().forwards, 0);
    }

    #[test]
    fn report_flushes_outputs() {
        let mut m = machine();
        let addr = LineAddr::new(MatrixKind::Output, 0);
        m.store_line(0, addr, true, AccessPattern::Sequential);
        let report = m.into_report(100);
        assert_eq!(report.dram.kind(MatrixKind::Output).writes, 1);
        assert!(report.cycles >= 100);
    }

    #[test]
    fn phases_are_recorded() {
        let mut m = machine();
        m.record_phase("combination", 0, 10, 4);
        let report = m.into_report(10);
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].cycles(), 10);
    }

    #[test]
    fn phase_stalls_sum_to_phase_cycles() {
        let mut m = machine();
        let addr = LineAddr::new(MatrixKind::Combination, 1);
        let end = m.load_line(0, addr, AccessPattern::Random);
        m.record_phase("p", 0, end, 1);
        let p = &m.phases[0];
        assert_eq!(p.stalls.total(), p.cycles());
        assert!(p.stalls.dmb_miss > 0, "a cold miss must be attributed");
    }

    #[test]
    fn report_stalls_cover_cycles_outside_phases_as_idle() {
        let mut m = machine();
        m.record_phase("p", 0, 10, 1);
        let report = m.into_report(50);
        assert_eq!(report.stalls.total(), report.cycles);
        assert!(report.stalls.idle >= 40, "post-phase tail must be idle");
    }

    #[test]
    fn trace_collects_phase_and_component_events() {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.trace = true;
        let mut m = Machine::new(&cfg);
        let addr = LineAddr::new(MatrixKind::Combination, 2);
        let end = m.load_line(0, addr, AccessPattern::Random);
        m.record_phase("p", 0, end, 1);
        let report = m.into_report(end);
        let trace = report.trace.expect("tracing enabled");
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::PhaseBegin { name: "p" })));
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::PhaseEnd { name: "p" })));
        assert!(trace.events.iter().any(|e| e.track == Track::DmbRead));
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn tracing_off_yields_no_trace() {
        let mut m = machine();
        let addr = LineAddr::new(MatrixKind::Combination, 2);
        let end = m.load_line(0, addr, AccessPattern::Random);
        m.record_phase("p", 0, end, 1);
        assert!(m.into_report(end).trace.is_none());
    }

    #[test]
    fn next_line_prefetch_serves_sequential_demand() {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.prefetch = PrefetchPolicy::NextLine;
        cfg.mem.prefetch_degree = 2;
        let mut m = Machine::new(&cfg);
        let mut now = 0;
        for i in 0..8u64 {
            let addr = LineAddr::new(MatrixKind::Combination, i);
            now = m.load_line(now, addr, AccessPattern::Sequential).max(now) + 50;
        }
        let s = m.dmb.prefetch_stats();
        assert!(s.issued > 0, "sequential misses must trigger prefetches");
        assert!(s.useful > 0, "later demand must claim prefetched lines");
        let report = m.into_report(now);
        assert_eq!(report.prefetch, s);
    }

    #[test]
    fn late_prefetch_lands_in_its_own_stall_class() {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.prefetch = PrefetchPolicy::NextLine;
        cfg.mem.prefetch_degree = 1;
        cfg.audit = true;
        let mut m = Machine::new(&cfg);
        // Miss on line 0 prefetches line 1; demanding line 1 while the
        // speculative fill is still in flight waits on it.
        let first = m.load_line(
            0,
            LineAddr::new(MatrixKind::Combination, 0),
            AccessPattern::Sequential,
        );
        let second = m.load_line(
            5,
            LineAddr::new(MatrixKind::Combination, 1),
            AccessPattern::Sequential,
        );
        let second = second.max(first);
        m.record_phase("p", 0, second, 2);
        let p = &m.phases[0];
        assert_eq!(p.stalls.total(), p.cycles(), "waterfall still sums exactly");
        let s = m.dmb.prefetch_stats();
        assert_eq!((s.issued >= 1, s.useful, s.late), (true, 1, 1));
    }

    #[test]
    fn smq_stream_drains_engine_hints() {
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.prefetch = PrefetchPolicy::SmqStream;
        cfg.mem.prefetch_degree = 2;
        let mut m = Machine::new(&cfg);
        assert!(m.wants_prefetch_hints());
        for i in 10..14u64 {
            m.push_prefetch_hint(LineAddr::new(MatrixKind::Combination, i));
        }
        // Each demand load drains up to `degree` hints into prefetches.
        let mut now = 0;
        for i in 0..2u64 {
            now = m
                .load_line(
                    now,
                    LineAddr::new(MatrixKind::Combination, i),
                    AccessPattern::Sequential,
                )
                .max(now)
                + 50;
        }
        let s = m.dmb.prefetch_stats();
        assert!(
            s.issued + s.dropped() >= 2,
            "hints must reach the prefetcher: {s:?}"
        );
        // The hinted lines are now resident (or in flight): demanding one is
        // a hit that claims it.
        let _ = m.load_line(
            now + 500,
            LineAddr::new(MatrixKind::Combination, 10),
            AccessPattern::Sequential,
        );
        assert!(m.dmb.prefetch_stats().useful >= 1);
    }

    #[test]
    fn hints_are_ignored_when_policy_is_off() {
        let mut m = machine();
        assert!(!m.wants_prefetch_hints());
        m.push_prefetch_hint(LineAddr::new(MatrixKind::Combination, 1));
        let end = m.load_line(
            0,
            LineAddr::new(MatrixKind::Combination, 0),
            AccessPattern::Sequential,
        );
        let report = m.into_report(end);
        assert_eq!(report.prefetch, hymm_mem::PrefetchStats::default());
    }

    #[test]
    fn absorb_smq_renumbers_streams_and_sums_waits() {
        use hymm_mem::smq::{SmqStream, SparseFormat};
        let mut cfg = AcceleratorConfig::default();
        cfg.mem.trace = true;
        let mut m = Machine::new(&cfg);
        for _ in 0..2 {
            let mut smq = SmqStream::new(&cfg.mem, MatrixKind::SparseA, SparseFormat::Csr, 3, 2);
            let mut now = 0;
            while let Some(e) = smq.next_entry(now, &mut m.dram) {
                now = now.max(e) + 1;
            }
            m.absorb_smq(&mut smq);
        }
        let report = m.into_report(100);
        let trace = report.trace.expect("tracing enabled");
        for id in [0u16, 1] {
            assert!(
                trace.events.iter().any(|e| e.track == Track::Smq(id)),
                "stream {id} missing from trace"
            );
        }
        assert!(!trace.events.iter().any(|e| e.track == Track::Smq(2)));
    }
}
