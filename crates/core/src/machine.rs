//! The assembled accelerator: memory subsystem + PE array + run cursor.
//!
//! A [`Machine`] owns one instance of every hardware component for the
//! duration of a simulated GCN layer. Engines (see [`crate::engine`]) borrow
//! it mutably, advance time through it, and leave their counters behind; the
//! front end ([`crate::sim`]) snapshots the counters into a
//! [`crate::stats::SimReport`] at the end.

use crate::config::AcceleratorConfig;
use crate::pe::PeArray;
use crate::stats::{PartialStats, PhaseReport, SimReport};
use hymm_mem::dram::AccessPattern;
use hymm_mem::{Dmb, Dram, Lsq, MatrixKind};

/// One assembled accelerator instance.
#[derive(Debug)]
pub struct Machine {
    /// Off-chip memory channel.
    pub dram: Dram,
    /// Unified dense matrix buffer.
    pub dmb: Dmb,
    /// Load/store queue.
    pub lsq: Lsq,
    /// PE array.
    pub pe: PeArray,
    /// The configuration the machine was built from.
    pub config: AcceleratorConfig,
    /// Partial-output footprint counters (engines update these).
    pub partials: PartialStats,
    /// Completed phases.
    pub phases: Vec<PhaseReport>,
    /// DMB hit counters at the end of the previous phase.
    hit_snapshot: hymm_mem::stats::HitStats,
    /// DRAM bytes at the end of the previous phase.
    dram_snapshot: u64,
}

impl Machine {
    /// Builds an idle machine from a configuration.
    pub fn new(config: &AcceleratorConfig) -> Machine {
        Machine {
            dram: Dram::new(&config.mem),
            dmb: Dmb::new(&config.mem),
            lsq: Lsq::new(&config.mem),
            pe: PeArray::new(config.num_pes),
            config: config.clone(),
            partials: PartialStats::default(),
            phases: Vec::new(),
            hit_snapshot: hymm_mem::stats::HitStats::default(),
            dram_snapshot: 0,
        }
    }

    /// Loads one line through LSQ → DMB → DRAM; returns the cycle at which
    /// the data is available. Honours store-to-load forwarding when the
    /// configuration enables it. `pattern` describes how a resulting DRAM
    /// fill lands on the channel.
    pub fn load_line(&mut self, now: u64, addr: hymm_mem::LineAddr, pattern: AccessPattern) -> u64 {
        use hymm_mem::lsq::LoadPath;
        if self.config.lsq_forwarding {
            match self.lsq.load(now, addr) {
                LoadPath::Forwarded { ready } => ready,
                LoadPath::Issue { at } => {
                    let outcome = self.dmb.read(at, addr, &mut self.dram, pattern);
                    self.lsq.complete_load(addr, outcome.ready);
                    outcome.ready
                }
            }
        } else {
            self.dmb.read(now, addr, &mut self.dram, pattern).ready
        }
    }

    /// [`Machine::load_line`] that also reports whether the line was
    /// resident in the DMB when the request was presented (before any fill
    /// the load itself causes) — what a `dmb.contains` probe immediately
    /// before the load would have returned, without the extra lookup. A
    /// forwarded load never touches the DMB, so the read-only probe is
    /// still exact there.
    pub fn load_line_resident(
        &mut self,
        now: u64,
        addr: hymm_mem::LineAddr,
        pattern: AccessPattern,
    ) -> (u64, bool) {
        use hymm_mem::lsq::LoadPath;
        if self.config.lsq_forwarding {
            match self.lsq.load(now, addr) {
                LoadPath::Forwarded { ready } => (ready, self.dmb.contains(addr)),
                LoadPath::Issue { at } => {
                    let outcome = self.dmb.read(at, addr, &mut self.dram, pattern);
                    self.lsq.complete_load(addr, outcome.ready);
                    (outcome.ready, outcome.hit)
                }
            }
        } else {
            let outcome = self.dmb.read(now, addr, &mut self.dram, pattern);
            (outcome.ready, outcome.hit)
        }
    }

    /// Stores one line through LSQ → DMB; `allocate` selects write-allocate
    /// versus streaming write-through. Returns the cycle at which the store
    /// is accepted.
    pub fn store_line(
        &mut self,
        now: u64,
        addr: hymm_mem::LineAddr,
        allocate: bool,
        pattern: AccessPattern,
    ) -> u64 {
        let drained = if self.config.lsq_forwarding {
            self.lsq.store(now, addr, now)
        } else {
            now
        };
        self.dmb
            .write(drained, addr, &mut self.dram, allocate, pattern)
            .ready
    }

    /// Records a finished phase, attributing the DMB hit and DRAM traffic
    /// counters accumulated since the previous phase boundary to it.
    pub fn record_phase(&mut self, name: &'static str, start: u64, end: u64, nnz: u64) {
        let hits_now = self.dmb.hit_stats();
        let dram_now = self.dram.stats().total().total_bytes();
        let delta = hymm_mem::stats::HitStats {
            read_hits: hits_now.read_hits - self.hit_snapshot.read_hits,
            read_misses: hits_now.read_misses - self.hit_snapshot.read_misses,
            write_hits: hits_now.write_hits - self.hit_snapshot.write_hits,
            write_misses: hits_now.write_misses - self.hit_snapshot.write_misses,
        };
        self.phases.push(PhaseReport {
            name,
            start_cycle: start,
            end_cycle: end,
            nnz,
            dmb_hits: delta,
            dram_bytes: dram_now - self.dram_snapshot,
        });
        self.hit_snapshot = hits_now;
        self.dram_snapshot = dram_now;
        if self.config.audit {
            crate::audit::enforce(name, &crate::audit::check_machine(self));
        }
    }

    /// Flushes dirty output lines and snapshots every counter into a
    /// report; `total_cycles` is the caller's end-of-execution cycle.
    pub fn into_report(mut self, total_cycles: u64) -> SimReport {
        let audit = self.config.audit;
        if audit {
            crate::audit::enforce("into_report", &crate::audit::check_machine(&self));
        }
        // Final writeback of any dirty output still resident.
        let flushed = self
            .dmb
            .flush_kind(total_cycles, MatrixKind::Output, &mut self.dram);
        let report = SimReport {
            cycles: flushed.max(total_cycles),
            mac_cycles: self.pe.mac_cycles(),
            merge_cycles: self.pe.merge_cycles(),
            dram: self.dram.into_stats(),
            dmb_hits: self.dmb.hit_stats(),
            dmb_evictions: self.dmb.evictions(),
            dmb_dirty_evictions: self.dmb.dirty_evictions(),
            accumulator_merges: self.dmb.accumulator_merges(),
            lsq: self.lsq.stats(),
            partials: self.partials,
            phases: self.phases,
        };
        if audit {
            crate::audit::enforce("report", &crate::audit::check_report(&report));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hymm_mem::LineAddr;

    fn machine() -> Machine {
        Machine::new(&AcceleratorConfig::default())
    }

    #[test]
    fn load_line_misses_then_hits() {
        let mut m = machine();
        let addr = LineAddr::new(MatrixKind::Combination, 7);
        let first = m.load_line(0, addr, AccessPattern::Random);
        assert!(first > 100); // DRAM round trip
        let second = m.load_line(first, addr, AccessPattern::Random);
        assert!(second < first + 10); // buffer hit
    }

    #[test]
    fn store_then_load_forwards() {
        let mut m = machine();
        let addr = LineAddr::new(MatrixKind::Combination, 3);
        m.store_line(0, addr, true, AccessPattern::Sequential);
        let ready = m.load_line(1, addr, AccessPattern::Random);
        assert!(ready <= 4, "forwarded load should be fast, got {ready}");
        assert_eq!(m.lsq.stats().forwards, 1);
    }

    #[test]
    fn forwarding_can_be_disabled() {
        let cfg = AcceleratorConfig {
            lsq_forwarding: false,
            ..AcceleratorConfig::default()
        };
        let mut m = Machine::new(&cfg);
        let addr = LineAddr::new(MatrixKind::Combination, 3);
        m.store_line(0, addr, true, AccessPattern::Sequential);
        let _ = m.load_line(1, addr, AccessPattern::Random);
        assert_eq!(m.lsq.stats().forwards, 0);
    }

    #[test]
    fn report_flushes_outputs() {
        let mut m = machine();
        let addr = LineAddr::new(MatrixKind::Output, 0);
        m.store_line(0, addr, true, AccessPattern::Sequential);
        let report = m.into_report(100);
        assert_eq!(report.dram.kind(MatrixKind::Output).writes, 1);
        assert!(report.cycles >= 100);
    }

    #[test]
    fn phases_are_recorded() {
        let mut m = machine();
        m.record_phase("combination", 0, 10, 4);
        let report = m.into_report(10);
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].cycles(), 10);
    }
}
