//! The column-wise product (CWP) engine — extension beyond the paper.
//!
//! The paper's Table I lists AWB-GCN's **column-wise product** as the fourth
//! dataflow family; the paper does not evaluate it, but a complete
//! reproduction of the comparison space needs it. CWP computes the output
//! one **dense column** at a time: for output column `j`,
//! `O[:,j] = S · D[:,j]`, with the 16 PEs working scalar MACs on different
//! output rows in parallel and the output column accumulating in PE-local
//! storage until the pass ends.
//!
//! Characteristic costs this model captures:
//!
//! - the sparse operand is **re-streamed once per output column** (the
//!   dataflow's main weakness against RWP/OP for wide outputs);
//! - the dense operand is stored column-major and streamed sequentially
//!   alongside the sparse columns;
//! - per-column lane efficiency below 1.0 models AWB-GCN's workload
//!   imbalance across rows (its paper's "evil rows"; AWB-GCN adds runtime
//!   rebalancing hardware to recover this, which we expose as the
//!   configurable [`crate::config::AcceleratorConfig::cwp_lane_efficiency`]);
//! - when the output column exceeds the buffer, rows are tiled and the
//!   sparse operand is walked per (column, tile) pass.

use crate::engine::row_line;
use crate::machine::Machine;
use hymm_mem::dram::AccessPattern;
use hymm_mem::smq::{SmqStream, SparseFormat};
use hymm_mem::MatrixKind;
use hymm_sparse::{Csc, Dense};

/// One CWP invocation.
#[derive(Debug)]
pub struct CwpJob<'a> {
    /// Sparse operand in local coordinates (`rows x cols`), walked in CSC
    /// order so the dense column is streamed sequentially.
    pub sparse: &'a Csc,
    /// Traffic tag of the sparse operand's streams.
    pub sparse_kind: MatrixKind,
    /// Dense operand (`cols x d`); modelled as stored column-major.
    pub dense: &'a Dense,
    /// Traffic tag of dense-column loads.
    pub dense_kind: MatrixKind,
    /// Traffic tag of output-column stores.
    pub out_kind: MatrixKind,
    /// Output rows per tile (clamped to at least one line's worth).
    pub tile_rows: usize,
    /// Fraction of the 16 MAC lanes doing useful work per cycle, in
    /// `(0, 1]`.
    pub lane_efficiency: f64,
    /// Phase name recorded in the report.
    pub name: &'static str,
}

/// Runs the CWP dataflow starting at cycle `start`, accumulating numeric
/// results into `out`; returns the end cycle.
///
/// # Panics
///
/// Panics if shapes are inconsistent, `tile_rows == 0`, or
/// `lane_efficiency` is outside `(0, 1]`.
// `k` indexes both the cursor array and names the sparse column; the range
// loop reads better than enumerate here.
#[allow(clippy::needless_range_loop)]
pub fn run_cwp(m: &mut Machine, start: u64, job: &CwpJob<'_>, out: &mut Dense) -> u64 {
    assert!(job.tile_rows > 0, "tile_rows must be positive");
    assert!(
        job.lane_efficiency > 0.0 && job.lane_efficiency <= 1.0,
        "lane efficiency must be in (0, 1]"
    );
    assert_eq!(
        job.sparse.cols(),
        job.dense.rows(),
        "sparse columns must match dense rows"
    );
    assert_eq!(
        job.sparse.rows(),
        out.rows(),
        "sparse rows must match output rows"
    );
    assert_eq!(
        job.dense.cols(),
        out.cols(),
        "dense and output widths differ"
    );

    let mem = m.config.mem;
    let elems = mem.elems_per_line();
    let lanes = m.config.num_pes.max(1);
    let effective_lanes = ((lanes as f64) * job.lane_efficiency).max(1.0) as u64;

    let sparse = job.sparse;
    let rows = sparse.rows();
    let cols = sparse.cols();
    let d = job.dense.cols();
    let num_tiles = rows.div_ceil(job.tile_rows);
    // Dense column j spans `col_lines` lines in column-major storage.
    let dense_col_lines = cols.div_ceil(elems);
    let out_col_lines = rows.div_ceil(elems);

    // Functional result in one pass (iteration order does not affect it).
    for (r, c, v) in sparse.iter() {
        out.axpy_row(r, v, job.dense.row(c));
    }

    let mut now = start;
    let mut end = start;
    let total_nnz = sparse.nnz() as u64;

    // Per-column consumption cursors over the CSC, reset for every output
    // column rather than reallocated d times.
    let mut cursor: Vec<usize> = vec![0; cols];
    for j in 0..d {
        cursor.copy_from_slice(&sparse.col_ptr()[..cols]);
        for tile in 0..num_tiles {
            let hi = ((tile + 1) * job.tile_rows).min(rows);
            let mut tile_nnz = 0usize;
            for k in 0..cols {
                let mut c = cursor[k];
                let limit = sparse.col_ptr()[k + 1];
                while c < limit && (sparse.row_idx()[c] as usize) < hi {
                    c += 1;
                }
                tile_nnz += c - cursor[k];
            }
            if tile_nnz == 0 {
                continue;
            }
            let mut smq =
                SmqStream::new(&mem, job.sparse_kind, SparseFormat::Csc, tile_nnz, cols + 1);
            let mut dense_line_ready = 0u64;
            let mut fetched_dense_line = usize::MAX;
            for k in 0..cols {
                let limit = sparse.col_ptr()[k + 1];
                let begin = cursor[k];
                let mut idx = begin;
                while idx < limit && (sparse.row_idx()[idx] as usize) < hi {
                    idx += 1;
                }
                if idx == begin {
                    continue;
                }
                cursor[k] = idx;
                let cnt = (idx - begin) as u64;

                // The scalar D[k, j] lives in line k/elems of column j.
                let line = k / elems;
                if line != fetched_dense_line {
                    fetched_dense_line = line;
                    let addr = row_line(job.dense_kind, j, dense_col_lines, line);
                    dense_line_ready = m.load_line(now, addr, AccessPattern::Sequential);
                }
                // Stream the column's entries and execute the row-parallel
                // scalar MACs. Decode (1 entry/cycle) and the PE pass are
                // charged back to back — a deliberately conservative model
                // of a dataflow the paper does not evaluate.
                let mut entry_ready = now;
                for _ in 0..cnt {
                    let e = smq
                        .next_entry(now, &mut m.dram)
                        .expect("stream sized to the tile nnz");
                    now = now.max(e) + 1;
                    entry_ready = entry_ready.max(now);
                }
                // Row-parallel scalar MACs: without gating the configured
                // effective lanes model AWB-GCN's imbalance; with gating the
                // occupancy is exact and the lane efficiency is derived.
                let done = m.pe.execute_scalar_macs(
                    entry_ready.max(dense_line_ready),
                    cnt,
                    effective_lanes,
                );
                end = end.max(done);
            }
            m.absorb_smq(&mut smq);
            // Flush the tile's slice of output column j (accumulated in
            // PE-local storage) as a sequential stream.
            let lo_line = (tile * job.tile_rows) / elems;
            let hi_line = hi.div_ceil(elems);
            let mut t = end;
            for line in lo_line..hi_line {
                let addr = row_line(job.out_kind, j, out_col_lines, line);
                t = t.max(m.store_line(t, addr, false, AccessPattern::Sequential));
            }
            end = end.max(t).max(now);
        }
    }
    end = end.max(now);
    m.record_phase(job.name, start, end, total_nnz * d as u64);
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use hymm_sparse::spdemm;
    use hymm_sparse::{Coo, Csr};

    fn machine() -> Machine {
        Machine::new(&AcceleratorConfig::default())
    }

    fn fixture() -> (Csc, Dense) {
        let coo = Coo::from_triplets(
            5,
            4,
            [
                (0, 1, 2.0),
                (1, 0, -1.0),
                (2, 1, 0.5),
                (3, 3, 3.0),
                (4, 0, 1.5),
                (0, 3, -0.5),
            ],
        )
        .unwrap();
        (
            Csc::from_coo(&coo),
            Dense::from_fn(4, 16, |r, c| ((r + 2 * c) % 7) as f32 * 0.3),
        )
    }

    fn job<'a>(sparse: &'a Csc, dense: &'a Dense) -> CwpJob<'a> {
        CwpJob {
            sparse,
            sparse_kind: MatrixKind::SparseA,
            dense,
            dense_kind: MatrixKind::Combination,
            out_kind: MatrixKind::Output,
            tile_rows: 5,
            lane_efficiency: 0.8,
            name: "test/cwp",
        }
    }

    #[test]
    fn numeric_result_matches_reference() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(5, 16);
        run_cwp(&mut m, 0, &job(&sparse, &dense), &mut out);
        let want = spdemm::row_wise_product(&sparse.to_csr(), &dense);
        assert!(out.approx_eq(&want, 1e-5));
    }

    #[test]
    fn tiling_preserves_result() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(5, 16);
        let mut j = job(&sparse, &dense);
        j.tile_rows = 2;
        run_cwp(&mut m, 0, &j, &mut out);
        let want = spdemm::row_wise_product(&sparse.to_csr(), &dense);
        assert!(out.approx_eq(&want, 1e-5));
    }

    #[test]
    fn sparse_operand_restreamed_per_output_column() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(5, 16);
        run_cwp(&mut m, 0, &job(&sparse, &dense), &mut out);
        // 16 output columns x 1 index line (6 entries) + pointer lines
        let reads = m.dram.stats().kind(MatrixKind::SparseA).reads;
        assert!(
            reads >= 16,
            "expected one sparse pass per output column, got {reads}"
        );
    }

    #[test]
    fn phase_counts_column_passes() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(5, 16);
        run_cwp(&mut m, 0, &job(&sparse, &dense), &mut out);
        assert_eq!(m.phases[0].nnz, 6 * 16);
    }

    #[test]
    fn lane_efficiency_changes_cycles() {
        let coo = Coo::from_triplets(64, 1, (0..64).map(|r| (r, 0, 1.0))).unwrap();
        let sparse = Csc::from_coo(&coo);
        let dense = Dense::from_fn(1, 16, |_, _| 1.0);
        let run_with = |eff: f64| {
            let mut m = machine();
            let mut out = Dense::zeros(64, 16);
            let mut j = job(&sparse, &dense);
            j.tile_rows = 64;
            j.lane_efficiency = eff;
            run_cwp(&mut m, 0, &j, &mut out);
            m.pe.mac_cycles()
        };
        assert!(run_with(0.5) > run_with(1.0));
    }

    #[test]
    fn empty_sparse_is_noop() {
        let coo = Coo::new(3, 3).unwrap();
        let sparse = Csc::from_coo(&coo);
        let dense = Dense::zeros(3, 16);
        let mut m = machine();
        let mut out = Dense::zeros(3, 16);
        let end = run_cwp(&mut m, 5, &job(&sparse, &dense), &mut out);
        assert_eq!(end, 5);
    }

    #[test]
    fn agrees_with_csr_reference_on_random_graph() {
        use hymm_sparse::Coo;
        let mut coo = Coo::new(12, 12).unwrap();
        for i in 0..12 {
            coo.push(i, (i * 5 + 1) % 12, 0.5 + i as f32 * 0.1).unwrap();
            coo.push((i * 7 + 3) % 12, i, -0.25).unwrap();
        }
        let sparse = Csc::from_coo(&coo);
        let dense = Dense::from_fn(12, 16, |r, c| ((r * 3 + c) % 5) as f32);
        let mut m = machine();
        let mut out = Dense::zeros(12, 16);
        run_cwp(&mut m, 0, &job(&sparse, &dense), &mut out);
        let want = spdemm::row_wise_product(&Csr::from_coo(&coo), &dense);
        assert!(out.approx_eq(&want, 1e-4));
    }
}
