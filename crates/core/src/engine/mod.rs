//! Timed SpDeMM engines.
//!
//! [`cwp`] implements AWB-GCN's column-wise product as an extension beyond
//! the paper's evaluated dataflows.
//!
//! Each engine walks one sparse operand in its dataflow's order, charging
//! every pointer/index/value fetch (through the SMQ), every dense-line load
//! and store (through LSQ → DMB → DRAM) and every PE operation, while also
//! computing the real numeric result. [`rwp`] implements the row-wise
//! product, [`op`] the outer product with output-row tiling and a pluggable
//! partial-merge policy, and [`hybrid`] sequences them over the three
//! regions of a degree-sorted adjacency matrix exactly as HyMM does
//! (OP first, then RWP — paper §III).

pub mod cwp;
pub mod hybrid;
pub mod op;
pub mod rwp;

use hymm_mem::{LineAddr, MatrixKind};

/// Line address of chunk `chunk` of dense row `row` in a matrix whose rows
/// span `lines_per_row` lines.
pub(crate) fn row_line(
    kind: MatrixKind,
    row: usize,
    lines_per_row: usize,
    chunk: usize,
) -> LineAddr {
    LineAddr::new(kind, (row * lines_per_row + chunk) as u64)
}
