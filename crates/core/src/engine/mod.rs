//! Timed SpDeMM engines.
//!
//! [`cwp`] implements AWB-GCN's column-wise product as an extension beyond
//! the paper's evaluated dataflows.
//!
//! Each engine walks one sparse operand in its dataflow's order, charging
//! every pointer/index/value fetch (through the SMQ), every dense-line load
//! and store (through LSQ → DMB → DRAM) and every PE operation, while also
//! computing the real numeric result. [`rwp`] implements the row-wise
//! product, [`op`] the outer product with output-row tiling and a pluggable
//! partial-merge policy, and [`hybrid`] sequences them over the three
//! regions of a degree-sorted adjacency matrix exactly as HyMM does
//! (OP first, then RWP — paper §III).

pub mod cwp;
pub mod hybrid;
pub mod op;
pub mod rwp;

use hymm_mem::{LineAddr, MatrixKind};
use hymm_sparse::Dense;

/// Where an engine's numeric results go.
///
/// Engine timing depends only on the sparse structure and the memory
/// system, never on the `f32` values, so a caller that already knows the
/// numeric result bit-exactly (from a memoised run with an identical
/// numeric trajectory — see `crate::prepared`) can replay a phase in
/// [`NumericSink::Timing`] mode: every SMQ/LSQ/DMB/PE event is issued
/// exactly as in [`NumericSink::Accumulate`] mode and the report is
/// bit-identical; only the per-nonzero `axpy` into the output is skipped.
#[derive(Debug)]
pub enum NumericSink<'a> {
    /// Accumulate numeric results into this output matrix.
    Accumulate(&'a mut Dense),
    /// Timing-only replay; the output shape is kept for the engines' shape
    /// assertions.
    Timing {
        /// Output rows.
        rows: usize,
        /// Output columns.
        cols: usize,
    },
}

impl NumericSink<'_> {
    /// Output row count.
    pub fn rows(&self) -> usize {
        match self {
            NumericSink::Accumulate(out) => out.rows(),
            NumericSink::Timing { rows, .. } => *rows,
        }
    }

    /// Output column count.
    pub fn cols(&self) -> usize {
        match self {
            NumericSink::Accumulate(out) => out.cols(),
            NumericSink::Timing { cols, .. } => *cols,
        }
    }

    /// The per-nonzero MAC: `out[r] += v * src` in accumulate mode, a no-op
    /// in timing mode.
    #[inline]
    pub fn axpy_row(&mut self, r: usize, v: f32, src: &[f32]) {
        if let NumericSink::Accumulate(out) = self {
            out.axpy_row(r, v, src);
        }
    }

    /// Reborrows the sink for a nested engine invocation.
    pub fn reborrow(&mut self) -> NumericSink<'_> {
        match self {
            NumericSink::Accumulate(out) => NumericSink::Accumulate(out),
            NumericSink::Timing { rows, cols } => NumericSink::Timing {
                rows: *rows,
                cols: *cols,
            },
        }
    }
}

/// Line address of chunk `chunk` of dense row `row` in a matrix whose rows
/// span `lines_per_row` lines.
pub(crate) fn row_line(
    kind: MatrixKind,
    row: usize,
    lines_per_row: usize,
    chunk: usize,
) -> LineAddr {
    LineAddr::new(kind, (row * lines_per_row + chunk) as u64)
}
