//! The row-wise product (RWP) engine.
//!
//! RWP (paper Fig. 1a, Gustavson's algorithm) streams the sparse operand row
//! by row. For every non-zero `(r, c, v)` it loads dense row `c`, multiplies
//! it by the broadcast scalar `v` on the PE array, and accumulates into the
//! **output-stationary** row `r` held in the PE stationary buffers; when the
//! sparse row ends the finished output row is stored. Dense-input locality
//! (repeated columns within a window) is the reuse this dataflow exploits;
//! finished output rows are never re-read, so they are streamed out without
//! polluting the unified buffer.

use crate::engine::{row_line, NumericSink};
use crate::machine::Machine;
use hymm_mem::dram::AccessPattern;
use hymm_mem::smq::{SmqStream, SparseFormat};
use hymm_mem::MatrixKind;
use hymm_sparse::{Csr, Dense};
use std::collections::VecDeque;

/// One RWP invocation.
#[derive(Debug)]
pub struct RwpJob<'a> {
    /// Sparse operand in local coordinates (`rows x cols`).
    pub sparse: &'a Csr,
    /// Traffic tag of the sparse operand's streams.
    pub sparse_kind: MatrixKind,
    /// Dense operand; local sparse column `c` multiplies dense row
    /// `c + col_offset`.
    pub dense: &'a Dense,
    /// Traffic tag of dense-row loads.
    pub dense_kind: MatrixKind,
    /// Global offset added to local sparse columns when addressing `dense`.
    pub col_offset: usize,
    /// Global offset added to local sparse rows when addressing the output.
    pub out_row_offset: usize,
    /// Traffic tag of output-row stores.
    pub out_kind: MatrixKind,
    /// Write-allocate outputs in the DMB (`true` for `XW`, which the
    /// aggregation phase re-reads) or stream them through (`false` for
    /// finished `AXW` rows).
    pub out_allocate: bool,
    /// Phase name recorded in the report.
    pub name: &'static str,
}

/// Runs the RWP dataflow starting at cycle `start`, accumulating numeric
/// results into `out` (global coordinates); returns the end cycle.
///
/// # Panics
///
/// Panics if shapes are inconsistent (sparse columns + offset exceeding
/// dense rows, output too small, or differing widths).
pub fn run_rwp(m: &mut Machine, start: u64, job: &RwpJob<'_>, out: &mut Dense) -> u64 {
    run_rwp_sink(m, start, job, NumericSink::Accumulate(out))
}

/// [`run_rwp`] writing into a [`NumericSink`]: timing-identical to the
/// accumulate mode, with the numeric axpy optionally elided (see the sink's
/// docs for when that is legal).
pub fn run_rwp_sink(
    m: &mut Machine,
    start: u64,
    job: &RwpJob<'_>,
    mut out: NumericSink<'_>,
) -> u64 {
    assert!(
        job.sparse.cols() + job.col_offset <= job.dense.rows(),
        "sparse columns exceed dense rows"
    );
    assert!(
        job.sparse.rows() + job.out_row_offset <= out.rows(),
        "sparse rows exceed output rows"
    );
    assert_eq!(
        job.dense.cols(),
        out.cols(),
        "dense and output widths differ"
    );

    let mem = m.config.mem;
    let dense_lines = mem.lines_per_row(job.dense.cols());
    let out_lines = mem.lines_per_row(out.cols());
    let mlp = m.config.mlp_window.max(1);

    let mut smq = SmqStream::new(
        &mem,
        job.sparse_kind,
        SparseFormat::Csr,
        job.sparse.nnz(),
        job.sparse.rows() + 1,
    );

    // Event core: the phase's entire DMB footprint is the dense operand
    // window plus the output rows, both contiguous line ranges. Opening a
    // span lets the buffer serve the whole phase on range-indexed state
    // (refused configurations simply stay on the generic path).
    m.begin_phase_span(&[
        hymm_mem::SpanRange {
            kind: job.dense_kind,
            base: (job.col_offset * dense_lines) as u64,
            len: (job.sparse.cols() * dense_lines) as u64,
        },
        hymm_mem::SpanRange {
            kind: job.out_kind,
            base: (job.out_row_offset * out_lines) as u64,
            len: (job.sparse.rows() * out_lines) as u64,
        },
    ]);

    let mut issue = start;
    let mut end = start;
    let mut window: VecDeque<u64> = VecDeque::with_capacity(mlp);

    // Engine-level row packing: with the flexible VRF (lane gating) enabled
    // and the vector wider than the output row, `pack` consecutive non-zeros
    // of the same sparse row co-issue as one packed operation (each scaling
    // its own copy of the row slot). Without the flexible VRF operands
    // cannot share a slot, so `pack == 1` and the loop below is the seed's
    // per-entry path, bit-identically.
    let width = out.cols();
    let pack = if m.pe.gating() {
        (m.pe.lanes() / width.max(1)).max(1) as u64
    } else {
        1
    };

    for r in 0..job.sparse.rows() {
        let (cols, vals) = job.sparse.row(r);
        if cols.is_empty() {
            continue;
        }
        let mut row_done = issue;
        let mut batch_ready = 0u64;
        let mut batch_rows = 0u64;
        for (i, (&c, &v)) in cols.iter().zip(vals).enumerate() {
            let entry = smq
                .next_entry(issue, &mut m.dram)
                .expect("stream sized to the sparse nnz");
            issue = issue.max(entry) + 1;
            // Bound memory-level parallelism by the configured window.
            if window.len() >= mlp {
                let oldest = window.pop_front().expect("window non-empty");
                issue = issue.max(oldest);
            }
            // `smq-stream` hints: the SMQ fetched this row's index entries
            // ahead of consumption, so the entry one prefetch-degree down
            // the row names a dense row demand will want shortly.
            if m.wants_prefetch_hints() {
                if let Some(&nc) = cols.get(i + m.config.mem.prefetch_degree.max(1)) {
                    let ng = nc as usize + job.col_offset;
                    for chunk in 0..dense_lines {
                        m.push_prefetch_hint(row_line(job.dense_kind, ng, dense_lines, chunk));
                    }
                }
            }
            let g = c as usize + job.col_offset;
            let mut ready = issue;
            for chunk in 0..dense_lines {
                let addr = row_line(job.dense_kind, g, dense_lines, chunk);
                ready = ready.max(m.load_line(issue, addr, AccessPattern::Random));
            }
            out.axpy_row(r + job.out_row_offset, v, job.dense.row(g));
            if pack == 1 {
                let done = m.pe.execute_row_mac(ready, width);
                window.push_back(done);
                row_done = done;
            } else {
                // Decode/load per entry, issue per batch: all operands of a
                // packed group must be ready before the single slot fires.
                batch_ready = batch_ready.max(ready);
                batch_rows += 1;
                if batch_rows == pack {
                    let done = m.pe.execute_packed_mac(batch_ready, batch_rows, width);
                    for _ in 0..batch_rows {
                        window.push_back(done);
                    }
                    row_done = done;
                    batch_rows = 0;
                    batch_ready = 0;
                }
            }
        }
        if batch_rows > 0 {
            let done = m.pe.execute_packed_mac(batch_ready, batch_rows, width);
            for _ in 0..batch_rows {
                window.push_back(done);
            }
            row_done = done;
        }
        // Store the finished output row.
        let global_row = r + job.out_row_offset;
        for chunk in 0..out_lines {
            let addr = row_line(job.out_kind, global_row, out_lines, chunk);
            end =
                end.max(m.store_line(row_done, addr, job.out_allocate, AccessPattern::Sequential));
        }
        end = end.max(row_done);
    }
    end = end.max(issue);
    m.end_phase_span();
    m.absorb_smq(&mut smq);
    m.record_phase(job.name, start, end, job.sparse.nnz() as u64);
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use hymm_sparse::spdemm;
    use hymm_sparse::Coo;

    fn machine() -> Machine {
        Machine::new(&AcceleratorConfig::default())
    }

    fn fixture() -> (Csr, Dense) {
        let coo = Coo::from_triplets(
            4,
            5,
            [
                (0, 1, 2.0),
                (0, 4, 1.0),
                (1, 0, -1.0),
                (3, 2, 0.5),
                (3, 3, 3.0),
            ],
        )
        .unwrap();
        (
            Csr::from_coo(&coo),
            Dense::from_fn(5, 16, |r, c| (r * 16 + c) as f32 * 0.1),
        )
    }

    fn job<'a>(sparse: &'a Csr, dense: &'a Dense) -> RwpJob<'a> {
        RwpJob {
            sparse,
            sparse_kind: MatrixKind::SparseA,
            dense,
            dense_kind: MatrixKind::Combination,
            col_offset: 0,
            out_row_offset: 0,
            out_kind: MatrixKind::Output,
            out_allocate: false,
            name: "test/rwp",
        }
    }

    #[test]
    fn numeric_result_matches_reference() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(4, 16);
        run_rwp(&mut m, 0, &job(&sparse, &dense), &mut out);
        let want = spdemm::row_wise_product(&sparse, &dense);
        assert!(out.approx_eq(&want, 1e-5));
    }

    #[test]
    fn cycles_advance_and_phase_recorded() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(4, 16);
        let end = run_rwp(&mut m, 10, &job(&sparse, &dense), &mut out);
        assert!(end > 10);
        assert_eq!(m.phases.len(), 1);
        assert_eq!(m.phases[0].nnz, 5);
        assert!(m.phases[0].end_cycle >= m.phases[0].start_cycle);
    }

    #[test]
    fn dense_reuse_hits_in_buffer() {
        // Two rows referencing the same dense column: second load must hit.
        let coo = Coo::from_triplets(2, 2, [(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        let sparse = Csr::from_coo(&coo);
        let dense = Dense::from_fn(2, 16, |_, _| 1.0);
        let mut m = machine();
        let mut out = Dense::zeros(2, 16);
        run_rwp(&mut m, 0, &job(&sparse, &dense), &mut out);
        let hits = m.dmb.hit_stats();
        assert_eq!(hits.read_hits, 1, "second access to dense row 0 should hit");
        assert_eq!(hits.read_misses, 1);
    }

    #[test]
    fn streams_outputs_without_allocating() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(4, 16);
        run_rwp(&mut m, 0, &job(&sparse, &dense), &mut out);
        assert_eq!(m.dmb.resident_lines(MatrixKind::Output), 0);
        // 3 non-empty sparse rows → 3 output lines written to DRAM
        assert_eq!(m.dram.stats().kind(MatrixKind::Output).writes, 3);
    }

    #[test]
    fn allocating_outputs_keeps_them_resident() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(4, 16);
        let mut j = job(&sparse, &dense);
        j.dense_kind = MatrixKind::Weight;
        j.out_allocate = true;
        j.out_kind = MatrixKind::Combination;
        run_rwp(&mut m, 0, &j, &mut out);
        // 3 non-empty sparse rows → 3 XW lines write-allocated and retained
        assert_eq!(m.dmb.resident_lines(MatrixKind::Combination), 3);
        assert_eq!(m.dram.stats().kind(MatrixKind::Combination).writes, 0);
    }

    #[test]
    fn sparse_traffic_is_charged() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(4, 16);
        run_rwp(&mut m, 0, &job(&sparse, &dense), &mut out);
        assert!(m.dram.stats().kind(MatrixKind::SparseA).read_bytes >= 128);
    }

    #[test]
    fn offsets_map_to_global_coordinates() {
        // local 1x1 sparse with offset: entry multiplies dense row 3 into out row 2.
        let coo = Coo::from_triplets(1, 1, [(0, 0, 2.0)]).unwrap();
        let sparse = Csr::from_coo(&coo);
        let dense = Dense::from_fn(4, 16, |r, _| r as f32);
        let mut m = machine();
        let mut out = Dense::zeros(3, 16);
        let j = RwpJob {
            col_offset: 3,
            out_row_offset: 2,
            ..job(&sparse, &dense)
        };
        run_rwp(&mut m, 0, &j, &mut out);
        assert_eq!(out.get(2, 0), 6.0);
        assert_eq!(out.get(0, 0), 0.0);
    }

    #[test]
    fn empty_sparse_is_noop() {
        let coo = Coo::new(3, 3).unwrap();
        let sparse = Csr::from_coo(&coo);
        let dense = Dense::zeros(3, 16);
        let mut m = machine();
        let mut out = Dense::zeros(3, 16);
        let end = run_rwp(&mut m, 5, &job(&sparse, &dense), &mut out);
        assert_eq!(end, 5);
        assert_eq!(out.as_slice().iter().copied().sum::<f32>(), 0.0);
    }
}
