//! The outer-product (OP) engine.
//!
//! OP (paper Fig. 1b, OuterSPACE-style) streams the sparse operand column by
//! column. The dense row matching the column index is loaded **once** into
//! the PE stationary buffers; every non-zero in the column then scatters one
//! partial output row. Partial outputs are the dataflow's Achilles heel:
//! they are read-modified-written repeatedly, so this engine supports the
//! three merge policies of [`MergePolicy`] — HyMM's near-memory accumulator,
//! the conventional PE read-modify-write, and the materialise-then-merge
//! scheme of traditional outer-product designs (the "without accumulator"
//! series of the paper's Fig. 10).
//!
//! Output rows are processed in tiles sized so the tile's outputs fit in the
//! unified buffer (GCNAX-style loop tiling; for HyMM's region 1 the tiling
//! threshold guarantees a single tile). The dense input is re-streamed once
//! per tile — the read-amplification/footprint trade-off the paper discusses
//! in §IV-E.

use crate::config::MergePolicy;
use crate::engine::{row_line, NumericSink};
use crate::machine::Machine;
use hymm_mem::dram::AccessPattern;
use hymm_mem::smq::{SmqStream, SparseFormat};
use hymm_mem::MatrixKind;
use hymm_sparse::{Csc, Dense};

/// Reserved line-index base for materialised partial-product log entries,
/// far above any real output row.
const MATERIALIZE_LOG_BASE: u64 = 1 << 40;

/// One OP invocation.
#[derive(Debug)]
pub struct OpJob<'a> {
    /// Sparse operand in local coordinates (`rows x cols`).
    pub sparse: &'a Csc,
    /// Traffic tag of the sparse operand's streams.
    pub sparse_kind: MatrixKind,
    /// Dense operand; local sparse column `k` pairs with dense row
    /// `k + col_offset`.
    pub dense: &'a Dense,
    /// Traffic tag of dense-row loads.
    pub dense_kind: MatrixKind,
    /// Global offset added to local sparse columns when addressing `dense`.
    pub col_offset: usize,
    /// Global offset added to local sparse rows when addressing the output.
    pub out_row_offset: usize,
    /// Traffic tag of partial-output writes.
    pub out_kind: MatrixKind,
    /// How partial outputs are merged.
    pub merge: MergePolicy,
    /// Output-row tile size (local rows per pass).
    pub tile_rows: usize,
    /// Phase name recorded in the report.
    pub name: &'static str,
}

/// Runs the OP dataflow starting at cycle `start`, accumulating numeric
/// results into `out` (global coordinates); returns the end cycle.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `tile_rows == 0`.
// `k` indexes both the cursor array and names the sparse column; the range
// loop reads better than enumerate here.
#[allow(clippy::needless_range_loop)]
pub fn run_op(m: &mut Machine, start: u64, job: &OpJob<'_>, out: &mut Dense) -> u64 {
    run_op_sink(m, start, job, NumericSink::Accumulate(out))
}

/// [`run_op`] writing into a [`NumericSink`]: timing-identical to the
/// accumulate mode, with the numeric axpy optionally elided (see the sink's
/// docs for when that is legal).
#[allow(clippy::needless_range_loop)]
pub fn run_op_sink(m: &mut Machine, start: u64, job: &OpJob<'_>, mut out: NumericSink<'_>) -> u64 {
    assert!(job.tile_rows > 0, "tile_rows must be positive");
    assert!(
        job.sparse.cols() + job.col_offset <= job.dense.rows(),
        "sparse columns exceed dense rows"
    );
    assert!(
        job.sparse.rows() + job.out_row_offset <= out.rows(),
        "sparse rows exceed output rows"
    );
    assert_eq!(
        job.dense.cols(),
        out.cols(),
        "dense and output widths differ"
    );

    let mem = m.config.mem;
    let dense_lines = mem.lines_per_row(job.dense.cols());
    let out_lines = mem.lines_per_row(out.cols());
    let line_bytes = (mem.line_bytes * out_lines) as u64;
    // Engine-level row packing (see rwp.rs): entries of one column share the
    // stationary dense row, so with the flexible VRF (lane gating) enabled
    // and the vector wider than the output row, `pack` of them co-issue as a
    // single packed operation. Without it `pack == 1` and the seed's
    // per-entry path runs bit-identically.
    let width = out.cols();
    let pack = if m.pe.gating() {
        (m.pe.lanes() / width.max(1)).max(1)
    } else {
        1
    };

    let sparse = job.sparse;
    let rows = sparse.rows();
    let cols = sparse.cols();
    let num_tiles = rows.div_ceil(job.tile_rows);
    let total_nnz = sparse.nnz() as u64;

    // Per-column consumption cursors: tiles ascend through each column's
    // (sorted) row indices exactly once.
    let mut cursor: Vec<usize> = (0..cols).map(|k| sparse.col_ptr()[k]).collect();

    // Scratch reused across tiles: first-touch bitmap, materialise log, and
    // the merge-pass MLP window.
    let mut touched_buf = vec![false; job.tile_rows.min(rows)];
    let mut log: Vec<(usize, u64)> = Vec::new();
    let mlp = m.config.mlp_window.max(1);
    let mut window: std::collections::VecDeque<u64> =
        std::collections::VecDeque::with_capacity(mlp);

    // Event core: the phase's DMB footprint is the dense operand window plus
    // the partial-output lines — the real output-row window for the merging
    // policies, or the serial log region for materialise (the merged rows
    // bypass the buffer there). Refused configurations stay on the generic
    // path with identical results.
    m.begin_phase_span(&[
        hymm_mem::SpanRange {
            kind: job.dense_kind,
            base: (job.col_offset * dense_lines) as u64,
            len: (cols * dense_lines) as u64,
        },
        match job.merge {
            MergePolicy::Materialize => hymm_mem::SpanRange {
                kind: job.out_kind,
                base: MATERIALIZE_LOG_BASE,
                len: total_nnz * out_lines as u64,
            },
            _ => hymm_mem::SpanRange {
                kind: job.out_kind,
                base: (job.out_row_offset * out_lines) as u64,
                len: (rows * out_lines) as u64,
            },
        },
    ]);

    let mut now = start;
    let mut end = start;
    let mut materialize_serial: u64 = MATERIALIZE_LOG_BASE;

    for tile in 0..num_tiles {
        let lo = tile * job.tile_rows;
        let hi = ((tile + 1) * job.tile_rows).min(rows);
        // Count this tile's entries to size its SMQ stream (the tiled CSC
        // carries its own column-pointer array — the storage overhead of
        // §IV-E).
        let mut tile_nnz = 0usize;
        for k in 0..cols {
            let mut c = cursor[k];
            let end_ptr = sparse.col_ptr()[k + 1];
            while c < end_ptr && (sparse.row_idx()[c] as usize) < hi {
                c += 1;
            }
            tile_nnz += c - cursor[k];
        }
        if tile_nnz == 0 {
            continue;
        }
        let mut smq = SmqStream::new(&mem, job.sparse_kind, SparseFormat::Csc, tile_nnz, cols + 1);

        // Footprint accounting for this tile.
        let touched = &mut touched_buf[..hi - lo];
        touched.fill(false);
        let mut live_partial_bytes: u64 = 0;
        // Materialise log: (local row, log addr) pairs for the merge pass.
        log.clear();

        for k in 0..cols {
            let col_end = sparse.col_ptr()[k + 1];
            let begin = cursor[k];
            let mut idx = begin;
            while idx < col_end && (sparse.row_idx()[idx] as usize) < hi {
                idx += 1;
            }
            if idx == begin {
                continue;
            }
            cursor[k] = idx;

            // `smq-stream` hints: the column-pointer entries the SMQ has
            // already fetched name the next dense rows this tile will
            // demand. The scan is bounded so the hint walk stays cheap even
            // on wide, sparse tiles.
            if m.wants_prefetch_hints() {
                let mut hinted = 0usize;
                for nk in k + 1..cols.min(k + 33) {
                    if hinted >= m.config.mem.prefetch_degree {
                        break;
                    }
                    let b = cursor[nk];
                    if b < sparse.col_ptr()[nk + 1] && (sparse.row_idx()[b] as usize) < hi {
                        let ng = nk + job.col_offset;
                        for chunk in 0..dense_lines {
                            m.push_prefetch_hint(row_line(job.dense_kind, ng, dense_lines, chunk));
                        }
                        hinted += 1;
                    }
                }
            }

            // Load the dense row into the PE stationary buffers (once per
            // column per tile).
            let g = k + job.col_offset;
            let mut dense_ready = now;
            for chunk in 0..dense_lines {
                let addr = row_line(job.dense_kind, g, dense_lines, chunk);
                dense_ready = dense_ready.max(m.load_line(now, addr, AccessPattern::Sequential));
            }

            let mut group = begin;
            while group < idx {
                let group_end = (group + pack).min(idx);
                // Decode every entry of the group before the single issue:
                // all packed operands must be ready when the slot fires.
                let mut ready = now;
                for _ in group..group_end {
                    let entry = smq
                        .next_entry(now, &mut m.dram)
                        .expect("stream sized to the tile nnz");
                    now = now.max(entry) + 1;
                    ready = ready.max(now);
                }
                ready = ready.max(dense_ready);
                let mult_done = if pack == 1 {
                    m.pe.execute_row_mac(ready, width)
                } else {
                    m.pe.execute_packed_mac(ready, (group_end - group) as u64, width)
                };
                for e in group..group_end {
                    let r_local = sparse.row_idx()[e] as usize;
                    let v = sparse.values()[e];
                    out.axpy_row(r_local + job.out_row_offset, v, job.dense.row(g));

                    let tile_r = r_local - lo;
                    let first_touch = !touched[tile_r];
                    touched[tile_r] = true;
                    m.partials.writes += out_lines as u64;

                    let global_row = r_local + job.out_row_offset;
                    match job.merge {
                        MergePolicy::NearMemory => {
                            let mut done = mult_done;
                            for chunk in 0..out_lines {
                                let addr = row_line(job.out_kind, global_row, out_lines, chunk);
                                let drained = m.lsq.store(done, addr, done);
                                // The store does not touch the DMB, so the write's
                                // hit flag equals residency before this iteration.
                                let w = m.dmb.write(
                                    drained,
                                    addr,
                                    &mut m.dram,
                                    true,
                                    AccessPattern::Random,
                                );
                                done = w.ready;
                                if !first_touch {
                                    if w.hit {
                                        m.dmb.record_accumulator_merge();
                                    } else {
                                        // Partial spilled earlier: merge through
                                        // DRAM (read old value back).
                                        m.partials.dram_merges += 1;
                                        let rb = m.dram.read(
                                            done,
                                            job.out_kind,
                                            mem.line_bytes as u64,
                                            AccessPattern::Random,
                                        );
                                        done = done.max(rb);
                                        m.dmb.record_accumulator_merge();
                                    }
                                }
                            }
                            end = end.max(done);
                            if first_touch {
                                live_partial_bytes += line_bytes;
                            }
                        }
                        MergePolicy::PeReadModifyWrite => {
                            let mut done = mult_done;
                            for chunk in 0..out_lines {
                                let addr = row_line(job.out_kind, global_row, out_lines, chunk);
                                if first_touch {
                                    let drained = m.lsq.store(done, addr, done);
                                    let w = m.dmb.write(
                                        drained,
                                        addr,
                                        &mut m.dram,
                                        true,
                                        AccessPattern::Random,
                                    );
                                    done = w.ready;
                                } else {
                                    // Read-modify-write through the PE adder; the
                                    // LSQ forwards from a still-queued partial
                                    // store to the same address (paper §IV-B).
                                    let (ready, resident) =
                                        m.load_line_resident(done, addr, AccessPattern::Random);
                                    if !resident {
                                        m.partials.dram_merges += 1;
                                    }
                                    let add = m.pe.execute_merge(ready, 1);
                                    let drained = m.lsq.store(add, addr, add);
                                    let w = m.dmb.write(
                                        drained,
                                        addr,
                                        &mut m.dram,
                                        true,
                                        AccessPattern::Random,
                                    );
                                    done = w.ready;
                                }
                            }
                            end = end.max(done);
                            if first_touch {
                                live_partial_bytes += line_bytes;
                            }
                        }
                        MergePolicy::Materialize => {
                            // Every partial product occupies fresh log space;
                            // the DMB spills overflow to DRAM by itself.
                            let mut done = mult_done;
                            for chunk in 0..out_lines {
                                let addr =
                                    hymm_mem::LineAddr::new(job.out_kind, materialize_serial);
                                materialize_serial += 1;
                                log.push((tile_r, addr.index));
                                let _ = chunk;
                                let drained = m.lsq.store(done, addr, done);
                                let w = m.dmb.write(
                                    drained,
                                    addr,
                                    &mut m.dram,
                                    true,
                                    AccessPattern::Random,
                                );
                                done = w.ready;
                            }
                            end = end.max(done);
                            live_partial_bytes += line_bytes;
                        }
                    }
                    m.partials.peak_bytes = m.partials.peak_bytes.max(live_partial_bytes);
                }
                group = group_end;
            }
        }

        // Tile epilogue.
        if job.merge == MergePolicy::Materialize {
            // Merge pass: fold every logged partial into its output row.
            // Reads are pipelined up to the MLP window — the merger streams
            // the log while the PE adder drains it.
            let mut t = end;
            for &(tile_r, log_index) in &log {
                if window.len() >= mlp {
                    let oldest = window.pop_front().expect("window non-empty");
                    t = t.max(oldest);
                }
                let addr = hymm_mem::LineAddr::new(job.out_kind, log_index);
                let (ready, resident) = m.load_line_resident(t, addr, AccessPattern::Random);
                if !resident {
                    m.partials.dram_merges += 1;
                }
                let merged = m.pe.execute_merge(ready, 1);
                window.push_back(merged);
                t += 1;
                let _ = tile_r;
            }
            let mut t = window.back().copied().unwrap_or(t).max(t);
            window.clear();
            // Drop the log and write the merged rows.
            m.dmb.invalidate_kind(job.out_kind);
            for (i, &was_touched) in touched.iter().enumerate() {
                if was_touched {
                    let global_row = lo + i + job.out_row_offset;
                    for chunk in 0..out_lines {
                        let addr = row_line(job.out_kind, global_row, out_lines, chunk);
                        t = t.max(m.dram.write(
                            t,
                            addr.kind,
                            mem.line_bytes as u64,
                            AccessPattern::Sequential,
                        ));
                        let _ = addr;
                    }
                }
            }
            end = end.max(t);
        } else {
            // Flush the finished tile's output rows so the next tile has the
            // buffer to itself.
            end = end.max(m.dmb.flush_kind(end, job.out_kind, &mut m.dram));
        }
        m.absorb_smq(&mut smq);
        end = end.max(now);
    }
    end = end.max(now);
    m.end_phase_span();
    m.record_phase(job.name, start, end, total_nnz);
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use hymm_sparse::spdemm;
    use hymm_sparse::Coo;

    fn machine() -> Machine {
        Machine::new(&AcceleratorConfig::default())
    }

    fn fixture() -> (Csc, Dense) {
        let coo = Coo::from_triplets(
            4,
            5,
            [
                (0, 1, 2.0),
                (0, 4, 1.0),
                (1, 0, -1.0),
                (3, 2, 0.5),
                (3, 1, 3.0),
                (2, 1, 1.0),
            ],
        )
        .unwrap();
        (
            Csc::from_coo(&coo),
            Dense::from_fn(5, 16, |r, c| (r * 16 + c) as f32 * 0.1),
        )
    }

    fn job<'a>(sparse: &'a Csc, dense: &'a Dense, merge: MergePolicy) -> OpJob<'a> {
        OpJob {
            sparse,
            sparse_kind: MatrixKind::SparseA,
            dense,
            dense_kind: MatrixKind::Combination,
            col_offset: 0,
            out_row_offset: 0,
            out_kind: MatrixKind::Output,
            merge,
            tile_rows: 4,
            name: "test/op",
        }
    }

    #[test]
    fn numeric_result_matches_reference_all_policies() {
        let (sparse, dense) = fixture();
        let want = spdemm::outer_product(&sparse, &dense);
        for merge in [
            MergePolicy::NearMemory,
            MergePolicy::PeReadModifyWrite,
            MergePolicy::Materialize,
        ] {
            let mut m = machine();
            let mut out = Dense::zeros(4, 16);
            run_op(&mut m, 0, &job(&sparse, &dense, merge), &mut out);
            assert!(out.approx_eq(&want, 1e-5), "policy {merge:?} wrong result");
        }
    }

    #[test]
    fn tiling_preserves_result() {
        let (sparse, dense) = fixture();
        let want = spdemm::outer_product(&sparse, &dense);
        let mut m = machine();
        let mut out = Dense::zeros(4, 16);
        let mut j = job(&sparse, &dense, MergePolicy::NearMemory);
        j.tile_rows = 2; // force two tiles
        run_op(&mut m, 0, &j, &mut out);
        assert!(out.approx_eq(&want, 1e-5));
    }

    #[test]
    fn near_memory_merges_do_not_use_pe() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(4, 16);
        run_op(
            &mut m,
            0,
            &job(&sparse, &dense, MergePolicy::NearMemory),
            &mut out,
        );
        assert_eq!(m.pe.merge_cycles(), 0);
        // rows 0 and 3 each receive 2 partials → 2 merges
        assert_eq!(m.dmb.accumulator_merges(), 2);
    }

    #[test]
    fn pe_rmw_charges_merge_cycles() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(4, 16);
        run_op(
            &mut m,
            0,
            &job(&sparse, &dense, MergePolicy::PeReadModifyWrite),
            &mut out,
        );
        assert_eq!(m.pe.merge_cycles(), 2);
        assert_eq!(m.dmb.accumulator_merges(), 0);
    }

    #[test]
    fn materialize_has_larger_footprint() {
        let (sparse, dense) = fixture();
        let mut acc = machine();
        let mut out = Dense::zeros(4, 16);
        run_op(
            &mut acc,
            0,
            &job(&sparse, &dense, MergePolicy::NearMemory),
            &mut out,
        );

        let mut mat = machine();
        let mut out2 = Dense::zeros(4, 16);
        run_op(
            &mut mat,
            0,
            &job(&sparse, &dense, MergePolicy::Materialize),
            &mut out2,
        );

        // 6 partial writes vs 4 distinct rows
        assert_eq!(mat.partials.peak_bytes, 6 * 64);
        assert_eq!(acc.partials.peak_bytes, 4 * 64);
        assert!(mat.partials.peak_bytes > acc.partials.peak_bytes);
    }

    #[test]
    fn outputs_flushed_after_tiles() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(4, 16);
        run_op(
            &mut m,
            0,
            &job(&sparse, &dense, MergePolicy::NearMemory),
            &mut out,
        );
        assert_eq!(m.dmb.resident_lines(MatrixKind::Output), 0);
        // 4 distinct output rows written back
        assert_eq!(m.dram.stats().kind(MatrixKind::Output).writes, 4);
    }

    #[test]
    fn offsets_map_to_global_coordinates() {
        let coo = Coo::from_triplets(1, 1, [(0, 0, 2.0)]).unwrap();
        let sparse = Csc::from_coo(&coo);
        let dense = Dense::from_fn(4, 16, |r, _| r as f32);
        let mut m = machine();
        let mut out = Dense::zeros(3, 16);
        let mut j = job(&sparse, &dense, MergePolicy::NearMemory);
        j.col_offset = 3;
        j.out_row_offset = 2;
        run_op(&mut m, 0, &j, &mut out);
        assert_eq!(out.get(2, 0), 6.0);
    }

    #[test]
    fn empty_sparse_is_noop() {
        let coo = Coo::new(3, 3).unwrap();
        let sparse = Csc::from_coo(&coo);
        let dense = Dense::zeros(3, 16);
        let mut m = machine();
        let mut out = Dense::zeros(3, 16);
        let end = run_op(
            &mut m,
            7,
            &job(&sparse, &dense, MergePolicy::NearMemory),
            &mut out,
        );
        assert_eq!(end, 7);
    }

    #[test]
    fn phase_records_nnz() {
        let (sparse, dense) = fixture();
        let mut m = machine();
        let mut out = Dense::zeros(4, 16);
        run_op(
            &mut m,
            0,
            &job(&sparse, &dense, MergePolicy::NearMemory),
            &mut out,
        );
        assert_eq!(m.phases[0].nnz, 6);
    }
}
