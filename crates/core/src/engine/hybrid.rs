//! HyMM's hybrid aggregation scheduler.
//!
//! Executes the aggregation SpDeMM `Â·(XW)` over a degree-sorted, tiled
//! adjacency matrix exactly as the paper prescribes (§III):
//!
//! 1. **OP first** on region 1 (the high-degree rows, stored CSC): running
//!    the outer product before RWP "prevents partial outputs from being
//!    evicted to off-chip memory", and the tiling threshold guarantees the
//!    region's output rows fit in the DMB, so the near-memory accumulator
//!    merges every partial on chip.
//! 2. **RWP second** over regions 2 and 3 (stored CSR), walked row by row so
//!    each remaining output row is produced exactly once — region 2's
//!    high-degree columns give hot `XW` reuse, region 3's sparse tail avoids
//!    any partial-output merging.

use crate::engine::op::{run_op_sink, OpJob};
use crate::engine::rwp::{run_rwp_sink, RwpJob};
use crate::engine::NumericSink;
use crate::machine::Machine;
use hymm_mem::MatrixKind;
use hymm_sparse::tiling::{RegionFormat, RegionId, TiledMatrix};
use hymm_sparse::{Csc, Csr, Dense};

/// Runs the hybrid aggregation starting at cycle `start`; `dense` is the
/// combination result `XW` in **sorted** node order and `out` receives
/// `Â·XW`, also in sorted order. Returns the end cycle.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the tiled matrix.
pub fn run_hybrid_aggregation(
    m: &mut Machine,
    start: u64,
    tiled: &TiledMatrix,
    dense: &Dense,
    out: &mut Dense,
) -> u64 {
    let bottom = (tiled.threshold() < tiled.n()).then(|| merge_bottom_regions(tiled));
    run_hybrid_aggregation_sink(
        m,
        start,
        tiled,
        bottom.as_ref(),
        dense,
        NumericSink::Accumulate(out),
    )
}

/// [`run_hybrid_aggregation`] with the merged regions-2/3 CSR supplied by
/// the caller (so `crate::prepared::PreparedAdjacency` can build it once per
/// tiling instead of once per layer run) and a [`NumericSink`] output.
///
/// `bottom` must be the [`merge_bottom_regions`] of `tiled`; it is required
/// whenever `tiled.threshold() < tiled.n()`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the tiled matrix, or if `bottom`
/// is `None` while regions 2/3 are non-empty.
pub fn run_hybrid_aggregation_sink(
    m: &mut Machine,
    start: u64,
    tiled: &TiledMatrix,
    bottom: Option<&Csr>,
    dense: &Dense,
    mut out: NumericSink<'_>,
) -> u64 {
    let n = tiled.n();
    let t = tiled.threshold();
    assert_eq!(dense.rows(), n, "XW must have one row per node");
    assert_eq!(out.rows(), n, "output must have one row per node");

    let mut now = start;

    // Phase 1: outer product over the high-degree rows (single tile — the
    // tiling threshold was clamped to the DMB capacity).
    let region1 = tiled.region(RegionId::HighDegreeRows);
    let csc = match &region1.format {
        RegionFormat::Csc(csc) => csc,
        RegionFormat::Csr(_) => unreachable!("region 1 is stored CSC"),
    };
    if t > 0 && csc.nnz() > 0 {
        let job = OpJob {
            sparse: csc,
            sparse_kind: MatrixKind::SparseA,
            dense,
            dense_kind: MatrixKind::Combination,
            col_offset: 0,
            out_row_offset: 0,
            out_kind: MatrixKind::Output,
            merge: m.config.hybrid_merge,
            tile_rows: t,
            name: "aggregation/op-region1",
        };
        now = run_op_sink(m, now, &job, out.reborrow());
    }

    // Phase 2: row-wise product over regions 2 + 3, merged row-by-row into
    // a single CSR in global sorted coordinates.
    if t < n {
        let bottom = bottom.expect("caller supplies regions 2/3 when threshold < n");
        if bottom.nnz() > 0 {
            let job = RwpJob {
                sparse: bottom,
                sparse_kind: MatrixKind::SparseA,
                dense,
                dense_kind: MatrixKind::Combination,
                col_offset: 0,
                out_row_offset: t,
                out_kind: MatrixKind::Output,
                out_allocate: false,
                name: "aggregation/rwp-region23",
            };
            now = run_rwp_sink(m, now, &job, out);
        }
    }
    now
}

/// Merges regions 2 and 3 into one CSR over rows `T..n` with **global**
/// column indices, preserving per-row sorted order (region 2's columns are
/// all `< T`, region 3's are `>= T`).
pub fn merge_bottom_regions(tiled: &TiledMatrix) -> Csr {
    let n = tiled.n();
    let t = tiled.threshold();
    let rows = n - t;
    let take_csr = |id: RegionId| -> &Csr {
        match &tiled.region(id).format {
            RegionFormat::Csr(csr) => csr,
            RegionFormat::Csc(_) => unreachable!("regions 2/3 are stored CSR"),
        }
    };
    let r2 = take_csr(RegionId::HighDegreeCols);
    let r3 = take_csr(RegionId::SparseRest);

    let nnz = r2.nnz() + r3.nnz();
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    row_ptr.push(0);
    for r in 0..rows {
        if r < r2.rows() {
            let (cols, vals) = r2.row(r);
            col_idx.extend_from_slice(cols);
            values.extend_from_slice(vals);
        }
        if r < r3.rows() {
            let (cols, vals) = r3.row(r);
            col_idx.extend(cols.iter().map(|&c| c + t as u32));
            values.extend_from_slice(vals);
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_raw_parts(rows, n, row_ptr, col_idx, values).expect("merged regions form a valid CSR")
}

/// Converts region 1 to CSR (used by ablations that run RWP everywhere).
pub fn region1_as_csc(tiled: &TiledMatrix) -> &Csc {
    match &tiled.region(RegionId::HighDegreeRows).format {
        RegionFormat::Csc(csc) => csc,
        RegionFormat::Csr(_) => unreachable!("region 1 is stored CSC"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use hymm_sparse::spdemm;
    use hymm_sparse::tiling::TilingConfig;
    use hymm_sparse::Coo;

    fn sorted_power_law(n: usize) -> Coo {
        // hub-heavy sorted graph: node i connects to nodes i+1..i+deg(i)
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            let deg = ((n - i) / 2).min(n - 1);
            for d in 1..=deg {
                let j = (i + d) % n;
                if j != i {
                    coo.push(i, j, 1.0 + (d as f32) * 0.1).unwrap();
                }
            }
        }
        coo
    }

    #[test]
    fn hybrid_matches_reference() {
        let adj = sorted_power_law(20);
        let tiled = TiledMatrix::new(&adj, &TilingConfig::default()).unwrap();
        let dense = Dense::from_fn(20, 16, |r, c| ((r + c) % 7) as f32 * 0.25);
        let mut m = Machine::new(&AcceleratorConfig::default());
        let mut out = Dense::zeros(20, 16);
        run_hybrid_aggregation(&mut m, 0, &tiled, &dense, &mut out);

        let want = spdemm::row_wise_product(&Csr::from_coo(&adj), &dense);
        assert!(
            out.approx_eq(&want, 1e-4),
            "max diff {}",
            out.max_abs_diff(&want)
        );
    }

    #[test]
    fn merge_bottom_regions_is_lossless() {
        let adj = sorted_power_law(15);
        let tiled = TiledMatrix::new(&adj, &TilingConfig::default()).unwrap();
        let t = tiled.threshold();
        let bottom = merge_bottom_regions(&tiled);
        let full = Csr::from_coo(&adj);
        for r in t..15 {
            let (want_cols, want_vals) = full.row(r);
            let (got_cols, got_vals) = bottom.row(r - t);
            assert_eq!(got_cols, want_cols, "row {r} columns");
            assert_eq!(got_vals, want_vals, "row {r} values");
        }
    }

    #[test]
    fn records_both_phases() {
        let adj = sorted_power_law(20);
        let tiled = TiledMatrix::new(&adj, &TilingConfig::default()).unwrap();
        let dense = Dense::from_fn(20, 16, |_, _| 1.0);
        let mut m = Machine::new(&AcceleratorConfig::default());
        let mut out = Dense::zeros(20, 16);
        run_hybrid_aggregation(&mut m, 0, &tiled, &dense, &mut out);
        let names: Vec<_> = m.phases.iter().map(|p| p.name).collect();
        assert!(names.contains(&"aggregation/op-region1"));
        assert!(names.contains(&"aggregation/rwp-region23"));
    }

    #[test]
    fn zero_threshold_runs_pure_rwp() {
        let adj = sorted_power_law(10);
        let cfg = TilingConfig {
            threshold_fraction: 0.0,
            dmb_capacity_rows: None,
        };
        let tiled = TiledMatrix::new(&adj, &cfg).unwrap();
        let dense = Dense::from_fn(10, 16, |r, _| r as f32);
        let mut m = Machine::new(&AcceleratorConfig::default());
        let mut out = Dense::zeros(10, 16);
        run_hybrid_aggregation(&mut m, 0, &tiled, &dense, &mut out);
        let want = spdemm::row_wise_product(&Csr::from_coo(&adj), &dense);
        assert!(out.approx_eq(&want, 1e-4));
        assert_eq!(m.phases.len(), 1);
    }

    #[test]
    fn full_threshold_runs_pure_op() {
        let adj = sorted_power_law(10);
        let cfg = TilingConfig {
            threshold_fraction: 1.0,
            dmb_capacity_rows: None,
        };
        let tiled = TiledMatrix::new(&adj, &cfg).unwrap();
        let dense = Dense::from_fn(10, 16, |r, _| r as f32);
        let mut m = Machine::new(&AcceleratorConfig::default());
        let mut out = Dense::zeros(10, 16);
        run_hybrid_aggregation(&mut m, 0, &tiled, &dense, &mut out);
        let want = spdemm::row_wise_product(&Csr::from_coo(&adj), &dense);
        assert!(out.approx_eq(&want, 1e-4));
        assert_eq!(m.phases.len(), 1);
        assert!(m.phases[0].name.contains("op-region1"));
    }
}
