//! Accelerator configuration.

use hymm_mem::MemConfig;
use hymm_sparse::SparseError;

/// Which SpDeMM dataflow the accelerator runs (paper §V: "The RWP dataflow
/// represents GROW, and the OP architecture represents GCNAX").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Pure row-wise product on the unsorted graph (GROW-style baseline).
    RowWise,
    /// Pure outer product on the unsorted graph (GCNAX-style baseline).
    Outer,
    /// HyMM: degree sorting + region tiling, OP on region 1, RWP on
    /// regions 2/3, near-memory accumulator.
    Hybrid,
    /// Pure column-wise product (AWB-GCN-style; Table I's fourth family —
    /// an extension, not part of the paper's evaluation).
    ColumnWise,
}

impl Dataflow {
    /// All dataflows in the paper's comparison order.
    pub const ALL: [Dataflow; 3] = [Dataflow::Outer, Dataflow::RowWise, Dataflow::Hybrid];

    /// The paper's three dataflows plus the column-wise-product extension.
    pub const EXTENDED: [Dataflow; 4] = [
        Dataflow::Outer,
        Dataflow::ColumnWise,
        Dataflow::RowWise,
        Dataflow::Hybrid,
    ];

    /// Label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Dataflow::RowWise => "RWP",
            Dataflow::Outer => "OP",
            Dataflow::Hybrid => "HyMM",
            Dataflow::ColumnWise => "CWP",
        }
    }
}

/// Which simulation core advances time.
///
/// Both cores produce **bit-identical** [`crate::stats::SimReport`]s — the
/// choice is purely a host-performance trade, pinned by the
/// `scheduler_equivalence` differential test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// The legacy core: every component transaction walks the full line
    /// table / forward index on every access.
    Stepped,
    /// The event-driven core: engines open a *phase span* over their operand
    /// ranges; components batch their state into range-indexed wake lists
    /// and skip provably-inert cycles, materialising the exact stepped-core
    /// state at every phase boundary (and at any access the span cannot
    /// prove equivalent, where it falls back to the stepped path).
    Event,
}

impl SchedulerKind {
    /// Label used by `--scheduler` and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Stepped => "stepped",
            SchedulerKind::Event => "event",
        }
    }

    /// Parses a `--scheduler` argument value.
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s {
            "stepped" => Some(SchedulerKind::Stepped),
            "event" => Some(SchedulerKind::Event),
            _ => None,
        }
    }
}

/// How partial outputs produced by the outer product are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergePolicy {
    /// HyMM's near-memory accumulator beside the DMB: a write hit merges in
    /// place without occupying a PE (paper §IV-D "Write with accumulation").
    NearMemory,
    /// Conventional read-modify-write through the PE adder: each merge
    /// costs a buffer read, a PE add and a write back (baseline OP engines).
    PeReadModifyWrite,
    /// No merging on the fly: partial products are materialised to a log
    /// and merged in a separate pass (traditional outer-product
    /// implementations, the "without accumulator" series of Fig. 10).
    Materialize,
}

/// Full accelerator configuration, defaulting to the paper's Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Memory subsystem parameters.
    pub mem: MemConfig,
    /// Number of MAC lanes in the PE array (16 in Table III). One
    /// scalar-vector operation uses all lanes for one cycle per 64-byte
    /// chunk.
    pub num_pes: usize,
    /// Merge policy for the hybrid dataflow's OP phase.
    pub hybrid_merge: MergePolicy,
    /// Merge policy for the pure-OP baseline.
    pub baseline_merge: MergePolicy,
    /// Maximum loads outstanding ahead of the PE (memory-level-parallelism
    /// window; bounded by the LSQ in hardware).
    pub mlp_window: usize,
    /// Output-row tile size for the OP engine, in rows. `None` derives it
    /// from the DMB capacity (half the buffer for outputs, as GCNAX-style
    /// loop tiling does).
    pub op_tile_rows: Option<usize>,
    /// Tiling threshold as a fraction of nodes for the hybrid dataflow
    /// (20 % in the paper, clamped to what the DMB can hold).
    pub tiling_fraction: f64,
    /// Whether the LSQ forwards combination-phase stores to
    /// aggregation-phase loads (paper §IV-B). Disable for ablation.
    pub lsq_forwarding: bool,
    /// MAC latency in cycles from issue to result (1 in Table III). With
    /// [`Self::mac_pipelined`] the issue port still accepts one operation
    /// per cycle; without it the initiation interval equals the latency.
    pub mac_latency: u64,
    /// Whether the MAC pipeline accepts a new issue every cycle regardless
    /// of latency (initiation interval 1). Irrelevant at `mac_latency == 1`.
    pub mac_pipelined: bool,
    /// Per-lane operand gating à la FlexVector's flexible VRF: a row
    /// shorter than the vector width charges only the occupied lanes'
    /// energy, and the engines may pack several short rows into one issue
    /// slot (each issue stays slot-granular). Under gating the CWP
    /// extension's lane efficiency becomes a derived quantity instead of
    /// [`Self::cwp_lane_efficiency`].
    pub lane_gating: bool,
    /// Useful fraction of MAC lanes per cycle for the column-wise-product
    /// extension (models AWB-GCN's row imbalance before rebalancing).
    pub cwp_lane_efficiency: f64,
    /// Run the `crate::audit` invariant checks at every phase boundary and
    /// at report time, panicking on any violation. Observation-only: timing
    /// and statistics are identical with the flag on or off.
    pub audit: bool,
    /// Which simulation core advances time (bit-identical results either
    /// way; `Event` additionally enables span-mode fast paths in the DMB).
    pub scheduler: SchedulerKind,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            mem: MemConfig::default(),
            num_pes: 16,
            hybrid_merge: MergePolicy::NearMemory,
            baseline_merge: MergePolicy::Materialize,
            mlp_window: 64,
            op_tile_rows: None,
            tiling_fraction: 0.20,
            lsq_forwarding: true,
            mac_latency: 1,
            mac_pipelined: false,
            lane_gating: false,
            cwp_lane_efficiency: 0.8,
            audit: false,
            scheduler: SchedulerKind::Event,
        }
    }
}

impl AcceleratorConfig {
    /// Validates the configuration, returning
    /// [`SparseError::InvalidConfig`] for values that would otherwise panic
    /// deep inside construction (`num_pes == 0` in `PeArray`) or silently
    /// corrupt utilisation math (a NaN, non-positive or >1 CWP lane
    /// efficiency). Called by [`crate::sim::run_gcn_layer_prepared`] before
    /// any hardware state is built.
    pub fn validate(&self) -> Result<(), SparseError> {
        if self.num_pes == 0 {
            return Err(SparseError::InvalidConfig(
                "num_pes must be at least 1".to_string(),
            ));
        }
        if self.mac_latency == 0 {
            return Err(SparseError::InvalidConfig(
                "mac_latency must be at least 1 cycle".to_string(),
            ));
        }
        let e = self.cwp_lane_efficiency;
        if !e.is_finite() || e <= 0.0 || e > 1.0 {
            return Err(SparseError::InvalidConfig(format!(
                "cwp_lane_efficiency must be a finite value in (0, 1], got {e}"
            )));
        }
        Ok(())
    }

    /// MAC initiation interval implied by the latency/pipelining knobs:
    /// cycles between back-to-back issues on the vector port.
    pub fn mac_initiation_interval(&self) -> u64 {
        if self.mac_pipelined {
            1
        } else {
            self.mac_latency.max(1)
        }
    }

    /// Effective OP output-tile size in rows.
    pub fn op_tile_rows(&self) -> usize {
        self.op_tile_rows
            .unwrap_or_else(|| (self.mem.dmb_lines() / 2).max(1))
    }

    /// Rows of a `dim`-wide dense matrix the DMB can hold (used to clamp
    /// the hybrid tiling threshold, paper §IV-E).
    pub fn dmb_capacity_rows(&self, dim: usize) -> usize {
        (self.mem.dmb_lines() / self.mem.lines_per_row(dim)).max(1)
    }

    /// Output rows per CWP tile: one output-column slice (4 B per row) must
    /// fit in half the DMB.
    pub fn cwp_tile_rows(&self) -> usize {
        (self.mem.dmb_bytes / 8).max(self.mem.elems_per_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.num_pes, 16);
        assert_eq!(c.tiling_fraction, 0.20);
        assert_eq!(c.hybrid_merge, MergePolicy::NearMemory);
        assert_eq!(c.op_tile_rows(), 2048);
        assert_eq!(c.scheduler, SchedulerKind::Event);
    }

    #[test]
    fn scheduler_labels_roundtrip() {
        for kind in [SchedulerKind::Stepped, SchedulerKind::Event] {
            assert_eq!(SchedulerKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(SchedulerKind::parse("calendar"), None);
    }

    #[test]
    fn dmb_capacity_rows_for_layer_dim() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.dmb_capacity_rows(16), 4096);
        assert_eq!(c.dmb_capacity_rows(32), 2048);
    }

    #[test]
    fn default_config_validates() {
        assert!(AcceleratorConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_zero_pes() {
        let c = AcceleratorConfig {
            num_pes: 0,
            ..AcceleratorConfig::default()
        };
        match c.validate() {
            Err(SparseError::InvalidConfig(msg)) => assert!(msg.contains("num_pes")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn rejects_zero_mac_latency() {
        let c = AcceleratorConfig {
            mac_latency: 0,
            ..AcceleratorConfig::default()
        };
        match c.validate() {
            Err(SparseError::InvalidConfig(msg)) => assert!(msg.contains("mac_latency")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_cwp_lane_efficiency() {
        for bad in [f64::NAN, f64::INFINITY, 0.0, -0.3, 1.5] {
            let c = AcceleratorConfig {
                cwp_lane_efficiency: bad,
                ..AcceleratorConfig::default()
            };
            match c.validate() {
                Err(SparseError::InvalidConfig(msg)) => {
                    assert!(msg.contains("cwp_lane_efficiency"), "msg: {msg}")
                }
                other => panic!("expected InvalidConfig for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn initiation_interval_follows_pipelining() {
        let mut c = AcceleratorConfig {
            mac_latency: 4,
            ..AcceleratorConfig::default()
        };
        assert_eq!(c.mac_initiation_interval(), 4);
        c.mac_pipelined = true;
        assert_eq!(c.mac_initiation_interval(), 1);
    }

    #[test]
    fn dataflow_labels() {
        assert_eq!(Dataflow::Hybrid.label(), "HyMM");
        assert_eq!(Dataflow::ALL.len(), 3);
    }
}
