//! Accelerator configuration.

use hymm_mem::MemConfig;
use hymm_sparse::SparseError;

/// Which SpDeMM dataflow the accelerator runs (paper §V: "The RWP dataflow
/// represents GROW, and the OP architecture represents GCNAX").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Pure row-wise product on the unsorted graph (GROW-style baseline).
    RowWise,
    /// Pure outer product on the unsorted graph (GCNAX-style baseline).
    Outer,
    /// HyMM: degree sorting + region tiling, OP on region 1, RWP on
    /// regions 2/3, near-memory accumulator.
    Hybrid,
    /// Pure column-wise product (AWB-GCN-style; Table I's fourth family —
    /// an extension, not part of the paper's evaluation).
    ColumnWise,
}

impl Dataflow {
    /// All dataflows in the paper's comparison order.
    pub const ALL: [Dataflow; 3] = [Dataflow::Outer, Dataflow::RowWise, Dataflow::Hybrid];

    /// The paper's three dataflows plus the column-wise-product extension.
    pub const EXTENDED: [Dataflow; 4] = [
        Dataflow::Outer,
        Dataflow::ColumnWise,
        Dataflow::RowWise,
        Dataflow::Hybrid,
    ];

    /// Label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Dataflow::RowWise => "RWP",
            Dataflow::Outer => "OP",
            Dataflow::Hybrid => "HyMM",
            Dataflow::ColumnWise => "CWP",
        }
    }

    /// Parses a table label (case-insensitive). The inverse of
    /// [`Dataflow::label`].
    pub fn parse(s: &str) -> Option<Dataflow> {
        Dataflow::EXTENDED
            .into_iter()
            .find(|d| d.label().eq_ignore_ascii_case(s))
    }
}

/// Folds pre-hashed words into one FNV-1a digest, tagged by position.
///
/// The composition half of the content-hash scheme: subsystems hash their
/// own state ([`AcceleratorConfig::content_hash`] for the architectural
/// knobs, `DatasetSpec::content_hash` in `hymm-graph` for the workload) and
/// callers that need a joint key — such as the `hymm-serve` request
/// dedupe/cache — combine the digests with this instead of inventing
/// another mixing function. Word order matters.
pub fn combine_hashes(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut byte = |b: u8| {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (i, w) in words.iter().enumerate() {
        byte(i as u8);
        for b in w.to_le_bytes() {
            byte(b);
        }
    }
    h
}

/// Which simulation core advances time.
///
/// Both cores produce **bit-identical** [`crate::stats::SimReport`]s — the
/// choice is purely a host-performance trade, pinned by the
/// `scheduler_equivalence` differential test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// The legacy core: every component transaction walks the full line
    /// table / forward index on every access.
    Stepped,
    /// The event-driven core: engines open a *phase span* over their operand
    /// ranges; components batch their state into range-indexed wake lists
    /// and skip provably-inert cycles, materialising the exact stepped-core
    /// state at every phase boundary (and at any access the span cannot
    /// prove equivalent, where it falls back to the stepped path).
    Event,
}

impl SchedulerKind {
    /// Label used by `--scheduler` and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Stepped => "stepped",
            SchedulerKind::Event => "event",
        }
    }

    /// Parses a `--scheduler` argument value.
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s {
            "stepped" => Some(SchedulerKind::Stepped),
            "event" => Some(SchedulerKind::Event),
            _ => None,
        }
    }
}

/// How partial outputs produced by the outer product are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergePolicy {
    /// HyMM's near-memory accumulator beside the DMB: a write hit merges in
    /// place without occupying a PE (paper §IV-D "Write with accumulation").
    NearMemory,
    /// Conventional read-modify-write through the PE adder: each merge
    /// costs a buffer read, a PE add and a write back (baseline OP engines).
    PeReadModifyWrite,
    /// No merging on the fly: partial products are materialised to a log
    /// and merged in a separate pass (traditional outer-product
    /// implementations, the "without accumulator" series of Fig. 10).
    Materialize,
}

/// Full accelerator configuration, defaulting to the paper's Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Memory subsystem parameters.
    pub mem: MemConfig,
    /// Number of MAC lanes in the PE array (16 in Table III). One
    /// scalar-vector operation uses all lanes for one cycle per 64-byte
    /// chunk.
    pub num_pes: usize,
    /// Merge policy for the hybrid dataflow's OP phase.
    pub hybrid_merge: MergePolicy,
    /// Merge policy for the pure-OP baseline.
    pub baseline_merge: MergePolicy,
    /// Maximum loads outstanding ahead of the PE (memory-level-parallelism
    /// window; bounded by the LSQ in hardware).
    pub mlp_window: usize,
    /// Output-row tile size for the OP engine, in rows. `None` derives it
    /// from the DMB capacity (half the buffer for outputs, as GCNAX-style
    /// loop tiling does).
    pub op_tile_rows: Option<usize>,
    /// Tiling threshold as a fraction of nodes for the hybrid dataflow
    /// (20 % in the paper, clamped to what the DMB can hold).
    pub tiling_fraction: f64,
    /// Whether the LSQ forwards combination-phase stores to
    /// aggregation-phase loads (paper §IV-B). Disable for ablation.
    pub lsq_forwarding: bool,
    /// MAC latency in cycles from issue to result (1 in Table III). With
    /// [`Self::mac_pipelined`] the issue port still accepts one operation
    /// per cycle; without it the initiation interval equals the latency.
    pub mac_latency: u64,
    /// Whether the MAC pipeline accepts a new issue every cycle regardless
    /// of latency (initiation interval 1). Irrelevant at `mac_latency == 1`.
    pub mac_pipelined: bool,
    /// Per-lane operand gating à la FlexVector's flexible VRF: a row
    /// shorter than the vector width charges only the occupied lanes'
    /// energy, and the engines may pack several short rows into one issue
    /// slot (each issue stays slot-granular). Under gating the CWP
    /// extension's lane efficiency becomes a derived quantity instead of
    /// [`Self::cwp_lane_efficiency`].
    pub lane_gating: bool,
    /// Useful fraction of MAC lanes per cycle for the column-wise-product
    /// extension (models AWB-GCN's row imbalance before rebalancing).
    pub cwp_lane_efficiency: f64,
    /// Run the `crate::audit` invariant checks at every phase boundary and
    /// at report time, panicking on any violation. Observation-only: timing
    /// and statistics are identical with the flag on or off.
    pub audit: bool,
    /// Which simulation core advances time (bit-identical results either
    /// way; `Event` additionally enables span-mode fast paths in the DMB).
    pub scheduler: SchedulerKind,
    /// Interval-sampled telemetry (see [`crate::metrics`]). `None` (the
    /// default) is pinned bit-identical to a build without the subsystem;
    /// `Some` leaves every cycle count unchanged and adds a bounded
    /// time series to [`crate::stats::SimReport::metrics`].
    pub metrics: Option<hymm_mem::metrics::MetricsConfig>,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            mem: MemConfig::default(),
            num_pes: 16,
            hybrid_merge: MergePolicy::NearMemory,
            baseline_merge: MergePolicy::Materialize,
            mlp_window: 64,
            op_tile_rows: None,
            tiling_fraction: 0.20,
            lsq_forwarding: true,
            mac_latency: 1,
            mac_pipelined: false,
            lane_gating: false,
            cwp_lane_efficiency: 0.8,
            audit: false,
            scheduler: SchedulerKind::Event,
            metrics: None,
        }
    }
}

impl AcceleratorConfig {
    /// Validates the configuration, returning
    /// [`SparseError::InvalidConfig`] for values that would otherwise panic
    /// deep inside construction (`num_pes == 0` in `PeArray`) or silently
    /// corrupt utilisation math (a NaN, non-positive or >1 CWP lane
    /// efficiency). The memory side is delegated to [`MemConfig::validate`]
    /// (line-granular DMB capacity, non-zero MSHR/LSQ, demand-priority
    /// prefetch cap). Called by [`crate::sim::run_gcn_layer_prepared`]
    /// before any hardware state is built; configuration generators — the
    /// DSE in particular — rely on it instead of re-checking knob
    /// combinations themselves.
    pub fn validate(&self) -> Result<(), SparseError> {
        self.mem.validate()?;
        if self.num_pes == 0 {
            return Err(SparseError::InvalidConfig(
                "num_pes must be at least 1".to_string(),
            ));
        }
        if self.mac_latency == 0 {
            return Err(SparseError::InvalidConfig(
                "mac_latency must be at least 1 cycle".to_string(),
            ));
        }
        let e = self.cwp_lane_efficiency;
        if !e.is_finite() || e <= 0.0 || e > 1.0 {
            return Err(SparseError::InvalidConfig(format!(
                "cwp_lane_efficiency must be a finite value in (0, 1], got {e}"
            )));
        }
        if let Some(m) = &self.metrics {
            if m.sample_every == 0 {
                return Err(SparseError::InvalidConfig(
                    "metrics sample_every must be at least 1 cycle".to_string(),
                ));
            }
            if m.capacity == 0 {
                return Err(SparseError::InvalidConfig(
                    "metrics capacity must be at least 1 sample".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// MAC initiation interval implied by the latency/pipelining knobs:
    /// cycles between back-to-back issues on the vector port.
    pub fn mac_initiation_interval(&self) -> u64 {
        if self.mac_pipelined {
            1
        } else {
            self.mac_latency.max(1)
        }
    }

    /// Effective OP output-tile size in rows.
    pub fn op_tile_rows(&self) -> usize {
        self.op_tile_rows
            .unwrap_or_else(|| (self.mem.dmb_lines() / 2).max(1))
    }

    /// Rows of a `dim`-wide dense matrix the DMB can hold (used to clamp
    /// the hybrid tiling threshold, paper §IV-E).
    pub fn dmb_capacity_rows(&self, dim: usize) -> usize {
        (self.mem.dmb_lines() / self.mem.lines_per_row(dim)).max(1)
    }

    /// Output rows per CWP tile: one output-column slice (4 B per row) must
    /// fit in half the DMB.
    pub fn cwp_tile_rows(&self) -> usize {
        (self.mem.dmb_bytes / 8).max(self.mem.elems_per_line())
    }

    /// Stable 64-bit content hash of every **architecturally visible** knob
    /// — the identity the DSE memoises evaluations by.
    ///
    /// Host-observability knobs are deliberately excluded: `audit`,
    /// `scheduler`, `metrics`, `mem.trace` and `mem.trace_capacity` are
    /// pinned cycle-identical by the audit/scheduler-equivalence/trace/
    /// metrics tests, so two
    /// configs differing only there produce the same [`crate::stats::SimReport`]
    /// and may legitimately share a memo entry. Everything that can move a
    /// cycle or a byte is folded in (floats by IEEE bit pattern, enums by
    /// label), with a per-field tag so field reordering or a new knob
    /// cannot silently collide.
    pub fn content_hash(&self) -> u64 {
        // FNV-1a, 64-bit: tiny, dependency-free, stable across platforms.
        struct Fnv(u64);
        impl Fnv {
            fn byte(&mut self, b: u8) {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
            }
            fn word(&mut self, tag: u8, v: u64) {
                self.byte(tag);
                for b in v.to_le_bytes() {
                    self.byte(b);
                }
            }
        }
        let mut f = Fnv(0xcbf2_9ce4_8422_2325);
        let m = &self.mem;
        f.word(0x01, m.dram_bytes_per_cycle);
        f.word(0x02, m.dram_latency);
        f.word(0x03, m.dram_random_penalty);
        f.word(0x04, m.dram_channels as u64);
        f.word(0x05, m.dmb_bytes as u64);
        f.word(0x06, m.line_bytes as u64);
        f.word(0x07, m.mshr_count as u64);
        f.word(0x08, m.dmb_hit_latency);
        f.word(0x09, m.lsq_entries as u64);
        f.word(0x0a, m.smq_ptr_bytes as u64);
        f.word(0x0b, m.smq_idx_bytes as u64);
        f.word(0x0c, m.smq_lookahead_lines as u64);
        f.word(0x0d, m.prefetch.label().len() as u64);
        for b in m.prefetch.label().bytes() {
            f.byte(b);
        }
        f.word(0x0e, m.prefetch_degree as u64);
        f.word(0x0f, m.prefetch_mshr_cap as u64);
        f.word(0x10, m.class_eviction as u64);
        f.word(0x20, self.num_pes as u64);
        let merge_tag = |p: MergePolicy| match p {
            MergePolicy::NearMemory => 0u64,
            MergePolicy::PeReadModifyWrite => 1,
            MergePolicy::Materialize => 2,
        };
        f.word(0x21, merge_tag(self.hybrid_merge));
        f.word(0x22, merge_tag(self.baseline_merge));
        f.word(0x23, self.mlp_window as u64);
        f.word(0x24, self.op_tile_rows.map_or(u64::MAX, |r| r as u64));
        f.word(0x25, self.tiling_fraction.to_bits());
        f.word(0x26, self.lsq_forwarding as u64);
        f.word(0x27, self.mac_latency);
        f.word(0x28, self.mac_pipelined as u64);
        f.word(0x29, self.lane_gating as u64);
        f.word(0x2a, self.cwp_lane_efficiency.to_bits());
        f.0
    }
}

/// Named configuration presets applied by the bench binaries' `--preset`
/// flag before any individual knob override.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// The paper's Table III configuration — [`AcceleratorConfig::default`],
    /// untouched.
    Default,
    /// The best iso-area-budget configuration found by the `dse` binary
    /// (stall-guided search over the 972-point default space, ≤2× the
    /// Table III total area at 7 nm; CR+AP at `--scale 600`): 32 gated MAC
    /// lanes (FlexVector-style flexible VRF, 2 short rows per issue slot at
    /// the suite's uniform layer width of 16), a 512 KB DMB with 64 MSHRs,
    /// smq-stream data prefetching at degree 4, and a 0.10 hybrid tiling
    /// fraction. Measured at the search's reference point: 1.09× combined
    /// three-dataflow speedup over Table III (OP 1.11×) at 1.80× area. See
    /// DESIGN.md §13 for the search and the full before/after.
    Tuned,
}

impl Preset {
    /// Every preset, in `--help` order.
    pub const ALL: [Preset; 2] = [Preset::Default, Preset::Tuned];

    /// Label used by `--preset` and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Preset::Default => "default",
            Preset::Tuned => "tuned",
        }
    }

    /// Parses a `--preset` argument value.
    pub fn parse(s: &str) -> Option<Preset> {
        Preset::ALL.into_iter().find(|p| p.label() == s)
    }

    /// Applies the preset onto a configuration (the `Default` preset is a
    /// no-op, so flags layered on top always see Table III as the base).
    pub fn apply(&self, config: &mut AcceleratorConfig) {
        match self {
            Preset::Default => {}
            Preset::Tuned => {
                config.num_pes = 32;
                config.lane_gating = true;
                config.mem.dmb_bytes = 512 * 1024;
                config.mem.mshr_count = 64;
                config.mem.prefetch = hymm_mem::PrefetchPolicy::SmqStream;
                config.mem.prefetch_degree = 4;
                config.tiling_fraction = 0.10;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.num_pes, 16);
        assert_eq!(c.tiling_fraction, 0.20);
        assert_eq!(c.hybrid_merge, MergePolicy::NearMemory);
        assert_eq!(c.op_tile_rows(), 2048);
        assert_eq!(c.scheduler, SchedulerKind::Event);
    }

    #[test]
    fn scheduler_labels_roundtrip() {
        for kind in [SchedulerKind::Stepped, SchedulerKind::Event] {
            assert_eq!(SchedulerKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(SchedulerKind::parse("calendar"), None);
    }

    #[test]
    fn dmb_capacity_rows_for_layer_dim() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.dmb_capacity_rows(16), 4096);
        assert_eq!(c.dmb_capacity_rows(32), 2048);
    }

    #[test]
    fn default_config_validates() {
        assert!(AcceleratorConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_zero_pes() {
        let c = AcceleratorConfig {
            num_pes: 0,
            ..AcceleratorConfig::default()
        };
        match c.validate() {
            Err(SparseError::InvalidConfig(msg)) => assert!(msg.contains("num_pes")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn rejects_zero_mac_latency() {
        let c = AcceleratorConfig {
            mac_latency: 0,
            ..AcceleratorConfig::default()
        };
        match c.validate() {
            Err(SparseError::InvalidConfig(msg)) => assert!(msg.contains("mac_latency")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_cwp_lane_efficiency() {
        for bad in [f64::NAN, f64::INFINITY, 0.0, -0.3, 1.5] {
            let c = AcceleratorConfig {
                cwp_lane_efficiency: bad,
                ..AcceleratorConfig::default()
            };
            match c.validate() {
                Err(SparseError::InvalidConfig(msg)) => {
                    assert!(msg.contains("cwp_lane_efficiency"), "msg: {msg}")
                }
                other => panic!("expected InvalidConfig for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn initiation_interval_follows_pipelining() {
        let mut c = AcceleratorConfig {
            mac_latency: 4,
            ..AcceleratorConfig::default()
        };
        assert_eq!(c.mac_initiation_interval(), 4);
        c.mac_pipelined = true;
        assert_eq!(c.mac_initiation_interval(), 1);
    }

    #[test]
    fn dataflow_labels() {
        assert_eq!(Dataflow::Hybrid.label(), "HyMM");
        assert_eq!(Dataflow::ALL.len(), 3);
    }

    #[test]
    fn validate_covers_the_memory_side() {
        let mut c = AcceleratorConfig::default();
        c.mem.mshr_count = 0;
        match c.validate() {
            Err(SparseError::InvalidConfig(msg)) => assert!(msg.contains("mshr_count"), "{msg}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let mut c = AcceleratorConfig::default();
        c.mem.dmb_bytes = 1000; // not a multiple of the 64 B line
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::default();
        c.mem.lsq_entries = 0;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::default();
        c.mem.prefetch_mshr_cap = c.mem.mshr_count;
        assert!(c.validate().is_err());
    }

    #[test]
    fn content_hash_is_stable_and_field_sensitive() {
        let base = AcceleratorConfig::default();
        assert_eq!(base.content_hash(), base.clone().content_hash());
        // Every architecturally visible knob must move the hash.
        let mut variants: Vec<AcceleratorConfig> = vec![
            AcceleratorConfig {
                num_pes: 32,
                ..base.clone()
            },
            AcceleratorConfig {
                tiling_fraction: 0.25,
                ..base.clone()
            },
            AcceleratorConfig {
                lane_gating: true,
                ..base.clone()
            },
            AcceleratorConfig {
                mac_latency: 4,
                ..base.clone()
            },
        ];
        let mut c = base.clone();
        c.mem.dmb_bytes = 512 * 1024;
        variants.push(c);
        let mut c = base.clone();
        c.mem.mshr_count = 64;
        variants.push(c);
        let mut c = base.clone();
        c.mem.prefetch = hymm_mem::PrefetchPolicy::SmqStream;
        variants.push(c);
        let mut hashes: Vec<u64> = variants.iter().map(|v| v.content_hash()).collect();
        hashes.push(base.content_hash());
        let distinct: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(distinct.len(), hashes.len(), "hash collision across knobs");
    }

    #[test]
    fn content_hash_ignores_host_observability_knobs() {
        // audit / scheduler / tracing / metrics are pinned
        // cycle-identical, so two configs differing only there share a
        // memo entry by design.
        let base = AcceleratorConfig::default();
        let mut host = AcceleratorConfig {
            audit: true,
            scheduler: SchedulerKind::Stepped,
            metrics: Some(hymm_mem::metrics::MetricsConfig {
                sample_every: 512,
                capacity: 64,
            }),
            ..base.clone()
        };
        host.mem.trace = true;
        host.mem.trace_capacity = 16;
        assert_eq!(base.content_hash(), host.content_hash());
    }

    #[test]
    fn dataflow_parse_round_trips() {
        for d in Dataflow::EXTENDED {
            assert_eq!(Dataflow::parse(d.label()), Some(d));
            assert_eq!(Dataflow::parse(&d.label().to_lowercase()), Some(d));
        }
        assert_eq!(Dataflow::parse("nope"), None);
    }

    #[test]
    fn combine_hashes_is_order_and_value_sensitive() {
        let a = combine_hashes(&[1, 2, 3]);
        assert_eq!(a, combine_hashes(&[1, 2, 3]));
        assert_ne!(a, combine_hashes(&[3, 2, 1]));
        assert_ne!(a, combine_hashes(&[1, 2]));
        assert_ne!(a, combine_hashes(&[1, 2, 4]));
        // A zero word still advances the state (tag byte per position).
        assert_ne!(combine_hashes(&[0]), combine_hashes(&[0, 0]));
    }

    #[test]
    fn rejects_degenerate_metrics_config() {
        for (every, cap, want) in [(0u64, 64usize, "sample_every"), (64, 0, "capacity")] {
            let c = AcceleratorConfig {
                metrics: Some(hymm_mem::metrics::MetricsConfig {
                    sample_every: every,
                    capacity: cap,
                }),
                ..AcceleratorConfig::default()
            };
            match c.validate() {
                Err(SparseError::InvalidConfig(msg)) => assert!(msg.contains(want), "msg: {msg}"),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
        let c = AcceleratorConfig {
            metrics: Some(hymm_mem::metrics::MetricsConfig::default()),
            ..AcceleratorConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn preset_labels_roundtrip_and_default_is_noop() {
        for p in Preset::ALL {
            assert_eq!(Preset::parse(p.label()), Some(p));
        }
        assert_eq!(Preset::parse("mystery"), None);
        let mut c = AcceleratorConfig::default();
        Preset::Default.apply(&mut c);
        assert_eq!(c, AcceleratorConfig::default());
    }

    #[test]
    fn tuned_preset_validates_within_twice_default_area() {
        let mut c = AcceleratorConfig::default();
        Preset::Tuned.apply(&mut c);
        assert!(c.validate().is_ok());
        assert_ne!(
            c.content_hash(),
            AcceleratorConfig::default().content_hash()
        );
        let base = crate::area::estimate_area(&AcceleratorConfig::default()).total_7nm();
        let tuned = crate::area::estimate_area(&c).total_7nm();
        assert!(
            tuned <= 2.0 * base,
            "tuned preset busts the iso-area budget: {tuned:.3} vs 2x{base:.3}"
        );
    }
}
