//! Runtime invariant audit.
//!
//! Cheap, always-compilable consistency checks over the machine's redundant
//! counters. Simulator bugs rarely crash — they show up as *different but
//! plausible* cycle counts — so each check here ties together two
//! independently maintained views of the same quantity and flags any
//! disagreement:
//!
//! - **DMB occupancy conservation**: every line that ever entered the buffer
//!   is accounted for as evicted, dropped by a flush/invalidate, or still
//!   resident (`line_fills == evictions + line_drops + occupancy`). Catches
//!   lost or double-counted lines in the open-addressed line table.
//! - **DRAM traffic accounting**: the per-kind traffic table must sum to the
//!   independently tracked grand total. Catches kind-indexing bugs that
//!   would silently skew the Fig. 11 breakdown.
//! - **Cycle monotonicity across phases**: phase boundaries never run
//!   backwards, and the report's total covers every phase. Catches cursor
//!   mix-ups in the engines' absolute-cycle `max()` chains.
//! - **LSQ forward-vs-store consistency**: forwards cannot outnumber loads
//!   and require at least one store in flight. Catches stale entries in the
//!   open-addressed forward index.
//! - **Stall attribution completeness**: every phase's stall classes sum
//!   exactly to the phase's cycles, and the report's classes sum to the
//!   report's total. Catches counter-snapshot drift in the stall waterfall.
//! - **Prefetch accounting**: a prefetch can be claimed useful or evicted
//!   unused at most once (`useful + evicted_unused <= issued`), late claims
//!   never outnumber useful ones, and late cycles require late events.
//!   Catches double-counted or lost speculative fills.
//! - **PE issue accounting**: port occupancy equals issue slots times the
//!   initiation interval for MAC and merge work alike, and the lane-level
//!   energy counter equals `slots × lanes` without gating (at most that
//!   with it). Catches drift between the timing and energy views of the
//!   parametric PE model.
//!
//! The checks are observation-only: they read counters, never advance time
//! or touch state, so enabling [`AcceleratorConfig::audit`] cannot change
//! timing or statistics. With the flag off (the default) nothing here runs.
//!
//! [`AcceleratorConfig::audit`]: crate::config::AcceleratorConfig::audit

use crate::machine::Machine;
use crate::stats::{PhaseReport, SimReport};
use std::fmt;

/// One violated invariant, with enough detail to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Short stable name of the invariant, e.g. `"dmb-conservation"`.
    pub invariant: &'static str,
    /// Human-readable description of the disagreement.
    pub details: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.details)
    }
}

/// Checks every machine-level invariant; returns all violations found.
pub fn check_machine(m: &Machine) -> Vec<AuditViolation> {
    let mut out = Vec::new();
    check_dmb(m, &mut out);
    check_dram(m.dram.stats(), &mut out);
    check_lsq(m, &mut out);
    check_prefetch(&m.dmb.prefetch_stats(), &mut out);
    check_phases(&m.phases, &mut out);
    check_pe(m, &mut out);
    out
}

fn check_pe(m: &Machine, out: &mut Vec<AuditViolation>) {
    let pe = &m.pe;
    let ii = pe.initiation_interval();
    if pe.mac_cycles() != pe.mac_issues() * ii {
        out.push(AuditViolation {
            invariant: "pe-issue-accounting",
            details: format!(
                "mac_cycles {} != mac_issues {} x II {}",
                pe.mac_cycles(),
                pe.mac_issues(),
                ii
            ),
        });
    }
    if pe.merge_cycles() != pe.merge_issues() * ii {
        out.push(AuditViolation {
            invariant: "pe-issue-accounting",
            details: format!(
                "merge_cycles {} != merge_issues {} x II {}",
                pe.merge_cycles(),
                pe.merge_issues(),
                ii
            ),
        });
    }
    let cap = pe.mac_issues() * pe.lanes() as u64;
    if pe.gating() {
        if pe.mac_lane_ops() > cap {
            out.push(AuditViolation {
                invariant: "pe-lane-energy",
                details: format!(
                    "gated mac_lane_ops {} exceed mac_issues {} x lanes {}",
                    pe.mac_lane_ops(),
                    pe.mac_issues(),
                    pe.lanes()
                ),
            });
        }
    } else if pe.mac_lane_ops() != cap {
        out.push(AuditViolation {
            invariant: "pe-lane-energy",
            details: format!(
                "ungated mac_lane_ops {} != mac_issues {} x lanes {}",
                pe.mac_lane_ops(),
                pe.mac_issues(),
                pe.lanes()
            ),
        });
    }
    if pe.mac_ops() == 0 && pe.mac_cycles() > 0 {
        out.push(AuditViolation {
            invariant: "pe-issue-accounting",
            details: format!("{} mac cycles recorded with zero mac ops", pe.mac_cycles()),
        });
    }
}

fn check_prefetch(s: &hymm_mem::PrefetchStats, out: &mut Vec<AuditViolation>) {
    // Useful and evicted-unused are terminal, mutually exclusive outcomes of
    // an issued prefetch; lines still resident or in flight account for the
    // slack.
    if s.useful + s.evicted_unused > s.issued {
        out.push(AuditViolation {
            invariant: "prefetch-accounting",
            details: format!(
                "useful {} + evicted_unused {} > issued {}",
                s.useful, s.evicted_unused, s.issued
            ),
        });
    }
    if s.late > s.useful {
        out.push(AuditViolation {
            invariant: "prefetch-accounting",
            details: format!("late {} > useful {}", s.late, s.useful),
        });
    }
    if s.late_cycles > 0 && s.late == 0 {
        out.push(AuditViolation {
            invariant: "prefetch-accounting",
            details: format!(
                "{} late cycles recorded with zero late events",
                s.late_cycles
            ),
        });
    }
}

fn check_dmb(m: &Machine, out: &mut Vec<AuditViolation>) {
    let fills = m.dmb.line_fills();
    let balance = m.dmb.evictions() + m.dmb.line_drops() + m.dmb.occupancy() as u64;
    if fills != balance {
        out.push(AuditViolation {
            invariant: "dmb-conservation",
            details: format!(
                "line_fills {} != evictions {} + drops {} + occupancy {}",
                fills,
                m.dmb.evictions(),
                m.dmb.line_drops(),
                m.dmb.occupancy()
            ),
        });
    }
    if m.dmb.dirty_evictions() > m.dmb.evictions() {
        out.push(AuditViolation {
            invariant: "dmb-dirty-evictions",
            details: format!(
                "dirty_evictions {} > evictions {}",
                m.dmb.dirty_evictions(),
                m.dmb.evictions()
            ),
        });
    }
    if m.dmb.occupancy() > m.dmb.capacity_lines() + m.config.mem.mshr_count {
        out.push(AuditViolation {
            invariant: "dmb-capacity",
            details: format!(
                "occupancy {} exceeds capacity {} + mshr_count {}",
                m.dmb.occupancy(),
                m.dmb.capacity_lines(),
                m.config.mem.mshr_count
            ),
        });
    }
}

fn check_dram(stats: &hymm_mem::TrafficStats, out: &mut Vec<AuditViolation>) {
    let total = stats.total();
    let sum = stats.per_kind_sum();
    if total != sum {
        out.push(AuditViolation {
            invariant: "dram-accounting",
            details: format!("per-kind sum {sum:?} != tracked total {total:?}"),
        });
    }
}

fn check_lsq(m: &Machine, out: &mut Vec<AuditViolation>) {
    let s = m.lsq.stats();
    if s.forwards > s.loads {
        out.push(AuditViolation {
            invariant: "lsq-forwarding",
            details: format!("forwards {} > loads {}", s.forwards, s.loads),
        });
    }
    if s.forwards > 0 && s.stores == 0 {
        out.push(AuditViolation {
            invariant: "lsq-forwarding",
            details: format!("{} forwards recorded with zero stores", s.forwards),
        });
    }
    if m.lsq.occupancy() > m.lsq.capacity() {
        out.push(AuditViolation {
            invariant: "lsq-capacity",
            details: format!(
                "occupancy {} > capacity {}",
                m.lsq.occupancy(),
                m.lsq.capacity()
            ),
        });
    }
}

fn check_phases(phases: &[PhaseReport], out: &mut Vec<AuditViolation>) {
    for (i, p) in phases.iter().enumerate() {
        if p.end_cycle < p.start_cycle {
            out.push(AuditViolation {
                invariant: "phase-monotonicity",
                details: format!(
                    "phase {i} {:?} ends at {} before it starts at {}",
                    p.name, p.end_cycle, p.start_cycle
                ),
            });
        }
        if p.stalls.total() != p.cycles() {
            out.push(AuditViolation {
                invariant: "stall-attribution",
                details: format!(
                    "phase {i} {:?} stall classes sum to {} but the phase spans {} cycles",
                    p.name,
                    p.stalls.total(),
                    p.cycles()
                ),
            });
        }
    }
    for (i, pair) in phases.windows(2).enumerate() {
        let (a, b) = (&pair[0], &pair[1]);
        if b.start_cycle < a.start_cycle || b.end_cycle < a.end_cycle {
            out.push(AuditViolation {
                invariant: "phase-monotonicity",
                details: format!(
                    "phase {} {:?} [{}, {}] runs backwards relative to {:?} [{}, {}]",
                    i + 1,
                    b.name,
                    b.start_cycle,
                    b.end_cycle,
                    a.name,
                    a.start_cycle,
                    a.end_cycle
                ),
            });
        }
    }
}

/// Checks the aggregate invariants of one finished **layer** report.
///
/// Only valid for single-layer reports: [`SimReport::merge`] concatenates
/// phase lists whose cycle bases restart at zero, so the cross-phase checks
/// do not transfer to merged reports.
pub fn check_report(r: &SimReport) -> Vec<AuditViolation> {
    let mut out = Vec::new();
    check_dram(&r.dram, &mut out);
    check_prefetch(&r.prefetch, &mut out);
    check_phases(&r.phases, &mut out);
    if r.dmb_dirty_evictions > r.dmb_evictions {
        out.push(AuditViolation {
            invariant: "dmb-dirty-evictions",
            details: format!(
                "dirty_evictions {} > evictions {}",
                r.dmb_dirty_evictions, r.dmb_evictions
            ),
        });
    }
    if r.lsq.forwards > r.lsq.loads {
        out.push(AuditViolation {
            invariant: "lsq-forwarding",
            details: format!("forwards {} > loads {}", r.lsq.forwards, r.lsq.loads),
        });
    }
    if r.lsq.capacity_stall_cycles > 0 && r.lsq.capacity_stalls == 0 {
        out.push(AuditViolation {
            invariant: "lsq-capacity",
            details: format!(
                "{} capacity-stall cycles recorded with zero stall events",
                r.lsq.capacity_stall_cycles
            ),
        });
    }
    if (r.mac_ops == 0) != (r.mac_cycles == 0) {
        out.push(AuditViolation {
            invariant: "pe-issue-accounting",
            details: format!(
                "mac_ops {} inconsistent with mac_cycles {}",
                r.mac_ops, r.mac_cycles
            ),
        });
    }
    if (r.mac_lane_ops == 0) != (r.mac_cycles == 0) {
        out.push(AuditViolation {
            invariant: "pe-lane-energy",
            details: format!(
                "mac_lane_ops {} inconsistent with mac_cycles {}",
                r.mac_lane_ops, r.mac_cycles
            ),
        });
    }
    if r.stalls.total() != r.cycles {
        out.push(AuditViolation {
            invariant: "stall-attribution",
            details: format!(
                "report stall classes sum to {} but the report spans {} cycles",
                r.stalls.total(),
                r.cycles
            ),
        });
    }
    if let Some(last_end) = r.phases.iter().map(|p| p.end_cycle).max() {
        if r.cycles < last_end {
            out.push(AuditViolation {
                invariant: "phase-monotonicity",
                details: format!(
                    "total cycles {} below the last phase end {last_end}",
                    r.cycles
                ),
            });
        }
    }
    let phase_bytes: u64 = r.phases.iter().map(|p| p.dram_bytes).sum();
    if phase_bytes > r.dram.total().total_bytes() {
        out.push(AuditViolation {
            invariant: "dram-accounting",
            details: format!(
                "per-phase DRAM bytes {} exceed the total {}",
                phase_bytes,
                r.dram.total().total_bytes()
            ),
        });
    }
    let (mut rh, mut rm, mut wh, mut wm) = (0u64, 0u64, 0u64, 0u64);
    for p in &r.phases {
        rh += p.dmb_hits.read_hits;
        rm += p.dmb_hits.read_misses;
        wh += p.dmb_hits.write_hits;
        wm += p.dmb_hits.write_misses;
    }
    if rh > r.dmb_hits.read_hits
        || rm > r.dmb_hits.read_misses
        || wh > r.dmb_hits.write_hits
        || wm > r.dmb_hits.write_misses
    {
        out.push(AuditViolation {
            invariant: "dmb-hit-attribution",
            details: format!(
                "per-phase hit deltas ({rh}/{rm}/{wh}/{wm}) exceed layer totals \
                 ({}/{}/{}/{})",
                r.dmb_hits.read_hits,
                r.dmb_hits.read_misses,
                r.dmb_hits.write_hits,
                r.dmb_hits.write_misses
            ),
        });
    }
    // Telescoping contract of the interval sampler: per-class sums over the
    // series equal the report waterfall exactly — unless the ring
    // overflowed, in which case dropped samples took their deltas with
    // them and the series is declaredly inexact.
    if let Some(m) = r.metrics.as_deref() {
        if m.dropped == 0 {
            let sums = m.stall_sums();
            let want = r.stalls.as_array();
            if sums != want.map(|v| v as i64) {
                out.push(AuditViolation {
                    invariant: "metrics-accounting",
                    details: format!(
                        "per-interval stall sums {sums:?} != report waterfall {want:?}"
                    ),
                });
            }
        }
    }
    out
}

/// Panics with every violation listed if `violations` is non-empty.
/// `context` names the call site (phase name, "report", ...).
pub fn enforce(context: &str, violations: &[AuditViolation]) {
    if violations.is_empty() {
        return;
    }
    let mut msg = format!("audit failed at {context}:");
    for v in violations {
        msg.push_str("\n  ");
        msg.push_str(&v.to_string());
    }
    panic!("{msg}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use hymm_mem::stats::HitStats;

    fn phase(name: &'static str, start: u64, end: u64) -> PhaseReport {
        use crate::stats::StallBreakdown;
        PhaseReport {
            name,
            start_cycle: start,
            end_cycle: end,
            nnz: 1,
            dmb_hits: HitStats::default(),
            dram_bytes: 0,
            // All-idle attribution keeps the stall-sum invariant satisfied.
            stalls: StallBreakdown::attribute(end.saturating_sub(start), 0, 0, 0, 0, 0, 0, 0),
        }
    }

    #[test]
    fn fresh_machine_is_clean() {
        let m = Machine::new(&AcceleratorConfig::default());
        assert!(check_machine(&m).is_empty());
    }

    #[test]
    fn empty_report_is_clean() {
        assert!(check_report(&SimReport::empty()).is_empty());
    }

    #[test]
    fn backwards_phase_is_flagged() {
        let mut r = SimReport::empty();
        r.cycles = 100;
        r.phases.push(phase("a", 50, 40));
        let v = check_report(&r);
        assert!(
            v.iter().any(|v| v.invariant == "phase-monotonicity"),
            "{v:?}"
        );
    }

    #[test]
    fn out_of_order_phases_are_flagged() {
        let mut r = SimReport::empty();
        r.cycles = 100;
        r.phases.push(phase("a", 40, 60));
        r.phases.push(phase("b", 10, 20));
        let v = check_report(&r);
        assert!(
            v.iter().any(|v| v.invariant == "phase-monotonicity"),
            "{v:?}"
        );
    }

    #[test]
    fn cycles_below_phase_end_is_flagged() {
        let mut r = SimReport::empty();
        r.cycles = 30;
        r.phases.push(phase("a", 0, 60));
        let v = check_report(&r);
        assert!(
            v.iter().any(|v| v.invariant == "phase-monotonicity"),
            "{v:?}"
        );
    }

    #[test]
    fn impossible_forward_count_is_flagged() {
        let mut r = SimReport::empty();
        r.lsq.loads = 1;
        r.lsq.forwards = 2;
        let v = check_report(&r);
        assert!(v.iter().any(|v| v.invariant == "lsq-forwarding"), "{v:?}");
    }

    #[test]
    fn stall_sum_mismatch_is_flagged() {
        let mut r = SimReport::empty();
        r.cycles = 10;
        let v = check_report(&r);
        assert!(
            v.iter().any(|v| v.invariant == "stall-attribution"),
            "{v:?}"
        );
        r.stalls.idle = 10;
        let v = check_report(&r);
        assert!(
            v.iter().all(|v| v.invariant != "stall-attribution"),
            "{v:?}"
        );
    }

    #[test]
    fn phase_stall_sum_mismatch_is_flagged() {
        let mut r = SimReport::empty();
        r.cycles = 100;
        r.stalls.idle = 100;
        let mut p = phase("a", 0, 50);
        p.stalls.idle = 0; // break the per-phase sum
        r.phases.push(p);
        let v = check_report(&r);
        assert!(
            v.iter().any(|v| v.invariant == "stall-attribution"),
            "{v:?}"
        );
    }

    #[test]
    fn stall_cycles_without_events_is_flagged() {
        let mut r = SimReport::empty();
        r.lsq.capacity_stall_cycles = 7;
        let v = check_report(&r);
        assert!(v.iter().any(|v| v.invariant == "lsq-capacity"), "{v:?}");
    }

    #[test]
    fn impossible_prefetch_accounting_is_flagged() {
        let mut r = SimReport::empty();
        r.prefetch.issued = 1;
        r.prefetch.useful = 1;
        r.prefetch.evicted_unused = 1; // claimed twice
        let v = check_report(&r);
        assert!(
            v.iter().any(|v| v.invariant == "prefetch-accounting"),
            "{v:?}"
        );

        let mut r = SimReport::empty();
        r.prefetch.issued = 2;
        r.prefetch.useful = 1;
        r.prefetch.late = 2; // more late claims than useful ones
        let v = check_report(&r);
        assert!(
            v.iter().any(|v| v.invariant == "prefetch-accounting"),
            "{v:?}"
        );

        let mut r = SimReport::empty();
        r.prefetch.late_cycles = 9; // cycles without events
        let v = check_report(&r);
        assert!(
            v.iter().any(|v| v.invariant == "prefetch-accounting"),
            "{v:?}"
        );
    }

    #[test]
    fn pe_counter_drift_is_flagged() {
        let mut r = SimReport::empty();
        r.mac_cycles = 10; // cycles without ops or lane events
        let v = check_report(&r);
        assert!(
            v.iter().any(|v| v.invariant == "pe-issue-accounting"),
            "{v:?}"
        );
        assert!(v.iter().any(|v| v.invariant == "pe-lane-energy"), "{v:?}");
        r.mac_ops = 1;
        r.mac_lane_ops = 16;
        let v = check_report(&r);
        assert!(
            v.iter()
                .all(|v| v.invariant != "pe-issue-accounting" && v.invariant != "pe-lane-energy"),
            "{v:?}"
        );
    }

    #[test]
    fn enforce_panics_with_details() {
        let violations = vec![AuditViolation {
            invariant: "dmb-conservation",
            details: "one line missing".into(),
        }];
        let err =
            std::panic::catch_unwind(|| enforce("test", &violations)).expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("dmb-conservation"), "{msg}");
        assert!(msg.contains("one line missing"), "{msg}");
    }
}
