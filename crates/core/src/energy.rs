//! Energy model (extension beyond the paper).
//!
//! The paper evaluates performance and area only, but its baselines (GCNAX,
//! GROW) report energy, so a reproduction intended for comparison work needs
//! one. This is an **event-count model**: every counter the simulator
//! already collects (MACs, buffer accesses, DRAM bytes) is multiplied by a
//! per-event energy constant. Defaults are order-of-magnitude figures for a
//! 40 nm node, the process the paper scales its area to: ~1 pJ per 32-bit
//! MAC, ~6 pJ per 64-byte SRAM access, ~20 pJ per byte of DRAM traffic.
//! All constants are public so studies can recalibrate.

use crate::stats::SimReport;

/// Per-event energy constants in picojoules.
///
/// # Example
///
/// ```
/// use hymm_core::energy::EnergyModel;
/// use hymm_core::stats::SimReport;
///
/// let mut report = SimReport::empty();
/// report.cycles = 1_000;
/// report.mac_cycles = 500;
/// report.mac_lane_ops = 500 * 16;
/// let estimate = EnergyModel::default().estimate(&report);
/// assert!(estimate.total_uj() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per single-lane 32-bit MAC. The PE term multiplies this by
    /// [`SimReport::mac_lane_ops`], so per-lane operand gating — which
    /// suppresses lane events for short rows — lowers energy without
    /// touching timing. Without gating `mac_lane_ops` is exactly
    /// `issue slots × lanes` and the term reduces to the seed's
    /// 16 pJ-per-vector-op model at the default configuration.
    pub pj_per_lane_mac: f64,
    /// Energy per partial-output merge addition.
    pub pj_per_merge_op: f64,
    /// Energy per DMB access (64-byte read or write, hit or fill).
    pub pj_per_dmb_access: f64,
    /// Energy per LSQ operation.
    pub pj_per_lsq_op: f64,
    /// Energy per byte moved to/from DRAM.
    pub pj_per_dram_byte: f64,
    /// Static leakage + clock power per cycle.
    pub pj_per_cycle_static: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_lane_mac: 1.0,  // ~1 pJ per 32-bit FMA @40nm
            pj_per_merge_op: 16.0, // adder pass over one 64-byte line
            pj_per_dmb_access: 6.0,
            pj_per_lsq_op: 1.0,
            pj_per_dram_byte: 20.0,
            pj_per_cycle_static: 5.0,
        }
    }
}

/// Energy estimate broken down by component, in microjoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// PE array dynamic energy (MACs + merges).
    pub pe_uj: f64,
    /// On-chip buffer dynamic energy (DMB + LSQ).
    pub buffer_uj: f64,
    /// Off-chip DRAM energy.
    pub dram_uj: f64,
    /// Static energy over the run's cycles.
    pub static_uj: f64,
}

impl EnergyReport {
    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.pe_uj + self.buffer_uj + self.dram_uj + self.static_uj
    }
}

impl EnergyModel {
    /// Estimates the energy of a simulated run from its report.
    pub fn estimate(&self, report: &SimReport) -> EnergyReport {
        let hits = report.dmb_hits;
        let dmb_accesses = hits.read_hits + hits.read_misses + hits.write_hits + hits.write_misses;
        let lsq_ops = report.lsq.loads + report.lsq.stores;
        let pj_to_uj = 1e-6;
        EnergyReport {
            pe_uj: (report.mac_lane_ops as f64 * self.pj_per_lane_mac
                + report.merge_cycles as f64 * self.pj_per_merge_op)
                * pj_to_uj,
            buffer_uj: (dmb_accesses as f64 * self.pj_per_dmb_access
                + lsq_ops as f64 * self.pj_per_lsq_op)
                * pj_to_uj,
            dram_uj: report.dram_bytes() as f64 * self.pj_per_dram_byte * pj_to_uj,
            static_uj: report.cycles as f64 * self.pj_per_cycle_static * pj_to_uj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SimReport;

    fn report() -> SimReport {
        let mut r = SimReport::empty();
        r.cycles = 1_000;
        r.mac_cycles = 500;
        r.mac_lane_ops = 500 * 16;
        r.merge_cycles = 100;
        r.dmb_hits.read_hits = 200;
        r.dmb_hits.read_misses = 50;
        r.lsq.loads = 250;
        r.lsq.stores = 100;
        r.dram.record_read(hymm_mem::MatrixKind::Combination, 6_400);
        r
    }

    #[test]
    fn components_add_up() {
        let e = EnergyModel::default().estimate(&report());
        let total = e.pe_uj + e.buffer_uj + e.dram_uj + e.static_uj;
        assert!((e.total_uj() - total).abs() < 1e-12);
        assert!(e.total_uj() > 0.0);
    }

    #[test]
    fn dram_dominates_for_traffic_heavy_runs() {
        let mut r = report();
        r.dram
            .record_read(hymm_mem::MatrixKind::Output, 100_000_000);
        let e = EnergyModel::default().estimate(&r);
        assert!(e.dram_uj > e.pe_uj + e.buffer_uj);
    }

    #[test]
    fn zero_report_zero_energy() {
        let e = EnergyModel::default().estimate(&SimReport::empty());
        assert_eq!(e.total_uj(), 0.0);
    }

    #[test]
    fn gated_lane_events_lower_pe_energy() {
        // Same timing, fewer lane events (a gated run of short rows): the
        // PE term must track the lane counter, not the cycle counter.
        let full = EnergyModel::default().estimate(&report());
        let mut r = report();
        r.mac_lane_ops = 500 * 4; // rows occupied only 4 of 16 lanes
        let gated = EnergyModel::default().estimate(&r);
        assert!(gated.pe_uj < full.pe_uj);
        assert_eq!(gated.static_uj, full.static_uj);
    }

    #[test]
    fn custom_constants_scale_linearly() {
        let base = EnergyModel::default().estimate(&report());
        let mut model = EnergyModel::default();
        model.pj_per_dram_byte *= 2.0;
        let doubled = model.estimate(&report());
        assert!((doubled.dram_uj / base.dram_uj - 2.0).abs() < 1e-9);
    }
}
