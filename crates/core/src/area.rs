//! Analytical area model (paper Table III).
//!
//! The paper estimates component areas with Synopsys Design Compiler on the
//! ASAP 7 nm PDK plus CACTI for the memories, then scales to TSMC 40 nm to
//! compare against GCNAX and GROW. Neither toolchain is redistributable, so
//! this module uses a **parametric linear model calibrated to the paper's
//! published numbers**: per-MAC logic area and per-KB SRAM area are derived
//! from Table III at the default configuration, which both reproduces the
//! table exactly and extrapolates sensibly for configuration sweeps.

use crate::config::AcceleratorConfig;

/// Area of one component at both process nodes, in mm².
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentArea {
    /// Component name as printed in Table III.
    pub name: &'static str,
    /// Configuration description.
    pub configuration: String,
    /// Area in mm² at 7 nm.
    pub area_7nm: f64,
    /// Area in mm² at 40 nm.
    pub area_40nm: f64,
}

/// The full Table III: per-component and total areas.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// One row per component.
    pub components: Vec<ComponentArea>,
}

impl AreaReport {
    /// Total area at 7 nm in mm².
    pub fn total_7nm(&self) -> f64 {
        self.components.iter().map(|c| c.area_7nm).sum()
    }

    /// Total area at 40 nm in mm².
    pub fn total_40nm(&self) -> f64 {
        self.components.iter().map(|c| c.area_40nm).sum()
    }
}

// Calibration constants derived from Table III at the default config.
const PE_MM2_PER_MAC_7NM: f64 = 0.006 / 16.0;
const PE_MM2_PER_MAC_40NM: f64 = 0.21 / 16.0;
const DMB_MM2_PER_KB_7NM: f64 = 0.077 / 256.0;
const DMB_MM2_PER_KB_40NM: f64 = 2.39 / 256.0;
const SMQ_MM2_PER_KB_7NM: f64 = 0.008 / 16.0;
const SMQ_MM2_PER_KB_40NM: f64 = 0.254 / 16.0;
const LSQ_ENTRY_BYTES: f64 = 68.0;
const LSQ_MM2_PER_KB_7NM: f64 = 0.009 / (128.0 * LSQ_ENTRY_BYTES / 1024.0);
const LSQ_MM2_PER_KB_40NM: f64 = 0.292 / (128.0 * LSQ_ENTRY_BYTES / 1024.0);
const OTHERS_MM2_7NM: f64 = 0.004;
const OTHERS_MM2_40NM: f64 = 0.129;
/// Extra per-MAC area for each pipeline stage beyond the first (staging
/// registers + forwarding muxes, as a fraction of the single-stage MAC).
/// Zero extra stages at the Table III default keeps the table exact.
const PE_PIPELINE_STAGE_FACTOR: f64 = 0.15;

/// Estimates the silicon area of an accelerator configuration.
pub fn estimate_area(config: &AcceleratorConfig) -> AreaReport {
    let macs = config.num_pes as f64;
    let dmb_kb = config.mem.dmb_bytes as f64 / 1024.0;
    let smq_kb = (config.mem.smq_ptr_bytes + config.mem.smq_idx_bytes) as f64 / 1024.0;
    let lsq_kb = config.mem.lsq_entries as f64 * LSQ_ENTRY_BYTES / 1024.0;
    // A pipelined MAC of latency L carries L-1 stage registers; an
    // unpipelined one re-uses a single stage regardless of latency.
    let stages = if config.mac_pipelined {
        config.mac_latency.max(1)
    } else {
        1
    } as f64;
    let pe_scale = 1.0 + PE_PIPELINE_STAGE_FACTOR * (stages - 1.0);
    let pe_config = if stages > 1.0 {
        format!("{} MAC, {}-stage", config.num_pes, stages as u64)
    } else {
        format!("{} MAC", config.num_pes)
    };

    AreaReport {
        components: vec![
            ComponentArea {
                name: "PE Array",
                configuration: pe_config,
                area_7nm: macs * PE_MM2_PER_MAC_7NM * pe_scale,
                area_40nm: macs * PE_MM2_PER_MAC_40NM * pe_scale,
            },
            ComponentArea {
                name: "DMB",
                configuration: format!("{} KB", dmb_kb as u64),
                area_7nm: dmb_kb * DMB_MM2_PER_KB_7NM,
                area_40nm: dmb_kb * DMB_MM2_PER_KB_40NM,
            },
            ComponentArea {
                name: "SMQ",
                configuration: format!("{} KB", smq_kb as u64),
                area_7nm: smq_kb * SMQ_MM2_PER_KB_7NM,
                area_40nm: smq_kb * SMQ_MM2_PER_KB_40NM,
            },
            ComponentArea {
                name: "LSQ",
                configuration: format!("{} Entries, 68B/Entry", config.mem.lsq_entries),
                area_7nm: lsq_kb * LSQ_MM2_PER_KB_7NM,
                area_40nm: lsq_kb * LSQ_MM2_PER_KB_40NM,
            },
            ComponentArea {
                name: "Others",
                configuration: "-".to_string(),
                area_7nm: OTHERS_MM2_7NM,
                area_40nm: OTHERS_MM2_40NM,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_reproduces_table_three() {
        let report = estimate_area(&AcceleratorConfig::default());
        let by_name = |n: &str| {
            report
                .components
                .iter()
                .find(|c| c.name == n)
                .expect("component present")
        };
        assert!((by_name("PE Array").area_7nm - 0.006).abs() < 1e-9);
        assert!((by_name("DMB").area_7nm - 0.077).abs() < 1e-9);
        assert!((by_name("SMQ").area_7nm - 0.008).abs() < 1e-9);
        assert!((by_name("LSQ").area_7nm - 0.009).abs() < 1e-9);
        assert!((by_name("DMB").area_40nm - 2.39).abs() < 1e-9);
        // Paper totals: 0.106 mm² (7nm, rounded up from 0.104) and 3.215+
        // component rounding at 40nm (0.21+2.39+0.254+0.292+0.129=3.275;
        // the paper prints 3.215 with its own rounding). Check we are in
        // that band.
        assert!((report.total_7nm() - 0.104).abs() < 0.005);
        assert!((report.total_40nm() - 3.275).abs() < 0.1);
    }

    #[test]
    fn area_scales_with_configuration() {
        let small = estimate_area(&AcceleratorConfig::default());
        let mut cfg = AcceleratorConfig {
            num_pes: 32,
            ..AcceleratorConfig::default()
        };
        cfg.mem.dmb_bytes = 512 * 1024;
        let big = estimate_area(&cfg);
        assert!(big.total_7nm() > small.total_7nm());
        assert!((big.components[0].area_7nm / small.components[0].area_7nm - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pipeline_stages_add_pe_area() {
        let base = estimate_area(&AcceleratorConfig::default());
        let deep = estimate_area(&AcceleratorConfig {
            mac_latency: 4,
            mac_pipelined: true,
            ..AcceleratorConfig::default()
        });
        let ratio = deep.components[0].area_7nm / base.components[0].area_7nm;
        assert!((ratio - (1.0 + 3.0 * PE_PIPELINE_STAGE_FACTOR)).abs() < 1e-9);
        // Unpipelined latency reuses one stage: no area change.
        let slow = estimate_area(&AcceleratorConfig {
            mac_latency: 4,
            ..AcceleratorConfig::default()
        });
        assert_eq!(slow.components[0].area_7nm, base.components[0].area_7nm);
        assert!(deep.components[0].configuration.contains("4-stage"));
    }

    #[test]
    fn forty_nm_is_larger_than_seven() {
        let r = estimate_area(&AcceleratorConfig::default());
        for c in &r.components {
            assert!(c.area_40nm > c.area_7nm, "{} scaling inverted", c.name);
        }
    }
}
