//! Cycle-accurate simulator of the HyMM accelerator (DATE 2025).
//!
//! HyMM performs the GCN aggregation SpDeMM `Â·(XW)` with a **hybrid
//! dataflow**: after degree sorting, the adjacency matrix is tiled into
//! three regions and each is processed by the dataflow that best exploits
//! its locality — the outer product (OP) for the high-degree rows of
//! region 1, the row-wise product (RWP) for regions 2 and 3. This crate
//! implements:
//!
//! - the [`pe`] array (16 MAC lanes with stationary buffers);
//! - the timed [`engine`]s: [`engine::rwp`], [`engine::op`] and the
//!   [`engine::hybrid`] scheduler, all running on top of the `hymm-mem`
//!   memory subsystem and computing real numeric results alongside timing;
//! - the [`sim`] front end: [`sim::run_gcn_layer`] executes one
//!   combination-first GCN layer under any of the three
//!   [`config::Dataflow`]s — `RowWise` reproduces the GROW-style baseline,
//!   `Outer` the GCNAX-style baseline, `Hybrid` is HyMM;
//! - the [`stats`] report every experiment consumes (cycles, ALU
//!   utilisation, DMB hit rates, DRAM traffic breakdown, partial-output
//!   footprint);
//! - the analytical [`area`] model behind the paper's Table III;
//! - an event-count [`energy`] model (an extension beyond the paper).
//!
//! # Example
//!
//! ```
//! use hymm_core::config::{AcceleratorConfig, Dataflow};
//! use hymm_core::sim::run_gcn_layer;
//! use hymm_sparse::{Coo, Dense};
//!
//! # fn main() -> Result<(), hymm_sparse::SparseError> {
//! // tiny 4-node graph, 3 features, layer dim 2
//! let adj = Coo::from_triplets(4, 4, [(0, 1, 0.5), (1, 0, 0.5), (2, 3, 1.0), (3, 2, 1.0)])?;
//! let x = Coo::from_triplets(4, 3, [(0, 0, 1.0), (1, 2, 2.0), (2, 1, 1.5), (3, 0, 0.5)])?;
//! let w = Dense::from_fn(3, 2, |r, c| (r + c) as f32);
//! let outcome = run_gcn_layer(&AcceleratorConfig::default(), Dataflow::Hybrid, &adj, &x, &w)?;
//! assert!(outcome.report.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod area;
pub mod audit;
pub mod config;
pub mod energy;
pub mod engine;
pub mod machine;
pub mod metrics;
pub mod pe;
pub mod prepared;
pub mod sim;
pub mod stats;
pub mod trace;

pub use config::{AcceleratorConfig, Dataflow, MergePolicy};
pub use prepared::{CombinationMemo, PreparedAdjacency};
pub use sim::{run_gcn_layer, LayerOutcome};
pub use stats::{SimReport, StallBreakdown};
